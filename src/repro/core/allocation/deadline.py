"""SHEFT-style deadline-constrained scheduling.

The paper's related work (Sect. II) describes SHEFT — "an extension of
HEFT which uses cloud resources whenever needed to decrease the makespan
below a deadline" — and Byun et al.'s cost-optimized elastic
provisioning that exploits any makespan/deadline slack to cut rent.
:class:`DeadlineScheduler` implements both halves on the OneVMperTask
substrate:

1. **speed up**: while the makespan exceeds the deadline, upgrade the
   critical-path task with the largest remaining execution time one
   catalog rung (the CPA-Eager move, but deadline- rather than
   budget-driven);
2. **cool down**: while slack remains, undo the *most expensive* upgrade
   whose removal keeps the makespan within the deadline — recovering the
   Byun-style "use the minimum-makespan/deadline difference to reduce
   costs".

Raises :class:`~repro.errors.SchedulingError` when even the all-xlarge
configuration misses the deadline (infeasible), unless ``best_effort``.
"""

from __future__ import annotations

from typing import Dict

from repro.cloud.instance import SMALL, InstanceType, next_faster
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.upgrade import one_vm_schedule, total_rent_cost
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


@register_algorithm
class DeadlineScheduler(SchedulingAlgorithm):
    name = "SHEFT-Deadline"
    heterogeneous = True

    def __init__(self, deadline: float = float("inf"), best_effort: bool = False) -> None:
        if deadline <= 0:
            raise SchedulingError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline
        self.best_effort = best_effort

    # ------------------------------------------------------------------
    def _makespan(self, workflow, platform, types) -> float:
        _, length = workflow.critical_path(
            exec_time=lambda t: platform.runtime(workflow.task(t), types[t]),
            transfer_time=lambda u, v: platform.transfer_time(
                workflow.data_gb(u, v), types[u], types[v]
            ),
        )
        return length

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        types: Dict[str, InstanceType] = {t: itype for t in workflow.task_ids}

        # Phase 1 — speed up until the deadline holds.
        while self._makespan(workflow, platform, types) > self.deadline:
            cp, _ = workflow.critical_path(
                exec_time=lambda t: platform.runtime(workflow.task(t), types[t]),
                transfer_time=lambda u, v: platform.transfer_time(
                    workflow.data_gb(u, v), types[u], types[v]
                ),
            )
            upgradable = [t for t in cp if next_faster(types[t]) is not None]
            if not upgradable:
                if self.best_effort:
                    break
                raise SchedulingError(
                    f"deadline {self.deadline:.0f}s infeasible: even the "
                    f"fastest configuration needs "
                    f"{self._makespan(workflow, platform, types):.0f}s"
                )
            target = max(
                upgradable,
                key=lambda t: (platform.runtime(workflow.task(t), types[t]), t),
            )
            nxt = next_faster(types[target])
            assert nxt is not None
            types[target] = nxt

        # Phase 2 — cool down: drop upgrades the deadline doesn't need,
        # most expensive first.
        improved = True
        while improved:
            improved = False
            upgraded = sorted(
                (t for t in workflow.task_ids if types[t] is not itype),
                key=lambda t: (
                    -total_rent_cost(workflow, platform, {t: types[t]}, region),
                    t,
                ),
            )
            for t in upgraded:
                trial = dict(types)
                trial[t] = itype
                if self._makespan(workflow, platform, trial) <= self.deadline:
                    saved_now = total_rent_cost(
                        workflow, platform, {t: types[t]}, region
                    ) - total_rent_cost(workflow, platform, {t: itype}, region)
                    if saved_now > 0:
                        types = trial
                        improved = True
                        break

        sched = one_vm_schedule(
            workflow, platform, types, region, algorithm=self.name
        ).validate()
        if not self.best_effort and sched.makespan > self.deadline + 1e-6:
            # transfers between concrete VMs can exceed the critical-path
            # estimate only through rounding; guard anyway
            raise SchedulingError(
                f"built schedule misses the deadline: {sched.makespan:.1f}s "
                f"> {self.deadline:.1f}s"
            )
        return sched
