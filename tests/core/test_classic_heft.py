"""Tests for textbook insertion-based HEFT."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.classic_heft import ClassicHeftScheduler
from repro.core.allocation.heft import HeftScheduler
from repro.errors import SchedulingError
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.dag import Workflow
from repro.workflows.generators import montage, random_layered
from repro.workflows.task import Task


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestPlacement:
    def test_pool_bounds_vm_count(self, platform):
        sched = ClassicHeftScheduler(pool=("small", "medium")).schedule(
            montage(), platform
        )
        assert sched.vm_count <= 2

    def test_eft_prefers_faster_processor_for_critical_work(self, platform):
        """A lone task lands on the fastest pool member."""
        wf = Workflow("w")
        wf.add_task(Task("only", 1000.0))
        sched = ClassicHeftScheduler(pool=("small", "large")).schedule(wf, platform)
        assert sched.vm_of("only").itype.name == "large"

    def test_transfer_aware_placement(self, platform):
        """EFT keeps a data-heavy child on its parent's processor: the
        free same-VM hand-off beats a faster-but-remote start."""
        wf = Workflow("w")
        wf.add_task(Task("x", 1000.0))
        wf.add_task(Task("y", 1000.0))
        wf.add_dependency("x", "y", 10.0)  # 80 s over a 1 Gb/s link
        wf.validate()
        sched = ClassicHeftScheduler(pool=("small", "small")).schedule(wf, platform)
        assert sched.vm_of("y") is sched.vm_of("x")
        assert sched.start("y") == pytest.approx(1000.0)

    def test_independent_tasks_spread_across_pool(self, platform):
        """With no dependencies EFT load-balances over the pool."""
        wf = Workflow("w")
        for i in range(4):
            wf.add_task(Task(f"t{i}", 1000.0))
        wf.validate()
        sched = ClassicHeftScheduler(pool=("small", "small")).schedule(wf, platform)
        sizes = sorted(len(vm.placements) for vm in sched.vms)
        assert sizes == [2, 2]
        assert sched.makespan == pytest.approx(2000.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(SchedulingError):
            ClassicHeftScheduler(pool=())


class TestQuality:
    def test_valid_and_replayable(self, platform, paper_workflow):
        sched = ClassicHeftScheduler().schedule(paper_workflow, platform)
        sched.validate()
        simulate_schedule(sched, check=True)

    def test_replayable_on_random_dags(self, platform):
        for seed in range(8):
            wf = apply_model(
                random_layered(layers=5, seed=seed), ParetoModel(), seed=seed
            )
            sched = ClassicHeftScheduler().schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)

    def test_bigger_pool_never_hurts_makespan(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=4)
        small_pool = ClassicHeftScheduler(pool=("small",) * 2).schedule(wf, platform)
        big_pool = ClassicHeftScheduler(pool=("small",) * 8).schedule(wf, platform)
        assert big_pool.makespan <= small_pool.makespan + 1e-6

    def test_competitive_with_paper_heft_on_equal_resources(self, platform):
        """Classic HEFT on n small processors vs the paper's
        HEFT+OneVMperTask (n small VMs): EFT+insertion should not be
        dramatically worse, typically better or equal."""
        wf = apply_model(montage(), ParetoModel(), seed=9)
        classic = ClassicHeftScheduler(pool=("small",) * len(wf)).schedule(
            wf, platform
        )
        paper = HeftScheduler("OneVMperTask").schedule(wf, platform)
        assert classic.makespan <= paper.makespan * 1.05
