#!/usr/bin/env python
"""Working with Pegasus DAX workflow traces.

Exports the built-in Montage generator to DAX XML (the format public
scientific-workflow archives distribute), re-imports it, and schedules
the imported workflow — the path a user with real traces would take.

Run:  python examples/dax_import.py
"""

import tempfile
from pathlib import Path

from repro import (
    CloudPlatform,
    HeftScheduler,
    montage,
    parse_dax,
    to_dax,
    to_dot,
)


def main() -> None:
    platform = CloudPlatform.ec2()

    # 1. Export the paper's Montage to DAX (stand-in for a real trace).
    original = montage()
    dax_text = to_dax(original)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "montage.dax"
        path.write_text(dax_text)
        print(f"wrote {path.name}: {len(dax_text)} bytes of DAX XML")

        # 2. Import it back, as one would with a downloaded trace.
        workflow = parse_dax(path)

    print(f"imported {workflow.name!r}: {len(workflow)} tasks, "
          f"{len(workflow.edges())} dependencies")
    assert sorted(workflow.task_ids) == sorted(original.task_ids)

    # 3. Schedule the imported workflow.
    sched = HeftScheduler("StartParNotExceed").schedule(
        workflow, platform, itype=platform.itype("medium")
    )
    print(f"schedule: makespan {sched.makespan:.0f} s, cost "
          f"${sched.total_cost:.2f}, {sched.vm_count} VMs")

    # 4. And a DOT rendering for visual inspection with graphviz.
    dot = to_dot(workflow)
    print(f"\nDOT export ({dot.count('->')} edges), first lines:")
    print("\n".join(dot.splitlines()[:6]))


if __name__ == "__main__":
    main()
