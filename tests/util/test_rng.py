"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(8)
        b = ensure_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(8), ensure_rng(2).random(8))

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert ensure_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(11)
        a = ensure_rng(ss).random(4)
        b = ensure_rng(np.random.SeedSequence(11)).random(4)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(5)).random(4)
        b = ensure_rng(5).random(4)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(123, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_stable_under_sibling_count(self):
        first_of_two = spawn_rngs(9, 2)[0].random(8)
        first_of_five = spawn_rngs(9, 5)[0].random(8)
        assert np.array_equal(first_of_two, first_of_five)

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_rejects_generator_seed(self):
        with pytest.raises(TypeError):
            spawn_rngs(np.random.default_rng(), 2)
