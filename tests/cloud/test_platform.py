"""Tests for the CloudPlatform facade."""

import pytest

from repro.cloud.billing import BillingModel
from repro.cloud.instance import LARGE, SMALL
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import EC2_REGIONS
from repro.errors import PlatformError
from repro.workflows.task import Task


class TestConstruction:
    def test_ec2_defaults(self):
        p = CloudPlatform.ec2()
        assert p.btu_seconds == 3600.0
        assert p.default_region.name == "us-east-virginia"
        assert set(p.catalog) == {"small", "medium", "large", "xlarge"}
        assert p.boot_seconds == 0.0

    def test_override_billing(self):
        p = CloudPlatform.ec2(billing=BillingModel(btu_seconds=60.0))
        assert p.btu_seconds == 60.0

    def test_default_region_must_be_listed(self):
        with pytest.raises(PlatformError):
            CloudPlatform(regions={"eu-dublin": EC2_REGIONS["eu-dublin"]})

    def test_negative_boot_rejected(self):
        with pytest.raises(PlatformError):
            CloudPlatform.ec2(boot_seconds=-1.0)


class TestQueries:
    def test_itype_lookup(self):
        p = CloudPlatform.ec2()
        assert p.itype("l") is LARGE
        assert p.itype("small") is SMALL
        with pytest.raises(PlatformError):
            p.itype("huge")

    def test_region_lookup(self):
        p = CloudPlatform.ec2()
        assert p.region("eu-dublin").name == "eu-dublin"
        with pytest.raises(PlatformError):
            p.region("nowhere")

    def test_runtime(self):
        p = CloudPlatform.ec2()
        t = Task("t", 2100.0)
        assert p.runtime(t, LARGE) == pytest.approx(1000.0)

    def test_transfer_time_defaults_to_default_region(self):
        p = CloudPlatform.ec2()
        t = p.transfer_time(1.0, SMALL, SMALL)
        assert t == pytest.approx(8.1)

    def test_transfer_time_cross_region(self):
        p = CloudPlatform.ec2()
        local = p.transfer_time(1.0, SMALL, SMALL)
        remote = p.transfer_time(
            1.0,
            SMALL,
            SMALL,
            src_region=p.region("us-east-virginia"),
            dst_region=p.region("eu-dublin"),
        )
        assert remote > local

    def test_cheapest_region(self):
        p = CloudPlatform.ec2()
        assert p.cheapest_region().price("small") == pytest.approx(0.08)


class TestHotPathCaches:
    """runtime/transfer_time are memoized per platform instance."""

    def test_runtime_cache_hit_matches_miss(self):
        p = CloudPlatform.ec2()
        t = Task("t", 2100.0)
        first = p.runtime(t, LARGE)
        assert (2100.0, "large") in p._runtime_cache
        assert p.runtime(t, LARGE) == first == pytest.approx(1000.0)
        # a same-work different task shares the cache entry
        assert p.runtime(Task("u", 2100.0), LARGE) == first
        assert len(p._runtime_cache) == 1

    def test_transfer_cache_distinguishes_locality(self):
        p = CloudPlatform.ec2()
        local = p.transfer_time(1.0, SMALL, SMALL)
        same_vm = p.transfer_time(1.0, SMALL, SMALL, same_vm=True)
        remote = p.transfer_time(
            1.0,
            SMALL,
            SMALL,
            src_region=p.region("us-east-virginia"),
            dst_region=p.region("eu-dublin"),
        )
        assert same_vm == 0.0
        assert remote > local
        assert len(p._transfer_cache) == 3
        # cached replays give the same numbers
        assert p.transfer_time(1.0, SMALL, SMALL) == local
        assert p.transfer_time(1.0, SMALL, SMALL, same_vm=True) == same_vm
        assert len(p._transfer_cache) == 3

    def test_caches_are_per_instance(self):
        a, b = CloudPlatform.ec2(), CloudPlatform.ec2()
        a.runtime(Task("t", 100.0), SMALL)
        assert b._runtime_cache == {}
