"""Tests for the schedule executor: dynamic replay reproduces static
plans, and corrupted schedules are caught."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.cloud.vm import VM
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.simulator.executor import ScheduleExecutor, simulate_schedule
from repro.simulator.trace import SimulationResult, TraceEvent
from tests.conftest import assert_schedule_invariants


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestReplayMatchesPlan:
    @pytest.mark.parametrize(
        "provisioning",
        ["OneVMperTask", "StartParNotExceed", "StartParExceed"],
    )
    def test_heft_schedules(self, diamond, platform, provisioning):
        sched = HeftScheduler(provisioning).schedule(diamond, platform)
        result = simulate_schedule(sched, check=True)
        assert result.makespan == pytest.approx(sched.makespan)
        assert_schedule_invariants(result, diamond)

    @pytest.mark.parametrize("exceed", [True, False])
    def test_allpar_schedules(self, fan7, platform, exceed):
        sched = AllParScheduler(exceed=exceed).schedule(fan7, platform)
        result = simulate_schedule(sched, check=True)
        assert result.makespan == pytest.approx(sched.makespan)
        assert_schedule_invariants(result, fan7)

    def test_chain_serializes(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        result = simulate_schedule(sched)
        assert result.task_start["Y"] >= result.task_finish["X"]
        assert result.task_start["Z"] >= result.task_finish["Y"]

    def test_transfer_delays_cross_vm_children(self, diamond, platform):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        result = simulate_schedule(sched)
        # B is on another VM than A and receives 0.5 GB over 1 Gb/s
        gap = result.task_start["B"] - result.task_finish["A"]
        assert gap == pytest.approx(0.5 * 8 / 1.0 + 0.1)

    def test_vm_windows_recorded(self, diamond, platform):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        result = simulate_schedule(sched)
        assert len(result.vm_windows) == 4
        for lo, hi in result.vm_windows.values():
            assert hi > lo >= 0.0

    def test_trace_event_stream_shape(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        result = simulate_schedule(sched)
        kinds = [e.kind for e in result.events]
        assert kinds.count("task_start") == 3
        assert kinds.count("task_end") == 3
        assert kinds.count("vm_start") == 1


class TestCorruptedSchedules:
    def test_check_against_flags_divergence(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        result = simulate_schedule(sched, check=False)
        # shift a recorded start: the check must fail
        result.task_start["Y"] += 100.0
        with pytest.raises(SimulationError, match="start"):
            result.check_against(sched)

    def test_missing_task_flagged(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        result = SimulationResult()
        with pytest.raises(SimulationError, match="never completed"):
            result.check_against(sched)

    def test_impossible_order_deadlock_detected(self, chain3, platform):
        """A per-VM order violating dependencies cannot complete."""
        vm = VM(id=0, itype=platform.itype("small"), region=platform.default_region)
        # place the chain backwards on one VM
        t = 0.0
        for tid in ("Z", "Y", "X"):
            dur = platform.runtime(chain3.task(tid), vm.itype)
            vm.place(tid, t, dur)
            t += dur
        bad = Schedule(workflow=chain3, platform=platform, vms=[vm])
        with pytest.raises(SimulationError, match="deadlock"):
            ScheduleExecutor(bad).run()


class TestTraceRecord:
    def test_record_updates_maps(self):
        r = SimulationResult()
        r.record(TraceEvent(1.0, "task_start", "t", "vm0-s"))
        r.record(TraceEvent(2.0, "task_end", "t", "vm0-s"))
        assert r.task_start["t"] == 1.0
        assert r.task_finish["t"] == 2.0
        assert r.makespan == 2.0

    def test_empty_makespan(self):
        assert SimulationResult().makespan == 0.0
