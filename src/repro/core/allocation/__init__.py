"""Task allocation strategies (paper Sect. III-B): HEFT, CPA-Eager,
Gain, the AllPar level schedulers and the AllPar1LnS[Dyn] parallelism
reducers."""

from repro.core.allocation.base import (
    SchedulingAlgorithm,
    scheduling_algorithm,
    SCHEDULING_ALGORITHMS,
)
from repro.core.allocation.ranking import upward_rank, heft_order, level_order
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import LevelScheduler, AllParScheduler
from repro.core.allocation.cpa_eager import CpaEagerScheduler
from repro.core.allocation.gain import GainScheduler
from repro.core.allocation.allpar1lns import (
    AllPar1LnSScheduler,
    AllPar1LnSDynScheduler,
    pack_level,
)
from repro.core.allocation.baselines import RoundRobinScheduler, LeastLoadScheduler
from repro.core.allocation.deadline import DeadlineScheduler
from repro.core.allocation.classic_heft import ClassicHeftScheduler
from repro.core.allocation.locality import LocalityHeftScheduler, pin_regions
from repro.core.allocation.minmin import MinMinScheduler, MaxMinScheduler
from repro.core.allocation.pch import PchScheduler
from repro.core.allocation.hcoc import HcocScheduler

__all__ = [
    "SchedulingAlgorithm",
    "scheduling_algorithm",
    "SCHEDULING_ALGORITHMS",
    "upward_rank",
    "heft_order",
    "level_order",
    "HeftScheduler",
    "LevelScheduler",
    "AllParScheduler",
    "CpaEagerScheduler",
    "GainScheduler",
    "AllPar1LnSScheduler",
    "AllPar1LnSDynScheduler",
    "pack_level",
    "RoundRobinScheduler",
    "LeastLoadScheduler",
    "DeadlineScheduler",
    "ClassicHeftScheduler",
    "LocalityHeftScheduler",
    "pin_regions",
    "MinMinScheduler",
    "MaxMinScheduler",
    "PchScheduler",
    "HcocScheduler",
]
