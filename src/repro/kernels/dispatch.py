"""Size-aware dispatch between the indexed and columnar kernels.

The columnar kernels pay fixed vectorization overhead (CSR construction,
array allocation) that only amortizes on large DAGs, and their dispatch
sites promise *byte-identical* behavior — so the rule is deliberately
conservative:

* **size**: only workflows with at least :data:`COLUMNAR_MIN_TASKS`
  tasks dispatch (the 1k benchmark cells stay on the indexed kernels,
  10k+ go columnar; the crossover measured on this container is well
  below the threshold, so the margin is safety, not tuning);
* **model types**: the fused kernels inline the billing/network/runtime
  arithmetic, so they only engage for the stock ``BillingModel`` /
  ``NetworkModel`` / ``InstanceType`` classes — any subclass falls back
  to the indexed kernels, which go through the real objects.

Tests force either side with :func:`force_columnar` /
:func:`columnar_disabled`; ``REPRO_COLUMNAR_MIN_TASKS`` overrides the
threshold per process (``0`` forces columnar everywhere, a huge value
disables it).
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager

from repro.cloud.billing import BillingModel
from repro.cloud.instance import InstanceType
from repro.cloud.network import NetworkModel

#: minimum task count for the columnar kernels to engage
COLUMNAR_MIN_TASKS = 4096

_DISABLED = sys.maxsize

#: process-wide override (None = use COLUMNAR_MIN_TASKS / env)
_override: "int | None" = None


def _env_threshold() -> "int | None":
    raw = os.environ.get("REPRO_COLUMNAR_MIN_TASKS")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def columnar_threshold() -> int:
    """Effective task-count threshold for columnar dispatch."""
    if _override is not None:
        return _override
    env = _env_threshold()
    if env is not None:
        return env
    return COLUMNAR_MIN_TASKS


def columnar_active(n_tasks: int) -> bool:
    """Whether a workflow of *n_tasks* takes the columnar path."""
    return n_tasks >= columnar_threshold()


@contextmanager
def use_columnar(min_tasks: int):
    """Scoped threshold override (the test hook)."""
    global _override
    prev = _override
    _override = int(min_tasks)
    try:
        yield
    finally:
        _override = prev


def force_columnar():
    """Scoped: columnar kernels on every workflow, regardless of size."""
    return use_columnar(0)


def columnar_disabled():
    """Scoped: indexed kernels everywhere (the reference side of the
    columnar equivalence property tests)."""
    return use_columnar(_DISABLED)


def platform_eligible(platform, itype) -> bool:
    """Whether the fused kernels may inline *platform*'s arithmetic.

    Exact-type checks: a subclassed billing/network/instance model could
    override the formulas the kernels inline, so anything non-stock
    falls back to the indexed kernels.
    """
    return (
        type(itype) is InstanceType
        and type(platform.billing) is BillingModel
        and type(platform.network) is NetworkModel
    )
