"""Incremental schedule construction.

A :class:`ScheduleBuilder` is the shared workbench of every allocation
algorithm + provisioning policy pair: the allocation strategy decides
*task order*, the provisioning policy decides *which VM* (existing or
new) each task lands on, and the builder maintains the resulting
estimated start/finish times, per-VM accumulated execution time and BTU
occupancy that both sides query.  Because scheduling is static and task
times deterministic, the builder's estimates are exact — a property the
test suite checks against the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.cloud.vm import VM
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


@dataclass
class BuilderVM:
    """A VM being filled in during scheduling."""

    id: int
    itype: InstanceType
    region: Region
    #: task ids in execution order
    order: List[str] = field(default_factory=list)
    #: estimated [start, finish) per hosted task
    timing: Dict[str, tuple] = field(default_factory=dict)
    #: sum of execution durations — "the VM with the largest execution
    #: time" of the StartPar policies
    busy_seconds: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.order

    @property
    def start_time(self) -> float:
        if self.empty:
            raise SchedulingError(f"vm{self.id} has no placements yet")
        return self.timing[self.order[0]][0]

    @property
    def ready_time(self) -> float:
        """When the VM becomes free (0 for an empty VM)."""
        if self.empty:
            return 0.0
        return self.timing[self.order[-1]][1]

    @property
    def uptime_seconds(self) -> float:
        if self.empty:
            return 0.0
        return self.ready_time - self.start_time


class ScheduleBuilder:
    """Mutable scheduling state for one (workflow, platform, region) run."""

    def __init__(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        default_itype: InstanceType,
        region: Region | None = None,
        region_chooser=None,
    ) -> None:
        workflow.validate()
        self.workflow = workflow
        self.platform = platform
        self.default_itype = default_itype
        self.region = region or platform.default_region
        #: optional ``(task_id, builder) -> Region | None`` hook deciding
        #: where a *new* VM rented for a task lives (data locality);
        #: ``None`` from the hook falls back to the builder region
        self.region_chooser = region_chooser
        self._active_task: str | None = None
        self.vms: List[BuilderVM] = []
        self.task_vm: Dict[str, BuilderVM] = {}
        self.task_start: Dict[str, float] = {}
        self.task_finish: Dict[str, float] = {}
        self._levels = workflow.level_of()
        self._level_sizes: Dict[int, int] = {}
        for lvl in self._levels.values():
            self._level_sizes[lvl] = self._level_sizes.get(lvl, 0) + 1

    # ------------------------------------------------------------------
    # queries used by provisioning policies
    # ------------------------------------------------------------------
    def level_of(self, task_id: str) -> int:
        return self._levels[task_id]

    def level_size(self, task_id: str) -> int:
        """Number of tasks sharing *task_id*'s level (its parallelism)."""
        return self._level_sizes[self._levels[task_id]]

    def is_entry(self, task_id: str) -> bool:
        return not self.workflow.predecessors(task_id)

    def exec_time(self, task_id: str, itype: InstanceType | None = None) -> float:
        """Estimated execution time of a task on *itype* (VM's type when
        placed, builder default otherwise)."""
        if itype is None:
            vm = self.task_vm.get(task_id)
            itype = vm.itype if vm is not None else self.default_itype
        return self.platform.runtime(self.workflow.task(task_id), itype)

    def busiest_vm(self, candidates: List[BuilderVM] | None = None) -> Optional[BuilderVM]:
        """The VM with the largest accumulated execution time.

        Deterministic tie-break on VM id (earliest rented wins).
        """
        pool = self.vms if candidates is None else candidates
        pool = [vm for vm in pool if not vm.empty]
        if not pool:
            return None
        return max(pool, key=lambda vm: (vm.busy_seconds, -vm.id))

    def vm_of_largest_predecessor(self, task_id: str) -> Optional[BuilderVM]:
        """VM hosting the predecessor with the longest execution time
        (the AllPar* rule for sequential tasks)."""
        preds = [p for p in self.workflow.predecessors(task_id) if p in self.task_vm]
        if not preds:
            return None
        largest = max(preds, key=lambda p: (self.task_finish[p] - self.task_start[p], p))
        return self.task_vm[largest]

    def earliest_start(self, task_id: str, vm: BuilderVM) -> float:
        """Estimated start of *task_id* if placed next on *vm*: VM free
        time vs. latest predecessor finish + data transfer."""
        ready = vm.ready_time
        for pred in self.workflow.predecessors(task_id):
            if pred not in self.task_finish:
                raise SchedulingError(
                    f"cannot place {task_id!r}: predecessor {pred!r} unscheduled "
                    "(allocation order is not topological)"
                )
            pvm = self.task_vm[pred]
            dt = self.platform.transfer_time(
                self.workflow.data_gb(pred, task_id),
                pvm.itype,
                vm.itype,
                same_vm=pvm is vm,
                src_region=pvm.region,
                dst_region=vm.region,
            )
            ready = max(ready, self.task_finish[pred] + dt)
        if vm.empty and not self.platform.prebooted:
            # cold start: the VM is requested when the task becomes
            # ready and boots before it can execute anything
            ready += self.platform.boot_seconds
        return ready

    def paid_horizon(self, vm: BuilderVM) -> float:
        """Absolute time at which *vm* is released if no further task is
        placed on it: the end of its last started BTU.

        Idle VMs are deprovisioned at their BTU boundary (the standard
        IaaS practice this literature assumes), so a task can only
        *reuse* a VM if it can start before this horizon.
        """
        if vm.empty:
            return float("inf")
        billing = self.platform.billing
        return vm.start_time + billing.paid_seconds(vm.uptime_seconds)

    def is_reusable(self, task_id: str, vm: BuilderVM) -> bool:
        """Can *task_id* still catch *vm* before it is released?"""
        if vm.empty:
            return True
        return self.earliest_start(task_id, vm) <= self.paid_horizon(vm) + 1e-9

    def fits_in_btu(self, task_id: str, vm: BuilderVM) -> bool:
        """Would *task_id*, placed next on *vm*, finish within the BTUs
        the VM has already started to pay?

        On an **empty** VM the question is whether the task fits one
        fresh BTU.  On a running VM the candidate's estimated finish must
        not cross the VM's current paid horizon
        (``start + btus(uptime) * BTU``); waiting time on the VM counts
        against the BTU exactly as in the paper's Fig. 1.
        """
        billing = self.platform.billing
        duration = self.exec_time(task_id, vm.itype)
        if vm.empty:
            return duration <= billing.btu_seconds + 1e-9
        finish = self.earliest_start(task_id, vm) + duration
        paid_horizon = vm.start_time + billing.paid_seconds(vm.uptime_seconds)
        return finish <= paid_horizon + 1e-9

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def begin_task(self, task_id: str) -> None:
        """Mark the task currently being placed, so region choosers can
        see which task a ``new_vm`` rental is for."""
        self._active_task = task_id

    def new_vm(self, itype: InstanceType | None = None, region: Region | None = None) -> BuilderVM:
        if region is None and self.region_chooser is not None and self._active_task:
            region = self.region_chooser(self._active_task, self)
        vm = BuilderVM(
            id=len(self.vms),
            itype=itype or self.default_itype,
            region=region or self.region,
        )
        self.vms.append(vm)
        return vm

    def place(self, task_id: str, vm: BuilderVM) -> None:
        """Append *task_id* to *vm*'s execution order and fix its times."""
        if task_id in self.task_vm:
            raise SchedulingError(f"task {task_id!r} already placed")
        if vm.id >= len(self.vms) or vm is not self.vms[vm.id]:
            raise SchedulingError(f"vm{vm.id} does not belong to this builder")
        start = self.earliest_start(task_id, vm)
        duration = self.exec_time(task_id, vm.itype)
        vm.order.append(task_id)
        vm.timing[task_id] = (start, start + duration)
        vm.busy_seconds += duration
        self.task_vm[task_id] = vm
        self.task_start[task_id] = start
        self.task_finish[task_id] = start + duration

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.task_finish:
            return 0.0
        return max(self.task_finish.values())

    def build(self, algorithm: str = "", provisioning: str = "") -> Schedule:
        """Freeze the builder into an immutable :class:`Schedule`."""
        unplaced = [t for t in self.workflow.task_ids if t not in self.task_vm]
        if unplaced:
            raise SchedulingError(f"unscheduled tasks remain: {unplaced}")
        vms: List[VM] = []
        for bvm in self.vms:
            if bvm.empty:
                continue  # a policy may have speculated a VM it never used
            vm = VM(
                id=len(vms),
                itype=bvm.itype,
                region=bvm.region,
                boot_seconds=self.platform.boot_seconds,
            )
            for tid in bvm.order:
                start, finish = bvm.timing[tid]
                vm.place(tid, start, finish - start)
            vms.append(vm)
        return Schedule(
            workflow=self.workflow,
            platform=self.platform,
            vms=vms,
            algorithm=algorithm,
            provisioning=provisioning,
        )
