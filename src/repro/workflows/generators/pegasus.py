"""The wider Pegasus scientific-workflow gallery.

The paper's future work asks for "custom workflows and execution times
with various properties from different workloads".  These generators add
the four shapes (beyond Montage) that the workflow-scheduling literature
standardized on — Epigenomics, CyberShake, LIGO Inspiral and SIPHT —
rebuilt from their published structural characterizations (Bharathi et
al., "Characterization of Scientific Workflows", WORKS 2008).  Nominal
runtimes are order-of-magnitude figures from that study; experiment
scenarios overwrite them via :func:`repro.workloads.base.apply_model`.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def epigenomics(lanes: int = 2, width: int = 4, name: str = "epigenomics") -> Workflow:
    """Epigenomics: parallel per-lane DNA sequence pipelines.

    Per lane: ``fastqSplit`` fans out into *width* independent 4-stage
    chains (``filterContams -> sol2sanger -> fastq2bfq -> map``) that a
    ``mapMerge`` joins; a global merge, ``maqIndex`` and ``pileup``
    finish the workflow.  Highly pipelined: long chains, bounded width.
    """
    if lanes < 1 or width < 1:
        raise WorkflowError("epigenomics needs lanes >= 1 and width >= 1")
    wf = Workflow(name)
    merges = []
    for lane in range(lanes):
        split = wf.add_task(Task(f"fastqSplit_{lane}", 100.0, "fastqSplit"))
        merge = wf.add_task(Task(f"mapMerge_{lane}", 150.0, "mapMerge"))
        merges.append(merge)
        for i in range(width):
            chain = [
                Task(f"filterContams_{lane}_{i}", 300.0, "filterContams"),
                Task(f"sol2sanger_{lane}_{i}", 200.0, "sol2sanger"),
                Task(f"fastq2bfq_{lane}_{i}", 150.0, "fastq2bfq"),
                Task(f"map_{lane}_{i}", 2500.0, "map"),
            ]
            prev_id = split.id
            for task in chain:
                wf.add_task(task)
                wf.add_dependency(prev_id, task.id, 0.3)
                prev_id = task.id
            wf.add_dependency(prev_id, merge.id, 0.3)
    global_merge = wf.add_task(Task("mapMergeGlobal", 200.0, "mapMerge"))
    for merge in merges:
        wf.add_dependency(merge.id, global_merge.id, 0.5)
    index = wf.add_task(Task("maqIndex", 300.0, "maqIndex"))
    wf.add_dependency(global_merge.id, index.id, 1.0)
    pileup = wf.add_task(Task("pileup", 400.0, "pileup"))
    wf.add_dependency(index.id, pileup.id, 1.0)
    return wf.validate()


def cybershake(sites: int = 4, variations: int = 4, name: str = "cybershake") -> Workflow:
    """CyberShake: seismic hazard characterization.

    Per site, an ``ExtractSGT`` feeds *variations* parallel
    ``SeismogramSynthesis`` tasks, each followed by a ``PeakValCalc``;
    two zip tasks gather all seismograms and all peak values.  Very
    wide and shallow — the data-parallel extreme of the gallery.
    """
    if sites < 1 or variations < 1:
        raise WorkflowError("cybershake needs sites >= 1 and variations >= 1")
    wf = Workflow(name)
    zip_seis = wf.add_task(Task("zipSeis", 300.0, "zip"))
    zip_psa = wf.add_task(Task("zipPSA", 200.0, "zip"))
    for s in range(sites):
        extract = wf.add_task(Task(f"extractSGT_{s}", 1500.0, "extractSGT"))
        for v in range(variations):
            synth = wf.add_task(
                Task(f"seismogram_{s}_{v}", 800.0, "seismogramSynthesis")
            )
            wf.add_dependency(extract.id, synth.id, 1.5)
            peak = wf.add_task(Task(f"peakVal_{s}_{v}", 100.0, "peakValCalc"))
            wf.add_dependency(synth.id, peak.id, 0.1)
            wf.add_dependency(synth.id, zip_seis.id, 0.5)
            wf.add_dependency(peak.id, zip_psa.id, 0.01)
    return wf.validate()


def ligo(groups: int = 3, group_size: int = 4, name: str = "ligo") -> Workflow:
    """LIGO Inspiral: gravitational-wave template analysis.

    *groups* independent branches: each has *group_size* parallel
    ``TmpltBank -> Inspiral`` pairs joined by a ``Thinca``; a per-group
    ``TrigBank -> Inspiral2`` refinement chain feeds a final global
    ``Thinca2`` coincidence stage.
    """
    if groups < 1 or group_size < 1:
        raise WorkflowError("ligo needs groups >= 1 and group_size >= 1")
    wf = Workflow(name)
    final = wf.add_task(Task("thinca2_global", 200.0, "thinca"))
    for g in range(groups):
        thinca = wf.add_task(Task(f"thinca_{g}", 150.0, "thinca"))
        for i in range(group_size):
            bank = wf.add_task(Task(f"tmpltbank_{g}_{i}", 700.0, "tmpltbank"))
            insp = wf.add_task(Task(f"inspiral_{g}_{i}", 2000.0, "inspiral"))
            wf.add_dependency(bank.id, insp.id, 0.2)
            wf.add_dependency(insp.id, thinca.id, 0.1)
        trig = wf.add_task(Task(f"trigbank_{g}", 100.0, "trigbank"))
        wf.add_dependency(thinca.id, trig.id, 0.1)
        insp2 = wf.add_task(Task(f"inspiral2_{g}", 1500.0, "inspiral"))
        wf.add_dependency(trig.id, insp2.id, 0.2)
        wf.add_dependency(insp2.id, final.id, 0.1)
    return wf.validate()


def sipht(patser_jobs: int = 8, name: str = "sipht") -> Workflow:
    """SIPHT: bacterial sRNA annotation.

    A wide front of independent ``Patser`` jobs concatenated by
    ``PatserConcate``, alongside a handful of independent preparatory
    jobs, all feeding the central ``SRNA`` prediction; its output runs
    through several parallel BLAST variants that a final ``SRNAAnnotate``
    joins.  Irregular, annotation-style structure.
    """
    if patser_jobs < 1:
        raise WorkflowError("sipht needs patser_jobs >= 1")
    wf = Workflow(name)
    concat = wf.add_task(Task("patserConcate", 100.0, "patserConcate"))
    for i in range(patser_jobs):
        patser = wf.add_task(Task(f"patser_{i}", 300.0, "patser"))
        wf.add_dependency(patser.id, concat.id, 0.05)
    srna = wf.add_task(Task("srna", 2000.0, "srna"))
    wf.add_dependency(concat.id, srna.id, 0.1)
    for prep in ("transterm", "findterm", "rnamotif", "blast_candidates"):
        job = wf.add_task(Task(prep, 600.0, prep))
        wf.add_dependency(job.id, srna.id, 0.2)
    ffn = wf.add_task(Task("ffnParse", 150.0, "ffnParse"))
    wf.add_dependency(srna.id, ffn.id, 0.1)
    annotate = wf.add_task(Task("srnaAnnotate", 300.0, "srnaAnnotate"))
    for blast in ("blastSynteny", "blastParalogues", "blastQRNA", "blastSRNA"):
        job = wf.add_task(Task(blast, 800.0, blast))
        wf.add_dependency(ffn.id, job.id, 0.2)
        wf.add_dependency(job.id, annotate.id, 0.05)
    wf.add_dependency(srna.id, annotate.id, 0.1)
    return wf.validate()
