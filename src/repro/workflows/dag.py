"""Directed-acyclic-graph workflow model.

Wraps a :class:`networkx.DiGraph` whose nodes are task ids and whose
edges carry the size (GB) of the data the parent ships to the child.
Provides the graph queries every scheduler in the paper needs: entry and
exit tasks, topological order, *levels* (the paper's level-ranking unit
of parallelism), and the critical path (the backbone of CPA-Eager).

Structural queries are memoized: schedulers call ``topological_order``,
``levels``, ``predecessors``/``successors`` O(V·E) times per run, so
each is computed once and served from a cache that ``add_task`` and
``add_dependency`` invalidate (the *cached-DAG contract*, see
DESIGN.md).  Cached collections are copied on the way out, so callers
may mutate the returned lists freely.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

import networkx as nx

from repro.errors import WorkflowError
from repro.workflows.task import Task

_str_eq = operator.eq


def _columnar_active(n_tasks: int) -> bool:
    """Size-aware dispatch gate (imported lazily so the workflow layer
    keeps no import-time dependency on the kernel/cloud layers)."""
    from repro.kernels.dispatch import columnar_active

    return columnar_active(n_tasks)


class Workflow:
    """An immutable-after-validation DAG of :class:`Task` objects.

    Build one by adding tasks and dependencies, then call
    :meth:`validate` (or any query method — they validate lazily).
    ``data_gb`` on an edge is the volume the parent transfers to the
    child when they run on different VMs.
    """

    def __init__(self, name: str = "workflow") -> None:
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        self.name = name
        self._graph = nx.DiGraph()
        self._tasks: Dict[str, Task] = {}
        self._validated = False
        #: memoized structural queries; cleared on any mutation
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register *task*; ids must be unique."""
        if task.id in self._tasks:
            raise WorkflowError(f"duplicate task id {task.id!r} in {self.name!r}")
        self._tasks[task.id] = task
        self._graph.add_node(task.id)
        self._invalidate()
        return task

    def add_tasks(self, tasks) -> List[Task]:
        """Register many tasks at once — the batch twin of
        :meth:`add_task` (one bulk node insert, one cache invalidation),
        used by the generators for large workflows."""
        registry = self._tasks
        added: List[Task] = []
        for task in tasks:
            if task.id in registry:
                raise WorkflowError(
                    f"duplicate task id {task.id!r} in {self.name!r}"
                )
            registry[task.id] = task
            added.append(task)
        # Direct node insert — the ``add_nodes_from`` layout for fresh
        # hashable nodes (attr dict + empty adjacency rows in both
        # directions) without its per-node membership dispatch.
        node = self._graph._node
        succ = self._graph._succ
        pred = self._graph._pred
        for t in added:
            tid = t.id
            node[tid] = {}
            succ[tid] = {}
            pred[tid] = {}
        self._invalidate()
        return added

    def add_dependency(self, parent: str, child: str, data_gb: float = 0.0) -> None:
        """Add a *parent -> child* edge shipping *data_gb* gigabytes."""
        for tid in (parent, child):
            if tid not in self._tasks:
                raise WorkflowError(f"unknown task {tid!r} in dependency")
        if parent == child:
            raise WorkflowError(f"self-dependency on {parent!r}")
        if data_gb < 0:
            raise WorkflowError(f"negative data size on {parent!r}->{child!r}")
        self._graph.add_edge(parent, child, data_gb=float(data_gb))
        self._invalidate()

    def add_dependencies(self, deps) -> None:
        """Add many ``(parent, child, data_gb)`` edges at once — same
        checks and insertion order as per-edge :meth:`add_dependency`,
        validated in bulk (C-level set/min scans; the per-edge loop is
        re-run only to name the offender when a check fails)."""
        deps = list(deps)
        if not deps:
            return
        us, vs, gbs = zip(*deps)
        registry = self._tasks
        if not (registry.keys() >= set(us) and registry.keys() >= set(vs)):
            for parent, child, _ in deps:
                for tid in (parent, child):
                    if tid not in registry:
                        raise WorkflowError(f"unknown task {tid!r} in dependency")
        if any(map(_str_eq, us, vs)):
            parent = next(u for u, v, _ in deps if u == v)
            raise WorkflowError(f"self-dependency on {parent!r}")
        if min(gbs) < 0:
            parent, child, _ = next((u, v, g) for u, v, g in deps if g < 0)
            raise WorkflowError(f"negative data size on {parent!r}->{child!r}")
        # Direct adjacency insert: one shared data dict per edge in both
        # directions, exactly the ``DiGraph.add_edge`` layout (nodes all
        # exist — checked above), minus its per-edge dispatch.
        succ = self._graph._succ
        pred = self._graph._pred
        dds = [{"data_gb": float(gb)} for gb in gbs]
        for u, v, dd in zip(us, vs, dds):
            succ[u][v] = dd
            pred[v][u] = dd
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop every memoized query after a structural mutation."""
        self._validated = False
        self._cache.clear()

    @property
    def validated(self) -> bool:
        """True when the structure has been checked since the last
        mutation (the cached validated flag)."""
        return self._validated

    def validate(self) -> "Workflow":
        """Check the structure; raises :class:`WorkflowError` on cycles or
        an empty workflow. Returns ``self`` for chaining.

        The check is O(V+E) but memoized: mutations reset the validated
        flag, and only add nodes/edges, so a workflow that passed once
        and has not been mutated is still acyclic and returns
        immediately.
        """
        if self._validated:
            return self
        if not self._tasks:
            raise WorkflowError(f"workflow {self.name!r} has no tasks")
        if _columnar_active(len(self._tasks)):
            # One Kahn peel doubles as the acyclicity check *and* seeds
            # the columnar cache every downstream kernel reuses, so the
            # networkx DAG walk is paid only by small workflows.
            from repro.kernels.columnar import ColumnarDAG

            self._validated = True  # the builder reads structural memos
            try:
                self._cache["columnar_dag"] = ColumnarDAG(self)
            except WorkflowError:
                self._validated = False
                cycle = nx.find_cycle(self._graph)
                raise WorkflowError(
                    f"workflow {self.name!r} has a cycle: {cycle}"
                ) from None
            return self
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise WorkflowError(f"workflow {self.name!r} has a cycle: {cycle}")
        self._validated = True
        return self

    def _require_valid(self) -> None:
        if not self._validated:
            self.validate()

    def _memo(self, key: str, compute: Callable[[], object]) -> object:
        """Return the cached value for *key*, computing it on a miss."""
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise WorkflowError(f"unknown task {task_id!r}") from None

    @property
    def task_ids(self) -> List[str]:
        return list(self._tasks)

    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def edges(self) -> List[Tuple[str, str, float]]:
        """All dependencies as ``(parent, child, data_gb)`` triples."""
        cached = self._memo(
            "edges",
            lambda: [
                (u, v, d.get("data_gb", 0.0))
                for u, v, d in self._graph.edges(data=True)
            ],
        )
        return list(cached)

    def _edge_data(self) -> Dict[Tuple[str, str], float]:
        """Memoized ``{(parent, child): data_gb}`` — schedulers query
        edge volumes millions of times per run, and the networkx edge
        view is far slower than a plain dict."""
        return self._memo(
            "edge_data",
            lambda: {
                (u, v): d.get("data_gb", 0.0)
                for u, v, d in self._graph.edges(data=True)
            },
        )  # type: ignore[return-value]

    def data_gb(self, parent: str, child: str) -> float:
        try:
            return self._edge_data()[parent, child]
        except KeyError:
            raise WorkflowError(f"no dependency {parent!r}->{child!r}") from None

    def _adjacency(self) -> Dict[str, Dict[str, List[str]]]:
        """Memoized ``{"pred": {task: [...]}, "succ": {task: [...]}}``."""
        def build():
            return {
                "pred": {
                    t: sorted(self._graph.predecessors(t)) for t in self._tasks
                },
                "succ": {
                    t: sorted(self._graph.successors(t)) for t in self._tasks
                },
            }

        return self._memo("adjacency", build)  # type: ignore[return-value]

    def predecessors(self, task_id: str) -> List[str]:
        self.task(task_id)
        return list(self._adjacency()["pred"][task_id])

    def successors(self, task_id: str) -> List[str]:
        self.task(task_id)
        return list(self._adjacency()["succ"][task_id])

    def pred_map(self) -> Mapping[str, List[str]]:
        """The memoized ``{task: sorted predecessor ids}`` mapping.

        Returned **without copying** — treat it as read-only.  This is
        the hot-path twin of :meth:`predecessors`: the scheduling kernels
        touch every edge per placement, and per-call list copies dominate
        their profile at 50k+ tasks.
        """
        return self._adjacency()["pred"]

    def succ_map(self) -> Mapping[str, List[str]]:
        """The memoized ``{task: sorted successor ids}`` mapping
        (read-only, uncopied); see :meth:`pred_map`."""
        return self._adjacency()["succ"]

    def edge_data_map(self) -> Mapping[Tuple[str, str], float]:
        """The memoized ``{(parent, child): data_gb}`` mapping
        (read-only, uncopied); see :meth:`pred_map`."""
        return self._edge_data()

    # ------------------------------------------------------------------
    # cached traversal orders (the O(V+E) sweep backbone)
    # ------------------------------------------------------------------
    def _nx_topo(self) -> List[str]:
        """Memoized ``nx.topological_sort`` order.

        Kept *separately* from :meth:`topological_order` (which is
        lexicographic) because ``level_of`` and ``critical_path``
        historically iterated this order, and their tie-breaks — first
        maximum wins — must stay byte-identical to the pre-indexed
        implementations.
        """
        return self._memo(
            "nx_topo", lambda: list(nx.topological_sort(self._graph))
        )  # type: ignore[return-value]

    def _pred_insertion(self) -> Dict[str, List[str]]:
        """Memoized predecessor lists in *edge-insertion* order (the
        ``nx.DiGraph.predecessors`` order ``critical_path`` tie-breaks
        on), as opposed to the sorted lists of :meth:`pred_map`."""
        return self._memo(
            "pred_insertion",
            lambda: {t: list(self._graph.predecessors(t)) for t in self._tasks},
        )  # type: ignore[return-value]

    def entry_tasks(self) -> List[str]:
        """Tasks with no predecessors (the paper's *initial* tasks)."""
        self._require_valid()
        cached = self._memo(
            "entry_tasks",
            lambda: sorted(
                t for t, ps in self._adjacency()["pred"].items() if not ps
            ),
        )
        return list(cached)

    def exit_tasks(self) -> List[str]:
        self._require_valid()
        cached = self._memo(
            "exit_tasks",
            lambda: sorted(
                t for t, ss in self._adjacency()["succ"].items() if not ss
            ),
        )
        return list(cached)

    def topological_order(self) -> List[str]:
        """A deterministic topological order (lexicographic tie-break)."""
        self._require_valid()
        cached = self._memo(
            "topological_order",
            lambda: list(nx.lexicographical_topological_sort(self._graph)),
        )
        return list(cached)

    # ------------------------------------------------------------------
    # structure used by the schedulers
    # ------------------------------------------------------------------
    def level_of(self) -> Dict[str, int]:
        """Longest-path depth of every task (entry tasks are level 0).

        This is the paper's *level ranking*: all tasks in one level are
        mutually independent and may run in parallel.
        """
        self._require_valid()

        def build():
            if _columnar_active(len(self._tasks)):
                # Kahn wave peel over the CSR arrays (one bincount pass
                # per level).  Values are identical — depth is
                # order-independent — and every consumer (lookups,
                # ``levels()`` regrouping, dict equality) is iteration-
                # order-agnostic, so the insertion-order dict is safe.
                from repro.kernels.columnar import level_of_columnar

                return level_of_columnar(self)
            # Single O(V+E) sweep over the cached topo order and plain
            # dict adjacency — no networkx traversal per query.  The
            # value (1 + max over preds) is order-independent, and the
            # cached nx order keeps dict insertion order identical to
            # the historical implementation.
            pred = self._pred_insertion()
            levels: Dict[str, int] = {}
            for tid in self._nx_topo():
                preds = pred[tid]
                levels[tid] = 0 if not preds else 1 + max(levels[p] for p in preds)
            return levels

        return dict(self._memo("level_of", build))  # type: ignore[arg-type]

    def levels(self) -> List[List[str]]:
        """Tasks grouped by level, each group sorted by id."""

        def build():
            by_level: Dict[int, List[str]] = {}
            for tid, lvl in self.level_of().items():
                by_level.setdefault(lvl, []).append(tid)
            return [sorted(by_level[k]) for k in sorted(by_level)]

        cached = self._memo("levels", build)
        return [list(level) for level in cached]

    def max_parallelism(self) -> int:
        """Width of the widest level."""
        return self._memo(
            "max_parallelism",
            lambda: max(len(level) for level in self.levels()),
        )  # type: ignore[return-value]

    def critical_path(
        self,
        exec_time: Callable[[str], float] | None = None,
        transfer_time: Callable[[str, str], float] | None = None,
    ) -> Tuple[List[str], float]:
        """Longest path through the DAG and its length.

        *exec_time* maps a task id to its duration (defaults to the
        reference ``work``); *transfer_time* maps an edge to its
        communication delay (defaults to zero, the CPU-intensive case).
        Returns ``(path_task_ids, path_length_seconds)``.
        """
        self._require_valid()
        if (
            exec_time is None
            and transfer_time is None
            and _columnar_active(len(self._tasks))
        ):
            # default weights: the vectorized level sweep reproduces the
            # scalar first-maximum tie-breaks (property-tested)
            from repro.kernels.columnar import critical_path_columnar

            return critical_path_columnar(self)
        w = exec_time or (lambda tid: self._tasks[tid].work)
        c = transfer_time or (lambda u, v: 0.0)
        # One O(V+E) sweep over the cached traversal order.  Iteration
        # order (and hence first-maximum tie-breaks) matches the
        # historical networkx-walking implementation exactly.
        preds_of = self._pred_insertion()
        dist: Dict[str, float] = {}
        best_pred: Dict[str, str | None] = {}
        for tid in self._nx_topo():
            best, pred = 0.0, None
            for p in preds_of[tid]:
                cand = dist[p] + c(p, tid)
                if cand > best:
                    best, pred = cand, p
            dist[tid] = best + w(tid)
            best_pred[tid] = pred
        end = max(dist, key=lambda t: dist[t])
        path = [end]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path, dist[end]

    def total_work(self) -> float:
        """Sum of reference execution times over all tasks."""
        return sum(t.work for t in self._tasks.values())

    def descendants(self, task_id: str) -> List[str]:
        self.task(task_id)
        return sorted(nx.descendants(self._graph, task_id))

    def ancestors(self, task_id: str) -> List[str]:
        self.task(task_id)
        return sorted(nx.ancestors(self._graph, task_id))

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def with_works(self, works: Mapping[str, float]) -> "Workflow":
        """Copy of this workflow with task execution times replaced.

        *works* must cover every task; used to impose an execution-time
        scenario (Pareto, best case, worst case) on a fixed shape.
        """
        missing = set(self._tasks) - set(works)
        if missing:
            raise WorkflowError(f"works missing for tasks: {sorted(missing)}")
        out = Workflow(self.name)
        for task in self._tasks.values():
            out.add_task(task.with_work(works[task.id]))
        for u, v, gb in self.edges():
            out.add_dependency(u, v, gb)
        return out.validate()

    def with_data_sizes(self, sizes: Mapping[Tuple[str, str], float]) -> "Workflow":
        """Copy with edge data volumes replaced (missing edges keep theirs)."""
        out = Workflow(self.name)
        for task in self._tasks.values():
            out.add_task(task)
        for u, v, gb in self.edges():
            out.add_dependency(u, v, sizes.get((u, v), gb))
        return out.validate()

    def relabeled(self, name: str) -> "Workflow":
        out = Workflow(name)
        for task in self._tasks.values():
            out.add_task(task)
        for u, v, gb in self.edges():
            out.add_dependency(u, v, gb)
        return out

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Structural statistics (used by the Figure 2 regenerator)."""
        self._require_valid()
        levels = self.levels()
        cp, cp_len = self.critical_path()
        return {
            "name": self.name,
            "tasks": len(self),
            "edges": self._graph.number_of_edges(),
            "entry_tasks": len(self.entry_tasks()),
            "exit_tasks": len(self.exit_tasks()),
            "levels": len(levels),
            "max_parallelism": self.max_parallelism(),
            "critical_path_tasks": len(cp),
            "critical_path_seconds": cp_len,
            "total_work_seconds": self.total_work(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Workflow({self.name!r}, tasks={len(self)}, "
            f"edges={self._graph.number_of_edges()})"
        )
