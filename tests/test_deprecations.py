"""The kwarg-alias life cycle: the v1.2 legacy spellings are retired —
they raise :class:`TypeError` with a did-you-mean hint naming the
canonical replacement — while :func:`renamed_kwargs` (the deprecation
stage) stays available for the next rename."""

import warnings

import pytest

import repro.api as api
from repro.util.compat import LEGACY_KWARGS, removed_kwargs, renamed_kwargs


def _tiny_sweep_kwargs():
    return dict(
        workflows={"sequential": api.sequential()},
        scenarios=[api.scenario("best")],
        strategies=[api.strategy("OneVMperTask-s")],
    )


class TestRenamedKwargsDecorator:
    """The deprecation-stage decorator, kept in compat for future use."""

    def test_forwards_and_warns(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.warns(DeprecationWarning, match="use new="):
            assert fn(old=42) == 42

    def test_both_spellings_is_type_error(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.raises(TypeError, match="both 'old'"):
            fn(old=1, new=2)

    def test_new_spelling_is_silent(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fn(new=7) == 7


class TestRemovedKwargsDecorator:
    """The retirement-stage decorator the entry points now use."""

    def test_old_name_raises_with_hint(self):
        @removed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.raises(TypeError, match=r"did you mean new=\?"):
            fn(old=42)

    def test_message_names_the_function_and_old_spelling(self):
        @removed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.raises(TypeError, match="fn\\(\\) no longer accepts 'old'"):
            fn(old=1)

    def test_new_spelling_is_silent(self):
        @removed_kwargs(old="new")
        def fn(new=None):
            return new

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fn(new=7) == 7

    def test_legacy_table_is_the_documented_mapping(self):
        assert LEGACY_KWARGS == {
            "n_jobs": "jobs",
            "pool": "backend",
            "rng_seed": "seed",
            "error_mode": "on_error",
            "faults": "fault_plan",
            "recovery_policy": "recovery",
        }


class TestRunSweep:
    def test_n_jobs_retired(self):
        with pytest.raises(TypeError, match=r"did you mean jobs=\?"):
            api.run_sweep(n_jobs=1, **_tiny_sweep_kwargs())

    def test_rng_seed_retired(self):
        with pytest.raises(TypeError, match=r"did you mean seed=\?"):
            api.run_sweep(rng_seed=3, **_tiny_sweep_kwargs())

    def test_pool_retired(self):
        with pytest.raises(TypeError, match=r"did you mean backend=\?"):
            api.run_sweep(pool="serial", **_tiny_sweep_kwargs())

    def test_error_mode_retired(self):
        with pytest.raises(TypeError, match=r"did you mean on_error=\?"):
            api.run_sweep(error_mode="raise", **_tiny_sweep_kwargs())

    def test_canonical_spellings_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep = api.run_sweep(jobs=1, seed=3, **_tiny_sweep_kwargs())
        assert sweep.metrics


class TestSimulatorEntryPoints:
    def test_run_with_faults_rejects_faults(self):
        platform = api.CloudPlatform.ec2()
        sched = api.reference_schedule(api.sequential(), platform)
        with pytest.raises(TypeError, match=r"did you mean fault_plan=\?"):
            api.run_with_faults(sched, faults=api.FaultPlan())
        result = api.run_with_faults(sched, fault_plan=api.FaultPlan())
        assert result.makespan > 0

    def test_run_online_rejects_recovery_policy(self):
        platform = api.CloudPlatform.ec2()
        with pytest.raises(TypeError, match=r"did you mean recovery=\?"):
            api.run_online(api.sequential(), platform, recovery_policy="retry")
        result = api.run_online(api.sequential(), platform, recovery="retry")
        assert result.makespan > 0


class TestExperimentEntryPoints:
    def test_replicate_rejects_pool(self):
        with pytest.raises(TypeError, match=r"did you mean backend=\?"):
            api.replicate(
                seeds=[1],
                workflows={"sequential": api.sequential()},
                strategies=[api.strategy("OneVMperTask-s")],
                pool="serial",
            )

    def test_run_fault_sweep_rejects_recovery_policy(self):
        with pytest.raises(TypeError, match=r"did you mean recovery=\?"):
            api.run_fault_sweep(
                workflow=api.sequential(),
                workflow_name="sequential",
                strategies=[api.strategy("OneVMperTask-s")],
                intensities=[0.0],
                fault_seeds=1,
                recovery_policy="retry",
            )
