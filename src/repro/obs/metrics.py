"""Per-run counters and gauges, aggregated deterministically.

A :class:`MetricsRegistry` captures what a run *did* — VMs rented, BTUs
billed, tasks retried, cache hits, events processed — as plain named
counters.  Registries merge associatively and serialize with sorted
keys, so a sweep's rolled-up summary is byte-identical no matter which
execution backend (serial / thread / process) produced the cells: every
count is a fact of the simulation, never of the host machine.

Activation
----------
Deeply nested hot paths (the :class:`~repro.core.builder.ScheduleBuilder`
and the provisioning policies) cannot take a ``metrics=`` argument
without threading it through every scheduler signature.  Instead a
registry is *activated* for a dynamic scope::

    registry = MetricsRegistry()
    with registry.activate():
        run_strategy(...)        # builders pick the registry up

and instrumented constructors capture :func:`current` once.  The scope
is a :mod:`contextvars` context, so thread- and process-pool workers
each see only their own cell's registry.  With no registry active,
``current()`` is ``None`` and every instrumented site skips its
emission behind a single ``is not None`` branch — the zero-overhead
contract shared with :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import contextvars
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Mapping, Optional

_ACTIVE: "contextvars.ContextVar[Optional[MetricsRegistry]]" = contextvars.ContextVar(
    "repro_metrics_registry", default=None
)


def current() -> "Optional[MetricsRegistry]":
    """The registry activated in the current context, or ``None``."""
    return _ACTIVE.get()


class MetricsRegistry:
    """Named counters + gauges with deterministic serialization."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add *n* to counter *name* (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge *name*."""
        self.gauges[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Current value of counter *name* (gauges via ``.gauges``)."""
        return self.counters.get(name, default)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry | Mapping[str, object]") -> None:
        """Fold another registry (or its ``as_dict`` form) into this one.

        Counters add; gauges take the incoming value (last write wins,
        and merges happen in deterministic grid order).
        """
        if isinstance(other, MetricsRegistry):
            counters, gauges = other.counters, other.gauges
        else:
            counters = other.get("counters", {})  # type: ignore[assignment]
            gauges = other.get("gauges", {})  # type: ignore[assignment]
        for name, value in counters.items():
            self.inc(name, value)
        for name, value in gauges.items():
            self.set_gauge(name, value)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Sorted-key plain-dict form (pickles/JSONs deterministically)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def summary_text(self) -> str:
        """Canonical one-line-per-metric rendering.

        Byte-identical for equal registries: keys sorted, integers
        printed as integers, floats with ``repr`` (shortest round-trip).
        """
        lines = []
        for kind, table in (("counter", self.counters), ("gauge", self.gauges)):
            for name in sorted(table):
                value = table[name]
                if isinstance(value, float) and value.is_integer():
                    value = int(value)
                lines.append(f"{kind} {name} = {value!r}")
        return "\n".join(lines)

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=1, sort_keys=True))
        return path

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self):
        """Make this registry :func:`current` for the enclosed scope."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)})"
        )
