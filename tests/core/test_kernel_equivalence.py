"""Property tests: the indexed kernels are byte-identical to the
straightforward reference implementations.

The scaling work (DESIGN.md §9) rewrote the provisioning policies, the
ranking pass and the DAG sweeps against incremental indexes.  The
contract is *trace identity*, not statistical equivalence: on any DAG,
the optimized kernel must reproduce the reference schedule exactly —
same VMs (flavor, region, rent window), same task order and timing on
each VM, same makespan and cost.  These tests drive both kernels over
seeded random DAGs of the shapes that stress different code paths
(wide levels, pure chains, diamonds, mapreduce fan-in) and compare the
full trace.
"""

from __future__ import annotations

import math

import pytest

from repro.cloud.instance import SMALL
from repro.cloud.platform import CloudPlatform
from repro.core.allocation import HeftScheduler, LevelScheduler
from repro.core.allocation.ranking import upward_rank, upward_rank_reference
from repro.core.provisioning import PROVISIONING_POLICIES, REFERENCE_POLICIES
from repro.workflows.dag import Workflow
from repro.workflows.generators import fork_join, mapreduce, random_layered
from repro.workflows.reference import critical_path_reference, level_of_reference
from repro.workflows.task import Task


# ----------------------------------------------------------------------
# DAG zoo: seeded shapes that stress different kernel paths
# ----------------------------------------------------------------------
def _chain(n: int, seed: int) -> Workflow:
    """Pure chain: every level has size 1 (sequential policy branch)."""
    wf = Workflow(f"chain{n}-s{seed}")
    prev = None
    for i in range(n):
        t = wf.add_task(Task(f"t{i}", 300.0 + 700.0 * ((seed * 31 + i) % 7), "w"))
        if prev is not None:
            wf.add_dependency(prev.id, t.id, 0.02 * ((seed + i) % 3))
        prev = t
    return wf.validate()


def _wide(seed: int) -> Workflow:
    """Few layers, wide levels: stresses the level-pool index."""
    return random_layered(
        layers=4, width_range=(6, 14), edge_density=0.4, seed=seed,
        name=f"wide-s{seed}",
    )


def _diamond(seed: int) -> Workflow:
    """Repeated fork-join diamonds: alternating level sizes 1 and w."""
    return fork_join(width=3 + seed % 5, stages=2 + seed % 3,
                     name=f"diamond-s{seed}")


def _mapreduce(seed: int) -> Workflow:
    return mapreduce(mappers=5 + 3 * (seed % 4), reducers=1 + seed % 3,
                     name=f"mr-s{seed}")


def _deep_random(seed: int) -> Workflow:
    """Deep random layering: mixes singleton and parallel levels."""
    return random_layered(
        layers=9, width_range=(1, 5), edge_density=0.6, seed=seed,
        name=f"deep-s{seed}",
    )


SHAPES = {
    "chain": lambda seed: _chain(12 + seed % 9, seed),
    "wide": _wide,
    "diamond": _diamond,
    "mapreduce": _mapreduce,
    "deep": _deep_random,
}
SEEDS = [1, 7, 2013]


def _dag_cases():
    return [
        pytest.param(shape, seed, id=f"{shape}-s{seed}")
        for shape in SHAPES
        for seed in SEEDS
    ]


# ----------------------------------------------------------------------
# trace fingerprint
# ----------------------------------------------------------------------
def _fingerprint(schedule):
    """The full observable trace of a schedule, labels excluded (the
    reference policies carry ``*Reference`` names by design)."""
    vms = tuple(
        (
            vm.id,
            vm.itype.name,
            vm.region.name,
            vm.boot_seconds,
            tuple((p.task_id, p.start, p.end) for p in vm.placements),
        )
        for vm in schedule.vms
    )
    return vms, schedule.makespan, schedule.total_cost


def _scheduler_for(policy_name: str):
    """The paper's pairing: AllPar* needs level knowledge, the rest HEFT."""
    if policy_name.startswith("AllPar"):
        return LevelScheduler
    return HeftScheduler


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


# ----------------------------------------------------------------------
# provisioning kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("policy_name", sorted(REFERENCE_POLICIES))
def test_policy_trace_identical_to_reference(policy_name, shape, seed, platform):
    wf = SHAPES[shape](seed)
    scheduler_cls = _scheduler_for(policy_name)
    optimized = scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
        wf, platform
    )
    reference = scheduler_cls(REFERENCE_POLICIES[policy_name]()).schedule(
        wf, platform
    )
    assert _fingerprint(optimized) == _fingerprint(reference)


def test_start_par_try_all_vms_trace_identical(platform):
    """The try_all_vms fallback scan has its own index path."""
    opt_cls = PROVISIONING_POLICIES["StartParNotExceed"]
    ref_cls = REFERENCE_POLICIES["StartParNotExceed"]
    for seed in SEEDS:
        wf = _deep_random(seed)
        optimized = HeftScheduler(opt_cls(try_all_vms=True)).schedule(wf, platform)
        reference = HeftScheduler(ref_cls(try_all_vms=True)).schedule(wf, platform)
        assert _fingerprint(optimized) == _fingerprint(reference)


# ----------------------------------------------------------------------
# ranking and DAG sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("include_transfers", [True, False])
def test_upward_rank_identical_to_reference(shape, seed, include_transfers, platform):
    wf = SHAPES[shape](seed)
    fast = upward_rank(wf, platform, SMALL, include_transfers=include_transfers)
    slow = upward_rank_reference(
        wf, platform, SMALL, include_transfers=include_transfers
    )
    assert set(fast) == set(slow)
    for tid in fast:
        # byte-identical floats, not approx: both kernels must combine
        # the same operands in the same order
        assert fast[tid] == slow[tid], tid


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_level_of_identical_to_reference(shape, seed):
    wf = SHAPES[shape](seed)
    assert wf.level_of() == level_of_reference(wf)


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_critical_path_identical_to_reference(shape, seed):
    wf = SHAPES[shape](seed)
    assert wf.critical_path() == critical_path_reference(wf)
    halved = lambda tid: wf.task(tid).work / 2.0  # noqa: E731
    transfer = lambda u, v: 11.0  # noqa: E731
    assert wf.critical_path(
        exec_time=halved, transfer_time=transfer
    ) == critical_path_reference(wf, exec_time=halved, transfer_time=transfer)


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_schedules_are_internally_consistent(shape, seed, platform):
    """Sanity on top of trace identity: optimized schedules validate."""
    wf = SHAPES[shape](seed)
    s = HeftScheduler("StartParExceed").schedule(wf, platform)
    assert math.isfinite(s.makespan) and s.makespan > 0
    assert set(s.workflow.task_ids) == {
        p.task_id for vm in s.vms for p in vm.placements
    }


# ----------------------------------------------------------------------
# columnar fused kernels (DESIGN.md §12)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("policy_name", sorted(PROVISIONING_POLICIES))
def test_columnar_trace_identical_to_indexed(policy_name, shape, seed, platform):
    """The fused kernels reproduce the indexed kernels bit-exactly —
    same VM ids, rent windows and task timings — on every zoo DAG."""
    from repro.kernels.dispatch import columnar_disabled, force_columnar

    scheduler_cls = _scheduler_for(policy_name)
    with force_columnar():
        columnar = scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
            SHAPES[shape](seed), platform
        )
    with columnar_disabled():
        indexed = scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
            SHAPES[shape](seed), platform
        )
    assert _fingerprint(columnar) == _fingerprint(indexed)


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_columnar_analysis_identical_to_reference(shape, seed, platform):
    """Columnar rank/level/critical-path sweeps equal the references."""
    from repro.kernels.dispatch import force_columnar

    wf = SHAPES[shape](seed)
    with force_columnar():
        ranks = upward_rank(wf, platform, SMALL)
        levels = wf.level_of()
        cpath = wf.critical_path()
    assert ranks == upward_rank_reference(wf, platform, SMALL)
    assert levels == level_of_reference(SHAPES[shape](seed))
    assert cpath == critical_path_reference(SHAPES[shape](seed))


@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("policy_name", sorted(PROVISIONING_POLICIES))
def test_columnar_metrics_identical_to_indexed(policy_name, shape, seed, platform):
    """Counter byte-identity: the fused pass replicates the builder's
    memo hit/miss accounting, not just the schedule."""
    from repro.kernels.dispatch import columnar_disabled, force_columnar
    from repro.obs.metrics import MetricsRegistry

    scheduler_cls = _scheduler_for(policy_name)
    reg_c, reg_i = MetricsRegistry(), MetricsRegistry()
    with force_columnar(), reg_c.activate():
        scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
            SHAPES[shape](seed), platform
        )
    with columnar_disabled(), reg_i.activate():
        scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
            SHAPES[shape](seed), platform
        )
    assert reg_c.as_dict() == reg_i.as_dict()


def test_run_sweep_metrics_identical_columnar_vs_indexed():
    """End-to-end byte-identity on the paper's default grid: forcing the
    columnar kernels through ``run_sweep`` leaves every merged counter
    untouched (grid cells merge in deterministic grid order)."""
    from repro.experiments.runner import run_sweep
    from repro.kernels.dispatch import columnar_disabled, force_columnar
    from repro.obs.metrics import MetricsRegistry

    reg_c, reg_i = MetricsRegistry(), MetricsRegistry()
    with force_columnar():
        run_sweep(seed=2013, metrics=reg_c)
    with columnar_disabled():
        run_sweep(seed=2013, metrics=reg_i)
    assert reg_c.as_dict() == reg_i.as_dict()


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_replay_verify_matches_des(shape, seed, platform):
    """The recurrence replay accepts exactly what the DES accepts."""
    from repro.kernels.dispatch import force_columnar
    from repro.kernels.replay import replay_verify
    from repro.simulator.executor import simulate_schedule

    with force_columnar():
        s = HeftScheduler("StartParNotExceed").schedule(
            SHAPES[shape](seed), platform
        )
        assert replay_verify(s)
    simulate_schedule(s, check=True)


def test_replay_verify_catches_divergence(platform):
    """A plan whose timings cannot be realized must raise with the
    DES-identical message shape, not silently pass."""
    from repro.errors import SimulationError
    from repro.kernels.dispatch import force_columnar
    from repro.kernels.replay import replay_verify

    with force_columnar():
        s = HeftScheduler("StartParExceed").schedule(_wide(7), platform)
        # push one non-entry task's planned window later than its
        # dependencies allow: the replayed start diverges from the plan
        victim = next(
            p
            for vm in s.vms
            for p in vm.placements
            if s.workflow.predecessors(p.task_id)
        )
        object.__setattr__(victim, "start", victim.start + 123.0)
        object.__setattr__(victim, "end", victim.end + 123.0)
        with pytest.raises(SimulationError, match="simulated start"):
            replay_verify(s)


def test_replay_verify_defers_ineligible_cases(platform):
    """Anything outside the recurrence's model returns False (real DES
    takes over) instead of guessing."""
    from repro.kernels.dispatch import force_columnar
    from repro.kernels.replay import replay_verify
    from repro.obs.metrics import MetricsRegistry

    with force_columnar():
        s = HeftScheduler("StartParExceed").schedule(_wide(1), platform)
        with MetricsRegistry().activate():
            # an active registry expects the DES's sim.* counters
            assert not replay_verify(s)
    # below the columnar threshold (no force): the DES is cheap anyway
    assert not replay_verify(s)
