"""Figure 3 — CDF of the Pareto(shape=2, scale=500) execution times."""

import numpy as np

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.experiments.figures import figure3_cdf, render_figure3


def test_figure3(benchmark, artifact_dir):
    x, empirical, analytic = benchmark(figure3_cdf, 100_000, SWEEP_SEED)
    # the paper's curve: starts at 0 at x=500, ~0.94 by 2000, ~0.98 by 3500
    assert empirical[0] == 0.0
    assert abs(float(np.interp(2000.0, x, empirical)) - 0.9375) < 0.01
    assert float(np.interp(3500.0, x, empirical)) > 0.97
    # empirical matches the closed form everywhere
    assert np.max(np.abs(empirical - analytic)) < 0.01
    save_artifact(
        artifact_dir, "figure3.txt", render_figure3(100_000, SWEEP_SEED)
    )
