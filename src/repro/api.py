"""repro.api — the stable, supported surface of the library.

Everything a user script should need lives here, re-exported from the
implementation packages with one blessed spelling each.  Code written
against ``repro.api`` keeps working across internal refactors; names
*not* in :data:`__all__` (module internals, builder plumbing, private
kernels) may move or change between minor versions without notice.

Quickstart::

    import repro.api as api

    platform = api.CloudPlatform.ec2()
    sched = api.HeftScheduler("StartParNotExceed").schedule(
        api.montage(), platform, itype=platform.itype("medium"))
    api.simulate_schedule(sched)

    sweep = api.run_sweep(platform=platform, jobs=2, backend="thread")
    print(api.render_summary(api.summarize(sweep)))

One result protocol
-------------------
Every experiment entry point — :func:`run_sweep`,
:func:`run_fault_sweep`, :func:`run_pricing_sweep`,
:func:`run_service`/:func:`run_service_sweep` and :func:`autotune` —
returns a :class:`ResultBase`: ``.summary()`` renders the human
report, ``.to_json()`` is the JSON-stable (and, for seeded runs,
cross-backend byte-identical) data form, and ``.manifest`` carries the
producing run's reproducibility manifest when one was attached.  Hold
any experiment result through that one shape::

    result = api.run_sweep(jobs=2, backend="thread")   # any entry point
    print(result.summary())
    payload = result.to_json()

Constraints and autotuning
--------------------------
:class:`Constraints` (deadline seconds, budget USD, optional VM cap)
is the library-wide spelling of "an acceptable outcome":
:func:`evaluate`/:func:`compare_to_reference` stamp metrics with a
``feasible`` verdict, the service layer's per-tenant budget admission
is the same object with only ``budget`` set, and :func:`autotune`
searches the (policy, flavor, reduction, recovery, purchase-option)
space for the cheapest configuration whose re-simulated outcome
satisfies them::

    best = api.autotune(constraints=api.Constraints(deadline=7200),
                        workflow_name="montage", seed=0)
    print(best.winner.label, best.winner.cost)

The surface is grouped below:

* **Workflows** — the paper's four shapes plus the extension gallery
  and DAX/DOT interchange.
* **Platform** — the EC2-style cloud model: catalog, regions, billing.
* **Scheduling** — provisioning policies, allocation strategies, and
  the registries that name them.
* **Constraints** — deadline/budget/VM-cap bounds and the
  feasibility verdict on metrics (:mod:`repro.core.constraints`).
* **Simulation** — the discrete-event replay, online execution,
  perturbation studies, and fault injection/recovery.
* **Experiments** — the paper sweep, replication, fault sweeps,
  summaries and reports, all returning :class:`ResultBase` results.
* **Tune** — the constraint-aware configuration search
  (:mod:`repro.tune`).
* **Service** — the multi-tenant Workflow-as-a-Service mode: shared
  fleet, arrival streams, admission policies and the service loop
  (:mod:`repro.service`).  The indexed fleet kernels (DESIGN.md §14)
  keep this path near-linear in workflows: ~1000 workflows/50 tenants
  per ~1.3 wall-seconds, 10k workflows/500 tenants in well under a
  minute on one core.
* **Observability** — tracing, metrics and run manifests
  (:mod:`repro.obs`).
"""

from __future__ import annotations

# --- workflows ---------------------------------------------------------
from repro.workflows import (
    Task,
    Workflow,
    WorkflowProfile,
    profile,
    montage,
    cstem,
    mapreduce,
    sequential,
    fork_join,
    random_layered,
    epigenomics,
    cybershake,
    ligo,
    sipht,
    bag_of_tasks,
    parse_dax,
    parse_dax_string,
    to_dax,
    to_dot,
)

# --- execution-time models --------------------------------------------
from repro.workloads import (
    ParetoModel,
    BestCaseModel,
    WorstCaseModel,
    ConstantModel,
    apply_model,
)

# --- platform ----------------------------------------------------------
from repro.cloud import (
    CloudPlatform,
    InstanceType,
    instance_type,
    Region,
    EC2_REGIONS,
    BillingModel,
    NetworkModel,
    VM,
)

# --- scheduling --------------------------------------------------------
from repro.core import (
    Schedule,
    ScheduleMetrics,
    Constraints,
    ConstraintViolation,
    evaluate,
    compare_to_reference,
    reference_schedule,
    ProvisioningPolicy,
    provisioning_policy,
    SchedulingAlgorithm,
    scheduling_algorithm,
    HeftScheduler,
    CpaEagerScheduler,
    GainScheduler,
    AllParScheduler,
    AllPar1LnSScheduler,
    AllPar1LnSDynScheduler,
    AdaptiveSelector,
    Goal,
    recommend,
    RecoveryPolicy,
    RECOVERY_POLICIES,
    recovery_policy,
)

# --- simulation --------------------------------------------------------
from repro.simulator import (
    Simulator,
    simulate_schedule,
    SimulationResult,
    run_with_faults,
    FaultPlan,
    FaultStats,
    RobustnessReport,
    robustness_study,
    OnlineCloudExecutor,
    OnlineResult,
    run_online,
)

# --- experiments -------------------------------------------------------
from repro.experiments import (
    ResultBase,
    StrategySpec,
    paper_strategies,
    paper_workflows,
    strategy,
    Scenario,
    paper_scenarios,
    scenario,
    SweepResult,
    run_strategy,
    run_sweep,
    make_backend,
    replicate,
    render_replication,
    summarize,
    most_stable,
    render_summary,
    full_report,
    save_sweep,
    load_sweep,
    diff_sweeps,
    export_all,
)
from repro.experiments.faults import (
    FaultSweepResult,
    run_fault_sweep,
    render_fault_sweep,
)

# --- spot markets, cold starts, variable pricing -----------------------
from repro.market import (
    ConstantPrice,
    StepTracePrice,
    MeanRevertingPrice,
    price_path,
    PurchaseOption,
    ON_DEMAND,
    spot,
    Market,
    SpotInterruptionPlan,
    RebidHigher,
    FallbackOnDemand,
)
from repro.experiments.scenarios import (
    PriceScenario,
    price_scenario,
    price_scenarios,
)
from repro.experiments.pricing import (
    BootSetting,
    PricingSweepResult,
    paper_boot_settings,
    run_pricing_sweep,
    render_pricing_sweep,
)

# --- constraint-aware autotuning ---------------------------------------
from repro.tune import (
    autotune,
    Candidate,
    CandidateOutcome,
    TuneResult,
    TuneSpace,
)

# --- multi-tenant service (WaaS) ---------------------------------------
from repro.service import (
    FleetManager,
    FleetVM,
    WorkflowRequest,
    poisson_arrivals,
    trace_arrivals,
    AdmissionPolicy,
    admission_policy,
    WorkflowService,
    ServiceResult,
    run_service,
)
from repro.experiments.service import (
    ServiceSweepResult,
    run_service_sweep,
    render_service,
    render_service_sweep,
)

# --- observability -----------------------------------------------------
from repro.obs import (
    Tracer,
    NULL_TRACER,
    ensure_tracer,
    validate_chrome_trace,
    MetricsRegistry,
    build_manifest,
    write_manifest,
    load_manifest,
    manifest_argv,
    config_hash,
)

# --- errors ------------------------------------------------------------
from repro.errors import (
    ReproError,
    WorkflowError,
    PlatformError,
    SchedulingError,
    SimulationError,
    ExperimentError,
)

from repro import __version__

__all__ = [
    # workflows
    "Task",
    "Workflow",
    "WorkflowProfile",
    "profile",
    "montage",
    "cstem",
    "mapreduce",
    "sequential",
    "fork_join",
    "random_layered",
    "epigenomics",
    "cybershake",
    "ligo",
    "sipht",
    "bag_of_tasks",
    "parse_dax",
    "parse_dax_string",
    "to_dax",
    "to_dot",
    # execution-time models
    "ParetoModel",
    "BestCaseModel",
    "WorstCaseModel",
    "ConstantModel",
    "apply_model",
    # platform
    "CloudPlatform",
    "InstanceType",
    "instance_type",
    "Region",
    "EC2_REGIONS",
    "BillingModel",
    "NetworkModel",
    "VM",
    # scheduling
    "Schedule",
    "ScheduleMetrics",
    "Constraints",
    "ConstraintViolation",
    "evaluate",
    "compare_to_reference",
    "reference_schedule",
    "ProvisioningPolicy",
    "provisioning_policy",
    "SchedulingAlgorithm",
    "scheduling_algorithm",
    "HeftScheduler",
    "CpaEagerScheduler",
    "GainScheduler",
    "AllParScheduler",
    "AllPar1LnSScheduler",
    "AllPar1LnSDynScheduler",
    "AdaptiveSelector",
    "Goal",
    "recommend",
    "RecoveryPolicy",
    "RECOVERY_POLICIES",
    "recovery_policy",
    # simulation
    "Simulator",
    "simulate_schedule",
    "SimulationResult",
    "run_with_faults",
    "FaultPlan",
    "FaultStats",
    "RobustnessReport",
    "robustness_study",
    "OnlineCloudExecutor",
    "OnlineResult",
    "run_online",
    # experiments
    "ResultBase",
    "StrategySpec",
    "paper_strategies",
    "paper_workflows",
    "strategy",
    "Scenario",
    "paper_scenarios",
    "scenario",
    "SweepResult",
    "run_strategy",
    "run_sweep",
    "make_backend",
    "replicate",
    "render_replication",
    "summarize",
    "most_stable",
    "render_summary",
    "full_report",
    "save_sweep",
    "load_sweep",
    "diff_sweeps",
    "export_all",
    "FaultSweepResult",
    "run_fault_sweep",
    "render_fault_sweep",
    # spot markets, cold starts, variable pricing
    "ConstantPrice",
    "StepTracePrice",
    "MeanRevertingPrice",
    "price_path",
    "PurchaseOption",
    "ON_DEMAND",
    "spot",
    "Market",
    "SpotInterruptionPlan",
    "RebidHigher",
    "FallbackOnDemand",
    "PriceScenario",
    "price_scenario",
    "price_scenarios",
    "BootSetting",
    "PricingSweepResult",
    "paper_boot_settings",
    "run_pricing_sweep",
    "render_pricing_sweep",
    # constraint-aware autotuning
    "autotune",
    "Candidate",
    "CandidateOutcome",
    "TuneResult",
    "TuneSpace",
    # multi-tenant service (WaaS)
    "FleetManager",
    "FleetVM",
    "WorkflowRequest",
    "poisson_arrivals",
    "trace_arrivals",
    "AdmissionPolicy",
    "admission_policy",
    "WorkflowService",
    "ServiceResult",
    "run_service",
    "ServiceSweepResult",
    "run_service_sweep",
    "render_service",
    "render_service_sweep",
    # observability
    "Tracer",
    "NULL_TRACER",
    "ensure_tracer",
    "validate_chrome_trace",
    "MetricsRegistry",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_argv",
    "config_hash",
    # errors
    "ReproError",
    "WorkflowError",
    "PlatformError",
    "SchedulingError",
    "SimulationError",
    "ExperimentError",
    "__version__",
]
