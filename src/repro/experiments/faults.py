"""Fault-intensity sweep: ranking provisioning policies under failure.

The paper ranks its five provisioning policies assuming perfectly
reliable VMs.  This experiment re-ranks them when faults fire: each
(policy, workflow) schedule is replayed through the fault-injected
:class:`~repro.simulator.executor.ScheduleExecutor` over a grid of fault
*intensities* (scaling a base :class:`~repro.simulator.faults.FaultPlan`)
and several fault *seeds* (replicating the sample at fixed intensity),
under one :mod:`~repro.core.recovery` policy.  The summary reports, per
(policy, intensity): failure counts, retries, wasted BTU-seconds, and
the realized-vs-planned makespan and cost deltas — the robustness
counterpart of the paper's Figure 4/5 rankings.

Every cell is an independent work unit, fanned out over an
:class:`~repro.experiments.parallel.ExecutionBackend` through the same
guarded map the main sweep uses, so one aborted cell (a recovery policy
exhausting its attempt budget at very high intensity) yields a captured
failure, not a dead sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, strategy
from repro.experiments.parallel import (
    CellFailure,
    ExecutionBackend,
    make_backend,
    map_guarded,
)
from repro.experiments.result import ResultBase
from repro.simulator.executor import ScheduleExecutor
from repro.simulator.faults import FaultPlan, FaultStats
from repro.util.compat import removed_kwargs
from repro.util.tables import format_table
from repro.workflows.dag import Workflow

#: the five provisioning policies of the paper, at the small size — the
#: axis the robustness ranking compares
FAULT_POLICY_LABELS = (
    "OneVMperTask-s",
    "StartParNotExceed-s",
    "StartParExceed-s",
    "AllParNotExceed-s",
    "AllParExceed-s",
)

#: default intensity grid: the zero-fault control plus three levels
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class FaultCell:
    """One (strategy, intensity, fault seed) unit of the fault grid."""

    spec: StrategySpec
    workflow_name: str
    workflow: Workflow
    platform: CloudPlatform
    base_plan: FaultPlan
    intensity: float
    fault_seed: int
    recovery: str = "retry"


@dataclass(frozen=True)
class FaultCellResult:
    """Realized outcome of one fault-injected replay."""

    strategy: str
    workflow: str
    intensity: float
    fault_seed: int
    recovery: str
    planned_makespan: float
    planned_cost: float
    makespan: float
    cost: float
    stats: FaultStats

    @property
    def makespan_delta(self) -> float:
        """Realized minus planned makespan, seconds."""
        return self.makespan - self.planned_makespan

    @property
    def cost_delta(self) -> float:
        """Realized minus planned rent, USD."""
        return self.cost - self.planned_cost


def run_fault_cell(cell: FaultCell) -> FaultCellResult:
    """Build the schedule and replay it under the cell's fault sample
    (worker entry point — everything it touches pickles)."""
    sched = cell.spec.run(cell.workflow, cell.platform)
    plan = cell.base_plan.scaled(cell.intensity).with_seed(cell.fault_seed)
    result = ScheduleExecutor(
        sched, fault_plan=plan, recovery=cell.recovery
    ).run()
    assert result.faults is not None
    return FaultCellResult(
        strategy=cell.spec.label,
        workflow=cell.workflow_name,
        intensity=cell.intensity,
        fault_seed=cell.fault_seed,
        recovery=cell.recovery,
        planned_makespan=sched.makespan,
        planned_cost=sched.total_cost,
        makespan=result.makespan,
        cost=result.realized_cost,
        stats=result.faults,
    )


def fault_cell_label(cell: FaultCell) -> str:
    return (
        f"{cell.spec.label}/{cell.workflow_name}"
        f"@x{cell.intensity:g}#s{cell.fault_seed}"
    )


@dataclass
class FaultSweepResult(ResultBase):
    """All cells of one fault-intensity sweep, plus captured failures."""

    recovery: str
    base_plan: FaultPlan
    cells: List[FaultCellResult] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def strategies(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.strategy not in seen:
                seen.append(c.strategy)
        return seen

    def intensities(self) -> List[float]:
        return sorted({c.intensity for c in self.cells})

    def group(self, strategy_label: str, intensity: float) -> List[FaultCellResult]:
        return [
            c
            for c in self.cells
            if c.strategy == strategy_label and c.intensity == intensity
        ]

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The per-(policy, intensity) robustness tables."""
        return render_fault_sweep(self)

    def to_json(self) -> dict:
        """Cell outcomes as plain data (the base plan's market object is
        provenance, not data — it lives in the manifest, not here)."""
        return {
            "recovery": self.recovery,
            "cells": [dataclasses.asdict(c) for c in self.cells],
            "failures": [str(f) for f in self.failures],
        }


@removed_kwargs(n_jobs="jobs", pool="backend", recovery_policy="recovery")
def run_fault_sweep(
    platform: CloudPlatform | None = None,
    workflow: Workflow | None = None,
    workflow_name: str = "montage",
    strategies: Sequence[StrategySpec] | None = None,
    base_plan: FaultPlan | None = None,
    intensities: Iterable[float] = DEFAULT_INTENSITIES,
    fault_seeds: Iterable[int] | int = 3,
    recovery: str = "retry",
    jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    retries: int = 0,
    cell_timeout: float | None = None,
) -> FaultSweepResult:
    """Replay the five provisioning policies across a fault grid.

    ``fault_seeds`` is either an iterable of seeds or a count ``n``
    (meaning seeds ``0..n-1``).  Cells that abort (recovery budget
    exhausted) are captured as failures, and the sweep still returns
    every surviving cell.
    """
    platform = platform or CloudPlatform.ec2()
    if workflow is None:
        from repro.experiments.config import paper_workflows

        try:
            workflow = paper_workflows()[workflow_name]
        except KeyError:
            raise ExperimentError(
                f"unknown paper workflow {workflow_name!r}"
            ) from None
    if strategies is None:
        strategies = [strategy(lbl) for lbl in FAULT_POLICY_LABELS]
    if base_plan is None:
        base_plan = FaultPlan(
            task_fail_prob=0.1, vm_crash_rate=1 / 28800, boot_fail_prob=0.05
        )
    if isinstance(fault_seeds, int):
        fault_seeds = range(fault_seeds)
    intensities = [float(x) for x in intensities]
    seeds = [int(s) for s in fault_seeds]
    if not intensities or not seeds or not strategies:
        raise ExperimentError("fault sweep needs at least one of each axis")

    cells = [
        FaultCell(
            spec=spec,
            workflow_name=workflow_name,
            workflow=workflow,
            platform=platform,
            base_plan=base_plan,
            intensity=x,
            fault_seed=s,
            recovery=recovery,
        )
        for spec in strategies
        for x in intensities
        for s in seeds
    ]
    exec_backend = make_backend(backend, jobs)
    results, failures = map_guarded(
        exec_backend,
        run_fault_cell,
        cells,
        label_fn=fault_cell_label,
        retries=retries,
        timeout=cell_timeout,
    )
    return FaultSweepResult(
        recovery=recovery,
        base_plan=base_plan,
        cells=[r for r in results if r is not None],
        failures=failures,
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def render_fault_sweep(sweep: FaultSweepResult) -> str:
    """Aggregate table: one row per (policy, intensity), averaged over
    fault seeds; appended with the captured-failure summary, if any."""
    rows: List[Tuple] = []
    for label in sweep.strategies():
        for x in sweep.intensities():
            group = sweep.group(label, x)
            if not group:
                continue
            rows.append(
                (
                    label,
                    x,
                    len(group),
                    _mean([g.stats.failures for g in group]),
                    _mean([g.stats.retries for g in group]),
                    _mean([g.stats.resubmits + g.stats.replans for g in group]),
                    _mean([g.stats.wasted_btu_seconds for g in group]),
                    _mean([g.makespan_delta for g in group]),
                    _mean([g.cost_delta for g in group]),
                )
            )
    text = format_table(
        [
            "strategy",
            "intensity",
            "runs",
            "failures",
            "retries",
            "re-place",
            "wasted BTU-s",
            "Δmakespan s",
            "Δcost $",
        ],
        rows,
        float_fmt=".2f",
        title=(
            f"Fault-intensity sweep — recovery={sweep.recovery}, "
            f"plan(task={sweep.base_plan.task_fail_prob:g}, "
            f"crash={sweep.base_plan.vm_crash_rate:g}/s, "
            f"boot={sweep.base_plan.boot_fail_prob:g})"
        ),
    )
    if sweep.failures:
        lost = "\n".join(f"  {f}" for f in sweep.failures)
        text += f"\nunrecovered cells ({len(sweep.failures)}):\n{lost}"
    return text
