"""Hypothesis round-trip properties for the workflow interchange
formats (DAX XML and JSON) over random shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoDataModel
from repro.workflows.dax import parse_dax_string, to_dax
from repro.workflows.generators import random_layered
from repro.workflows.json_io import workflow_from_json, workflow_to_json

_shapes = st.builds(
    random_layered,
    layers=st.integers(1, 5),
    width_range=st.just((1, 4)),
    edge_density=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=25, deadline=None)
@given(_shapes)
def test_json_round_trip(wf):
    back = workflow_from_json(workflow_to_json(wf))
    assert back.task_ids == wf.task_ids
    assert back.edges() == wf.edges()
    for t in wf.tasks:
        assert back.task(t.id).work == t.work


@settings(max_examples=25, deadline=None)
@given(_shapes, st.integers(0, 1000))
def test_dax_round_trip_with_data(wf, seed):
    """DAX round-trips structure, runtimes and edge volumes (sizes are
    quantized to whole bytes by the format)."""
    concrete = apply_model(wf, ParetoDataModel(), seed=seed)
    back = parse_dax_string(to_dax(concrete))
    assert sorted(back.task_ids) == sorted(concrete.task_ids)
    assert sorted((u, v) for u, v, _ in back.edges()) == sorted(
        (u, v) for u, v, _ in concrete.edges()
    )
    for t in concrete.tasks:
        assert back.task(t.id).work == pytest.approx(t.work)
    for u, v, gb in concrete.edges():
        assert back.data_gb(u, v) == pytest.approx(gb, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(_shapes)
def test_round_trips_preserve_schedulability(wf):
    """A twice-round-tripped workflow schedules identically."""
    from repro.cloud.platform import CloudPlatform
    from repro.core.allocation.heft import HeftScheduler

    platform = CloudPlatform.ec2()
    back = workflow_from_json(workflow_to_json(wf))
    a = HeftScheduler("StartParNotExceed").schedule(wf, platform)
    b = HeftScheduler("StartParNotExceed").schedule(back, platform)
    assert a.makespan == pytest.approx(b.makespan)
    assert a.total_cost == pytest.approx(b.total_cost)
