"""Figure 4 — % cost loss vs % makespan gain for all 19 strategies on
each of the four workflows (Pareto scenario), vs OneVMperTask-small.

The assertions pin the *shape* the paper reports: the reference sits at
the origin; OneVMperTask-l buys gain at a 200-300% loss; AllPar*-s saves
without losing time; the dynamic upgraders' loss stays within [45,100]%.
"""

import pytest

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.baseline import reference_schedule
from repro.experiments.config import paper_strategies, paper_workflows
from repro.experiments.figures import figure4_points, render_figure4
from repro.experiments.runner import run_strategy
from repro.experiments.scenarios import scenario


def _regenerate_cell(workflow_name, platform):
    """Re-run the 19 strategies on one workflow's Pareto instance."""
    shape = paper_workflows()[workflow_name]
    wf = scenario("pareto", platform).apply(shape, SWEEP_SEED)
    ref = reference_schedule(wf, platform)
    return {
        spec.label: run_strategy(spec, wf, platform, reference=ref)
        for spec in paper_strategies()
    }


@pytest.mark.parametrize("workflow", ["montage", "cstem", "mapreduce", "sequential"])
def test_figure4(benchmark, platform, paper_sweep, artifact_dir, workflow):
    cell = benchmark(_regenerate_cell, workflow, platform)
    pts = {label: (m.gain_pct, m.loss_pct) for label, m in cell.items()}

    # the reference is the origin of the plot
    assert pts["OneVMperTask-s"] == (0.0, 0.0)

    # "OneVMperTask-l ... large loss of 200-300%"
    gain_l, loss_l = pts["OneVMperTask-l"]
    assert gain_l > 0
    assert 200.0 <= loss_l <= 300.0

    # AllPar[Not]Exceed-s always saves money without losing makespan
    for label in ("AllParExceed-s", "AllParNotExceed-s"):
        gain, loss = pts[label]
        assert loss <= 0.0
        assert gain >= -1e-6

    # dynamic upgraders: gain at a bounded loss (paper: [45, 100]%)
    for label in ("CPA-Eager", "GAIN"):
        gain, loss = pts[label]
        assert gain > 0
        assert 45.0 <= loss <= 100.0 + 1e-6

    # parallelism reduction never costs more than the reference
    for label in ("AllPar1LnS", "AllPar1LnSDyn"):
        assert pts[label][1] <= 1e-6

    if workflow == "sequential":
        # "for sequential workflows powerful VMs do bring benefits":
        # every -l strategy except OneVMperTask-l shows gain and savings
        for label in ("StartParExceed-l", "AllParExceed-l"):
            gain, loss = pts[label]
            assert gain > 0

    save_artifact(
        artifact_dir,
        f"figure4_{workflow}.txt",
        render_figure4(paper_sweep, scenario="pareto"),
    )
    from repro.experiments.figures import figure4_svg

    save_artifact(
        artifact_dir, f"figure4_{workflow}.svg", figure4_svg(paper_sweep, workflow)
    )
