"""Fixed-pool baselines from the paper's related-work section.

Commercial clouds use "simple allocation methods such as Round Robin
(Amazon EC2) [and] least connections (Rackspace) ... Other simple SAs
include Least-Load" (Sect. II).  These are inelastic: a fixed pool of
*pool_size* VMs is rented up front and tasks are spread across it —
the contrast class for the paper's elastic provisioning policies.
"""

from __future__ import annotations

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.ranking import heft_order
from repro.core.builder import ScheduleBuilder
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


class _FixedPoolScheduler(SchedulingAlgorithm):
    """Common machinery: rent *pool_size* VMs, order tasks by HEFT rank,
    delegate the pick-a-VM rule to the subclass."""

    def __init__(self, pool_size: int = 4) -> None:
        if pool_size < 1:
            raise SchedulingError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size

    def _pick(self, index: int, builder: ScheduleBuilder, task_id: str):
        raise NotImplementedError

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        builder = ScheduleBuilder(workflow, platform, itype, region)
        pool = [builder.new_vm() for _ in range(min(self.pool_size, len(workflow)))]
        for i, tid in enumerate(heft_order(workflow, platform, itype)):
            builder.place(tid, self._pick(i, builder, tid) or pool[0])
        return builder.build(algorithm=self.name, provisioning="FixedPool").validate()


@register_algorithm
class RoundRobinScheduler(_FixedPoolScheduler):
    """Cyclic assignment over the pool (the EC2 load-balancer default)."""

    name = "RoundRobin"

    def _pick(self, index: int, builder: ScheduleBuilder, task_id: str):
        return builder.vms[index % len(builder.vms)]


@register_algorithm
class LeastLoadScheduler(_FixedPoolScheduler):
    """Each task goes to the pool VM with the least accumulated
    execution time (ties to the lowest VM id)."""

    name = "LeastLoad"

    def _pick(self, index: int, builder: ScheduleBuilder, task_id: str):
        return min(builder.vms, key=lambda vm: (vm.busy_seconds, vm.id))
