"""Columnar event-advance replay for the homogeneous no-fault verify.

``run_strategy(verify=True)`` replays every schedule through the
discrete-event simulator purely to assert the observed timings equal the
plan — the :class:`~repro.simulator.trace.SimulationResult` is
discarded.  For that case the DES is a very expensive fixed point: with
no faults, the observed start of a task is exactly

    ``max(finish of its VM-queue predecessor,
          max over DAG predecessors (finish + transfer))``

so the whole replay collapses to one recurrence sweep over the combined
(queue + DAG) precedence graph.  :func:`replay_verify` runs that sweep
and applies the same divergence tolerances as
:meth:`SimulationResult.check_against`.

Eligibility is strict — anything the recurrence does not model falls
back to the real DES (return ``False``):

* a tracer that would record spans, or an active metrics registry (the
  DES emits ``sim.*``/``executor.*`` counters the sweep cannot fake),
* heterogeneous fleets (mixed flavors or regions),
* cold boots (``prebooted=False`` with a nonzero boot time),
* non-stock platform models, or workflows below the columnar threshold.
"""

from __future__ import annotations

from repro.cloud.instance import InstanceType
from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.kernels.columnar import get_columnar, remote_transfer_seconds
from repro.kernels.dispatch import columnar_active, platform_eligible
from repro.obs.metrics import current as current_metrics

__all__ = ["replay_verify"]

_EPS = 1e-6


def _eligible(schedule: Schedule, tracer) -> bool:
    if tracer is not None and getattr(tracer, "enabled", True):
        return False
    if current_metrics() is not None:
        return False
    vms = schedule.vms
    if not vms:
        return False
    if not columnar_active(len(schedule.workflow.task_ids)):
        return False
    platform = schedule.platform
    it = vms[0].itype
    if not platform_eligible(platform, it):
        return False
    if not platform.prebooted and platform.boot_seconds > 0:
        return False
    if getattr(platform, "market", None) is not None:
        # market runs are priced/interrupted through the DES fault
        # machinery; the columnar recurrence cannot replay them
        return False
    region_name = vms[0].region.name
    for vm in vms:
        if type(vm.itype) is not InstanceType:
            return False
        if vm.itype != it or vm.region.name != region_name:
            return False
    return True


def replay_verify(schedule: Schedule, tracer=None) -> bool:
    """Verify *schedule* by recurrence replay when eligible.

    Returns ``True`` after a successful verification (byte-identical to
    what the DES would observe — same single additions and ``max``
    folds, checked against the plan with ``check_against``'s
    tolerances), ``False`` when the schedule needs the real DES.
    Raises :class:`SimulationError` on divergence, like the DES path.
    """
    if not _eligible(schedule, tracer):
        return False
    wf = schedule.workflow
    platform = schedule.platform
    it = schedule.vms[0].itype
    cd = get_columnar(wf)
    n = cd.n
    index = cd.index
    runt = (cd.works / it.speedup).tolist()
    rtr = remote_transfer_seconds(cd.pred_gb, platform, it).tolist()
    pp = cd.pred_ptr.tolist()
    pi = cd.pred_idx.tolist()
    sp = cd.succ_ptr.tolist()
    si = cd.succ_idx.tolist()

    # VM queues in placement order — the DES executes each VM's queue
    # front-to-back, so a task also waits on its queue predecessor
    tvm = [-1] * n
    qprev = [-1] * n
    qnext = [-1] * n
    planned_s = [0.0] * n
    planned_f = [0.0] * n
    for v, vm in enumerate(schedule.vms):
        prev = -1
        for p in vm.placements:
            t = index[p.task_id]
            tvm[t] = v
            planned_s[t] = p.start
            planned_f[t] = p.end
            if prev != -1:
                qnext[prev] = t
            qprev[t] = prev
            prev = t

    indeg = [pp[t + 1] - pp[t] + (1 if qprev[t] != -1 else 0) for t in range(n)]
    stack = [t for t in range(n) if indeg[t] == 0]
    got_s = [0.0] * n
    got_f = [0.0] * n
    done = 0
    while stack:
        t = stack.pop()
        q = qprev[t]
        best = got_f[q] if q != -1 else 0.0
        v = tvm[t]
        for e in range(pp[t], pp[t + 1]):
            p = pi[e]
            cand = got_f[p] if tvm[p] == v else got_f[p] + rtr[e]
            if cand > best:
                best = cand
        got_s[t] = best
        f = best + runt[t]
        got_f[t] = f
        done += 1
        nt = qnext[t]
        if nt != -1:
            indeg[nt] -= 1
            if indeg[nt] == 0:
                stack.append(nt)
        for e in range(sp[t], sp[t + 1]):
            s = si[e]
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(s)
    if done != n:  # queue order conflicts with the DAG: deadlock
        ids = cd.ids
        missing = next(
            tid for tid in wf.task_ids if indeg[index[tid]] > 0
        )
        raise SimulationError(f"task {missing!r} never completed in simulation")

    ids = cd.ids
    for tid in wf.task_ids:
        t = index[tid]
        ps = planned_s[t]
        pf = planned_f[t]
        gs = got_s[t]
        gf = got_f[t]
        if abs(gs - ps) > _EPS * max(1.0, ps):
            raise SimulationError(
                f"{tid!r}: simulated start {gs:.6f} != planned {ps:.6f}"
            )
        if abs(gf - pf) > _EPS * max(1.0, pf):
            raise SimulationError(
                f"{tid!r}: simulated finish {gf:.6f} != planned {pf:.6f}"
            )
    return True
