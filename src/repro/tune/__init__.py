"""Constraint-aware configuration autotuning.

The paper compares fixed strategies; this package answers the
operator's question — *which configuration is cheapest while still
meeting my deadline/budget?* — by running a seed-deterministic random +
successive-halving search (:func:`autotune`) over the
(policy, flavor, parallelism-reduction, recovery, purchase-option)
space (:class:`TuneSpace`), judging candidates with the market-aware
simulator and the :class:`~repro.core.constraints.Constraints` layer.
"""

from repro.core.constraints import Constraints, ConstraintViolation
from repro.tune.result import CandidateOutcome, RungRecord, TuneResult
from repro.tune.search import EvalUnit, autotune, evaluate_candidate
from repro.tune.space import (
    DEFAULT_PURCHASES,
    DEFAULT_RECOVERIES,
    REDUCTIONS,
    Candidate,
    TuneSpace,
)

__all__ = [
    "autotune",
    "Candidate",
    "CandidateOutcome",
    "Constraints",
    "ConstraintViolation",
    "DEFAULT_PURCHASES",
    "DEFAULT_RECOVERIES",
    "EvalUnit",
    "evaluate_candidate",
    "REDUCTIONS",
    "RungRecord",
    "TuneResult",
    "TuneSpace",
]
