"""Tests for the Schedule model: validation and cost accounting."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.cloud.vm import VM
from repro.core.schedule import Schedule
from repro.errors import InvalidScheduleError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


def _vm(platform, vm_id=0, itype="small", region=None):
    return VM(
        id=vm_id,
        itype=platform.itype(itype),
        region=region or platform.default_region,
    )


def _chain_schedule(chain3, platform, region=None):
    """X -> Y on one VM, Z on another, with correct hand-computed times."""
    v0 = _vm(platform, 0, region=region)
    v0.place("X", 0.0, 1000.0)
    v0.place("Y", 1000.0, 2000.0)
    v1 = _vm(platform, 1, region=region)
    lat = 0.5 if region is not None else 0.1
    z_start = 3000.0 + lat if region is None else 3000.0 + 0.1
    v1.place("Z", 3000.0 + 0.1, 500.0)
    return Schedule(workflow=chain3, platform=platform, vms=[v0, v1])


class TestStructure:
    def test_every_task_exactly_once(self, chain3, platform):
        v = _vm(platform)
        v.place("X", 0.0, 1000.0)
        with pytest.raises(InvalidScheduleError, match="never scheduled"):
            Schedule(workflow=chain3, platform=platform, vms=[v])

    def test_double_assignment_rejected(self, chain3, platform):
        v0, v1 = _vm(platform, 0), _vm(platform, 1)
        for v in (v0, v1):
            v.place("X", 0.0, 1000.0)
            v.place("Y", 1000.0, 2000.0)
        v0.place("Z", 3000.0, 500.0)
        with pytest.raises(InvalidScheduleError, match="placed on both"):
            Schedule(workflow=chain3, platform=platform, vms=[v0, v1])

    def test_unknown_task_rejected(self, chain3, platform):
        v = _vm(platform)
        for tid, s, d in (("X", 0, 1000), ("Y", 1000, 2000), ("Z", 3000, 500)):
            v.place(tid, float(s), float(d))
        v.place("ghost", 4000.0, 1.0)
        with pytest.raises(InvalidScheduleError, match="unknown"):
            Schedule(workflow=chain3, platform=platform, vms=[v])

    def test_lookups(self, chain3, platform):
        sched = _chain_schedule(chain3, platform)
        assert sched.vm_of("X").id == 0
        assert sched.start("Y") == 1000.0
        assert sched.finish("Z") == 3500.1
        with pytest.raises(InvalidScheduleError):
            sched.vm_of("nope")


class TestValidate:
    def test_valid_schedule_passes(self, chain3, platform):
        _chain_schedule(chain3, platform).validate()

    def test_dependency_violation_caught(self, chain3, platform):
        v = _vm(platform)
        v.place("Y", 0.0, 2000.0)  # Y before X!
        v.place("X", 2000.0, 1000.0)
        v.place("Z", 3000.0, 500.0)
        with pytest.raises(InvalidScheduleError, match="dependency"):
            Schedule(workflow=chain3, platform=platform, vms=[v]).validate()

    def test_transfer_time_enforced(self, diamond, platform):
        """B starting immediately after A on another VM is infeasible."""
        va, vb = _vm(platform, 0), _vm(platform, 1)
        va.place("A", 0.0, 600.0)
        vb.place("B", 600.0, 1200.0)  # misses the 4.1 s transfer
        va.place("C", 600.0, 900.0)
        vb.place("D", 2000.0, 300.0)
        with pytest.raises(InvalidScheduleError, match="dependency"):
            Schedule(workflow=diamond, platform=platform, vms=[va, vb]).validate()

    def test_wrong_duration_caught(self, chain3, platform):
        v = _vm(platform, itype="medium")
        v.place("X", 0.0, 1000.0)  # on medium it must be 625 s
        v.place("Y", 1000.0, 1250.0)
        v.place("Z", 2250.0, 312.5)
        with pytest.raises(InvalidScheduleError, match="runs"):
            Schedule(workflow=chain3, platform=platform, vms=[v]).validate()


class TestMetrics:
    def test_makespan(self, chain3, platform):
        assert _chain_schedule(chain3, platform).makespan == 3500.1

    def test_rent_cost(self, chain3, platform):
        sched = _chain_schedule(chain3, platform)
        # v0 uptime 3000 -> 1 BTU; v1 uptime 500 -> 1 BTU
        assert sched.rent_cost == pytest.approx(2 * 0.08)
        assert sched.total_btus == 2

    def test_idle(self, chain3, platform):
        sched = _chain_schedule(chain3, platform)
        # v0: 3600 paid - 3000 busy; v1: 3600 - 500
        assert sched.total_idle_seconds == pytest.approx(600.0 + 3100.0)

    def test_no_transfer_cost_single_region(self, chain3, platform):
        assert _chain_schedule(chain3, platform).transfer_cost == 0.0
        assert _chain_schedule(chain3, platform).transfer_volumes() == []

    def test_label(self, chain3, platform):
        sched = _chain_schedule(chain3, platform)
        assert sched.label == "schedule"


class TestCrossRegionTransferCost:
    def test_banded_egress(self, platform):
        wf = Workflow("xfer")
        wf.add_task(Task("src", 100.0))
        wf.add_task(Task("dst", 100.0))
        wf.add_dependency("src", "dst", 5.0)
        wf.validate()
        us = platform.region("us-east-virginia")
        eu = platform.region("eu-dublin")
        v0 = VM(id=0, itype=platform.itype("small"), region=us)
        v0.place("src", 0.0, 100.0)
        v1 = VM(id=1, itype=platform.itype("small"), region=eu)
        # 5 GB * 8 / 1 Gbps + 0.5 s inter-region latency
        v1.place("dst", 100.0 + 40.5, 100.0)
        sched = Schedule(workflow=wf, platform=platform, vms=[v0, v1]).validate()
        assert sched.transfer_volumes() == [("us-east-virginia", "eu-dublin", 5.0)]
        # first GB free, remaining 4 at $0.12
        assert sched.transfer_cost == pytest.approx(4 * 0.12)
        assert sched.total_cost == pytest.approx(sched.rent_cost + 0.48)
