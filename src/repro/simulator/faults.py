"""Composable, seed-deterministic fault processes for the simulator.

The paper assumes perfectly reliable, pre-booted VMs; this module models
the three failure modes a real IaaS deployment must absorb:

* **VM boot failure / delayed boot** — an acquisition request fails (and
  is re-issued) or the boot takes longer than nominal;
* **VM crash** — the instance dies at a random uptime (spot-revocation
  style); the paid rent runs to the BTU boundary that contains the
  crash, exactly as a revoked on-demand instance is billed;
* **transient task failure** — one execution attempt of a task dies
  partway through and must be recovered (retry / resubmit / replan, see
  :mod:`repro.core.recovery`).

Determinism contract
--------------------
Every random draw is taken from a private stream keyed by
``(plan seed, purpose, entity identity, attempt number)`` — never from a
shared generator — so outcomes depend only on *what* is being sampled,
not on the order in which the event loop happens to ask.  Identical
seeds therefore reproduce identical faults, traces, and recovery
decisions across the serial, thread, and process execution backends.

A plan whose probabilities are all zero draws nothing and injects
nothing: executor and online-scheduler results are byte-identical to a
run without any plan (regression-tested).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.market.spot import Market, SpotInterruptionPlan


def _stream(seed: int, *key) -> np.random.Generator:
    """A private generator for one sampling decision.

    The key is hashed (stable across processes and platforms — python's
    ``hash`` is salted, so it is *not* used) into extra entropy words for
    a :class:`~numpy.random.SeedSequence` rooted at the plan seed.
    """
    text = "\x1f".join(str(k) for k in key)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=16).digest()
    words = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
    return np.random.default_rng(np.random.SeedSequence([seed, *words]))


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible fault environment for a simulated run.

    All processes are optional and independently composable; the default
    instance injects nothing.  ``seed`` selects the fault *sample*, so a
    replication layer can hold the fault intensity fixed and vary only
    the seed.
    """

    seed: int = 0
    #: probability that one execution attempt of a task fails partway
    task_fail_prob: float = 0.0
    #: per-second hazard of a VM crash (exponential uptime-to-crash);
    #: e.g. ``1/7200`` means a mean time-to-crash of two BTUs
    vm_crash_rate: float = 0.0
    #: probability that one VM acquisition (boot) attempt fails
    boot_fail_prob: float = 0.0
    #: relative std-dev of the multiplicative (log-normal, mean-1) noise
    #: on boot duration; 0 keeps boots at their nominal length
    boot_delay_rel_std: float = 0.0
    #: price environment (a :class:`~repro.market.spot.Market`); when
    #: set, VM cost is the price integral over paid BTUs and spot VMs
    #: are preempted at price-crossing times drawn from the same stream
    #: (seeded by this plan's seed, like every other fault process)
    market: Optional["Market"] = None
    #: extra cold-start seconds added to the platform's nominal boot
    #: time for every cold (non-warm-pool) acquisition
    boot_cold_seconds: float = 0.0
    #: shape of the boot-delay noise: ``"lognormal"`` (the historical
    #: mean-1 multiplicative noise) or ``"deterministic"`` (exact base
    #: durations — calibrated-trace scenarios)
    boot_delay_dist: str = "lognormal"
    #: per-flavor warm pool: the first this-many acquisitions of each
    #: flavor boot warm (in ``boot_warm_seconds``) instead of cold
    boot_warm_pool: int = 0
    #: boot duration of a warm-pool hit, seconds
    boot_warm_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_fail_prob < 1.0:
            raise SimulationError(
                f"task_fail_prob must be in [0, 1), got {self.task_fail_prob}"
            )
        if not 0.0 <= self.boot_fail_prob < 1.0:
            raise SimulationError(
                f"boot_fail_prob must be in [0, 1), got {self.boot_fail_prob}"
            )
        if self.vm_crash_rate < 0:
            raise SimulationError(
                f"vm_crash_rate must be >= 0, got {self.vm_crash_rate}"
            )
        if self.boot_delay_rel_std < 0:
            raise SimulationError(
                f"boot_delay_rel_std must be >= 0, got {self.boot_delay_rel_std}"
            )
        if self.boot_cold_seconds < 0 or self.boot_warm_seconds < 0:
            raise SimulationError("boot durations must be >= 0")
        if self.boot_warm_pool < 0:
            raise SimulationError(
                f"boot_warm_pool must be >= 0, got {self.boot_warm_pool}"
            )
        if self.boot_delay_dist not in ("lognormal", "deterministic"):
            raise SimulationError(
                f"boot_delay_dist must be 'lognormal' or 'deterministic', "
                f"got {self.boot_delay_dist!r}"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that injects nothing (the explicit zero-fault control)."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether any fault process can actually fire."""
        return (
            self.task_fail_prob > 0
            or self.vm_crash_rate > 0
            or self.boot_fail_prob > 0
            or self.boot_delay_rel_std > 0
            or self.market is not None
            or self.boot_cold_seconds > 0
            or self.boot_warm_pool > 0
        )

    def spot_plan(self) -> Optional["SpotInterruptionPlan"]:
        """The price-correlated interruption process of this plan's
        market, seeded like every other fault process; ``None`` without
        a market."""
        if self.market is None:
            return None
        from repro.market.spot import SpotInterruptionPlan

        return SpotInterruptionPlan(self.market, self.seed)

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every process scaled by *intensity* (>= 0).

        The fault-intensity axis of the experiment grid: 0 disables all
        processes, 1 is the plan itself.  Probabilities are capped just
        below 1 so a run always terminates almost surely.  Cold-start
        seconds scale with the intensity; the market, warm-pool, and
        distribution-shape fields are structural configuration and carry
        through unchanged (``dataclasses.replace`` preserves every field
        not listed here, so new axes cannot be silently dropped).
        """
        if intensity < 0:
            raise SimulationError(f"intensity must be >= 0, got {intensity}")
        cap = 0.99
        return dataclasses.replace(
            self,
            task_fail_prob=min(self.task_fail_prob * intensity, cap),
            vm_crash_rate=self.vm_crash_rate * intensity,
            boot_fail_prob=min(self.boot_fail_prob * intensity, cap),
            boot_delay_rel_std=self.boot_delay_rel_std * intensity,
            boot_cold_seconds=self.boot_cold_seconds * intensity,
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault environment, re-sampled under another seed."""
        return dataclasses.replace(self, seed=int(seed))

    # ------------------------------------------------------------------
    # sampling (all deterministic in (seed, key))
    # ------------------------------------------------------------------
    def task_attempt(self, task_id: str, attempt: int) -> Optional[float]:
        """Outcome of one execution attempt of *task_id*.

        ``None`` means the attempt succeeds; a float in (0, 1) is the
        fraction of the attempt's duration after which it fails.
        """
        if self.task_fail_prob <= 0:
            return None
        rng = _stream(self.seed, "task", task_id, attempt)
        if rng.random() >= self.task_fail_prob:
            return None
        # uniform over the open unit interval so a failed attempt always
        # wastes some, but never all, of its duration
        return float(rng.uniform(1e-3, 1.0 - 1e-3))

    def vm_crash_uptime(self, vm_key: str) -> float:
        """Uptime at which the VM identified by *vm_key* crashes.

        ``inf`` (no crash within any horizon) when the crash process is
        disabled; otherwise an exponential draw with the plan's hazard.
        """
        if self.vm_crash_rate <= 0:
            return math.inf
        rng = _stream(self.seed, "crash", vm_key)
        return float(rng.exponential(1.0 / self.vm_crash_rate))

    def boot_outcome(self, vm_key: str, attempt: int) -> Tuple[bool, float]:
        """Outcome of one boot attempt: ``(fails, delay_factor)``.

        ``delay_factor`` multiplies the platform's nominal boot time
        (mean-1 log-normal noise); it is exactly 1.0 when the delay
        process is disabled.
        """
        fails = False
        factor = 1.0
        if self.boot_fail_prob > 0 or self.boot_delay_rel_std > 0:
            rng = _stream(self.seed, "boot", vm_key, attempt)
            if self.boot_fail_prob > 0:
                fails = bool(rng.random() < self.boot_fail_prob)
            if self.boot_delay_rel_std > 0:
                sigma2 = np.log1p(self.boot_delay_rel_std**2)
                factor = float(rng.lognormal(-sigma2 / 2.0, np.sqrt(sigma2)))
        return fails, factor

    def boot_delay_outcome(
        self,
        vm_key: str,
        attempt: int,
        nominal_seconds: float,
        warm: bool = False,
    ) -> Tuple[bool, float]:
        """Outcome of one boot attempt: ``(fails, delay_seconds)``.

        The cold-start generalization of :meth:`boot_outcome`: the base
        duration is the platform's *nominal_seconds* plus
        ``boot_cold_seconds`` — or ``boot_warm_seconds`` for a warm-pool
        hit — then shaped by ``boot_delay_dist`` (``"deterministic"``
        keeps the base exact; ``"lognormal"`` applies the historical
        mean-1 noise).  With all cold-start fields at their defaults the
        delay is exactly ``nominal × factor``, byte-identical to the
        pre-market boot path.
        """
        fails, factor = self.boot_outcome(vm_key, attempt)
        if warm:
            base = self.boot_warm_seconds
        else:
            base = nominal_seconds + self.boot_cold_seconds
        if self.boot_delay_dist == "deterministic":
            factor = 1.0
        return fails, base * factor


@dataclass
class FaultStats:
    """Robustness accounting for one fault-injected run."""

    task_failures: int = 0
    vm_crashes: int = 0
    boot_failures: int = 0
    #: spot VMs reclaimed by a price crossing (market runs only)
    preemptions: int = 0
    #: reclamation warnings delivered before a kill
    grace_warnings: int = 0
    #: recovery decisions that changed the purchase option (rebids and
    #: on-demand fallbacks)
    rebids: int = 0
    retries: int = 0
    resubmits: int = 0
    replans: int = 0
    #: execution seconds burnt by attempts that did not complete
    wasted_task_seconds: float = 0.0
    #: paid BTU-seconds that produced no completed task execution
    #: (idle gaps, failed attempts, crashed-VM tails to the boundary)
    wasted_btu_seconds: float = 0.0
    #: total paid seconds (uptime ceiled to the BTU grid) over all VMs
    paid_seconds: float = 0.0
    #: realized rent, with crashed VMs billed to their BTU boundary
    realized_cost: float = 0.0
    #: recovery decision log, e.g. ``"retry:t3@120.000"`` — compared
    #: verbatim by the determinism tests
    decisions: List[str] = field(default_factory=list)

    @property
    def failures(self) -> int:
        """All fault firings, whatever the layer."""
        return (
            self.task_failures
            + self.vm_crashes
            + self.boot_failures
            + self.preemptions
        )

    @property
    def recoveries(self) -> int:
        return self.retries + self.resubmits + self.replans

    def as_dict(self) -> Dict[str, float]:
        return {
            "task_failures": self.task_failures,
            "vm_crashes": self.vm_crashes,
            "boot_failures": self.boot_failures,
            "preemptions": self.preemptions,
            "grace_warnings": self.grace_warnings,
            "rebids": self.rebids,
            "retries": self.retries,
            "resubmits": self.resubmits,
            "replans": self.replans,
            "wasted_task_seconds": self.wasted_task_seconds,
            "wasted_btu_seconds": self.wasted_btu_seconds,
            "paid_seconds": self.paid_seconds,
            "realized_cost": self.realized_cost,
        }
