"""Ablation: data locality across regions.

The paper's Sect. III-A hypothesis — VM-hungry strategies suit
data-heavy workloads "where the VM should be as close as possible to
the data" — evaluated: a two-site pipeline with multi-GB staging edges
and thin join edges, compute either pinned home (datasets respected,
everything else in the default region) or following its data.
"""

from benchmarks.conftest import save_artifact
from repro.core.allocation.locality import LocalityHeftScheduler, pin_regions
from repro.util.tables import format_table
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_PINS = {"stage_us": "us-east-virginia", "stage_eu": "eu-dublin", "stage_sa": "sa-sao-paulo"}


def _geo_pipeline(staging_gb: float) -> Workflow:
    wf = Workflow("geo-pipeline")
    for site in ("us", "eu", "sa"):
        wf.add_task(Task(f"stage_{site}", 400.0, "stage"))
        wf.add_task(Task(f"proc_{site}", 2500.0, "proc"))
        wf.add_task(Task(f"reduce_{site}", 900.0, "reduce"))
        wf.add_dependency(f"stage_{site}", f"proc_{site}", staging_gb)
        wf.add_dependency(f"proc_{site}", f"reduce_{site}", staging_gb / 4)
    wf.add_task(Task("join", 600.0, "join"))
    for site in ("us", "eu", "sa"):
        wf.add_dependency(f"reduce_{site}", "join", 0.2)
    return wf.validate()


def _study(platform):
    rows = []
    for staging_gb in (2.0, 10.0, 50.0):
        wf = pin_regions(_geo_pipeline(staging_gb), _PINS)
        home = LocalityHeftScheduler(follow_data=False).schedule(wf, platform)
        local = LocalityHeftScheduler(follow_data=True).schedule(wf, platform)
        rows.append(
            (
                f"{staging_gb:.0f} GB staging",
                home.total_cost,
                home.transfer_cost,
                local.total_cost,
                local.transfer_cost,
            )
        )
    return rows


def test_locality_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    for label, home_total, home_xfer, local_total, local_xfer in rows:
        # following the data always reduces egress (the boundary moves to
        # the thin join edges)
        assert local_xfer < home_xfer, label
        assert local_total <= home_total + 1e-9, label

    # the gap grows with the staged volume
    gaps = [home - local for _, home, _, local, _ in rows]
    assert gaps == sorted(gaps)
    assert gaps[-1] > gaps[0]

    save_artifact(
        artifact_dir,
        "ablation_locality.txt",
        format_table(
            ["staging", "home $", "home egress $", "local $", "local egress $"],
            rows,
            float_fmt=".2f",
            title="Data locality across 3 regions (pins-only vs follow-the-data)",
        ),
    )
