"""Tests for the figure regenerators."""

import numpy as np
import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments import figures
from repro.experiments.config import strategy
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.workflows.generators import sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def mini_sweep(platform):
    return run_sweep(
        platform=platform,
        workflows={"seq": sequential(6)},
        scenarios=[scenario("pareto", platform)],
        strategies=[strategy("OneVMperTask-s"), strategy("StartParExceed-s")],
        seed=3,
    )


class TestFigure1:
    def test_subworkflow_shape(self):
        wf = figures.figure1_subworkflow()
        assert len(wf) == 7
        assert wf.entry_tasks() == ["t0"]
        assert len(wf.exit_tasks()) == 6

    def test_rows_cover_five_policies(self, platform):
        rows = figures.figure1_rows(platform)
        assert [r[0] for r in rows] == [
            "OneVMperTask",
            "StartParNotExceed",
            "StartParExceed",
            "AllParNotExceed",
            "AllParExceed",
        ]

    def test_narrative_relations(self, platform):
        """OneVMperTask max VMs/idle; StartParExceed min VMs."""
        rows = {r[0]: r for r in figures.figure1_rows(platform)}
        assert rows["OneVMperTask"][1] == 7  # one VM per task
        assert rows["StartParExceed"][1] == 1  # single entry task
        idle = {name: r[5] for name, r in rows.items()}
        assert idle["OneVMperTask"] == max(idle.values())

    def test_render(self, platform):
        out = figures.render_figure1(platform)
        assert "OneVMperTask" in out and "idle" in out


class TestFigure2:
    def test_summaries(self):
        names = [s["name"] for s in figures.figure2_summaries()]
        assert names == ["montage", "cstem", "mapreduce", "sequential"]

    def test_render(self):
        out = figures.render_figure2()
        assert "montage" in out and "max par" in out


class TestFigure3:
    def test_empirical_matches_analytic(self):
        x, emp, ana = figures.figure3_cdf(n_samples=50_000, seed=1)
        assert np.max(np.abs(emp - ana)) < 0.02

    def test_range_matches_paper_axis(self):
        x, _, _ = figures.figure3_cdf(n_samples=1000, seed=1)
        assert x[0] == 500.0 and x[-1] == 4000.0

    def test_render(self):
        out = figures.render_figure3(n_samples=10_000, seed=1)
        assert "CDF" in out


class TestFigure4:
    def test_points(self, mini_sweep):
        pts = figures.figure4_points(mini_sweep, "seq")
        assert pts["OneVMperTask-s"] == (0.0, 0.0)
        gain, loss = pts["StartParExceed-s"]
        assert loss < 0  # packing a chain saves money

    def test_render(self, mini_sweep):
        out = figures.render_figure4(mini_sweep)
        assert "Figure 4" in out and "legend" in out


class TestFigure5:
    def test_idle_values(self, mini_sweep):
        idle = figures.figure5_idle(mini_sweep, "seq")
        assert idle["OneVMperTask-s"] > idle["StartParExceed-s"]

    def test_render(self, mini_sweep):
        out = figures.render_figure5(mini_sweep)
        assert "idle" in out
