"""Tests for data-locality multi-region scheduling."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.locality import (
    LocalityHeftScheduler,
    data_gravity_chooser,
    pin_regions,
    pins_only_chooser,
)
from repro.simulator.executor import simulate_schedule
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


def _two_branch_workflow() -> Workflow:
    """Two data-heavy branches joining through thin edges.

    stage_us -> proc_us (20 GB), stage_eu -> proc_eu (20 GB),
    proc_* -> join (0.1 GB each).
    """
    wf = Workflow("geo")
    for site in ("us", "eu"):
        wf.add_task(Task(f"stage_{site}", 500.0, "stage"))
        wf.add_task(Task(f"proc_{site}", 2000.0, "proc"))
        wf.add_dependency(f"stage_{site}", f"proc_{site}", 20.0)
    wf.add_task(Task("join", 800.0, "join"))
    wf.add_dependency("proc_us", "join", 0.1)
    wf.add_dependency("proc_eu", "join", 0.1)
    return wf.validate()


_PINS = {"stage_us": "us-east-virginia", "stage_eu": "eu-dublin"}


class TestPinRegions:
    def test_attrs_set(self):
        wf = pin_regions(_two_branch_workflow(), _PINS)
        assert wf.task("stage_eu").attrs["region"] == "eu-dublin"
        assert "region" not in wf.task("join").attrs

    def test_structure_preserved(self):
        base = _two_branch_workflow()
        wf = pin_regions(base, _PINS)
        assert wf.edges() == base.edges()


class TestChoosers:
    def test_pins_only(self, platform):
        wf = pin_regions(_two_branch_workflow(), _PINS)
        sched = LocalityHeftScheduler(follow_data=False).schedule(wf, platform)
        assert sched.vm_of("stage_eu").region.name == "eu-dublin"
        assert sched.vm_of("proc_eu").region.name == "us-east-virginia"

    def test_data_gravity_follows_big_edges(self, platform):
        wf = pin_regions(_two_branch_workflow(), _PINS)
        sched = LocalityHeftScheduler(follow_data=True).schedule(wf, platform)
        # processing follows its 20 GB input into the pinned region
        assert sched.vm_of("proc_eu").region.name == "eu-dublin"
        assert sched.vm_of("proc_us").region.name == "us-east-virginia"
        sched.validate()
        simulate_schedule(sched, check=True)

    def test_locality_cuts_egress_cost(self, platform):
        """Following the data moves the cross-region boundary from the
        20 GB staging edges to the 0.1 GB join edges."""
        wf = pin_regions(_two_branch_workflow(), _PINS)
        home = LocalityHeftScheduler(follow_data=False).schedule(wf, platform)
        local = LocalityHeftScheduler(follow_data=True).schedule(wf, platform)
        assert local.transfer_cost < home.transfer_cost
        assert local.total_cost < home.total_cost
        # the baseline ships 20 GB out of Dublin; locality ships 0.1 GB
        assert home.transfer_cost == pytest.approx((20.0 - 1.0) * 0.12, rel=0.01)

    def test_locality_never_slower(self, platform):
        """The store-and-forward model penalizes cross-region hops only
        through latency (bandwidth is per NIC), so locality's makespan
        advantage is the saved inter-region latencies — small but never
        negative."""
        wf = pin_regions(_two_branch_workflow(), _PINS)
        home = LocalityHeftScheduler(follow_data=False).schedule(wf, platform)
        local = LocalityHeftScheduler(follow_data=True).schedule(wf, platform)
        assert local.makespan <= home.makespan + 1e-9

    def test_unpinned_workflow_stays_home(self, platform):
        wf = _two_branch_workflow()
        sched = LocalityHeftScheduler(follow_data=True).schedule(wf, platform)
        assert {vm.region.name for vm in sched.vms} == {"us-east-virginia"}

    def test_chooser_functions_directly(self, platform):
        from repro.core.builder import ScheduleBuilder

        wf = pin_regions(_two_branch_workflow(), _PINS)
        builder = ScheduleBuilder(wf, platform, platform.itype("small"))
        assert pins_only_chooser(platform)("stage_eu", builder).name == "eu-dublin"
        assert data_gravity_chooser(platform)("join", builder) is None  # no preds placed
