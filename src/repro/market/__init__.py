"""Spot markets, variable pricing, and bidding-aware recovery.

The paper's cloud is fixed-price on-demand with instant boot.  This
package models the axes the follow-on literature (Sarkar et al.,
arXiv:2504.21536) treats as first-class:

* :mod:`repro.market.prices` — seed-deterministic price *processes*
  (constant, step-trace, mean-reverting random walk) realized as
  piecewise-constant :class:`~repro.market.prices.PricePath`\\ s per
  (flavor, region);
* :mod:`repro.market.spot` — the :class:`~repro.market.spot.Market`
  bundle (price process + :class:`~repro.market.spot.PurchaseOption` +
  grace window) and the :class:`~repro.market.spot.SpotInterruptionPlan`
  that derives VM preemption times from price-crossing events of the
  same price stream;
* :mod:`repro.market.recovery` — bidding-aware recovery policies
  (:class:`~repro.market.recovery.RebidHigher`,
  :class:`~repro.market.recovery.FallbackOnDemand`) composed with the
  paper-era policies of :mod:`repro.core.recovery`.

A market enters a run through :class:`~repro.simulator.faults.FaultPlan`
(``FaultPlan(market=...)``) — the price path is seeded by the plan seed,
so ``with_seed`` re-samples prices exactly like every other fault
process — or ambiently through ``CloudPlatform(market=...)``, which the
executors adopt when no plan is given.
"""

from repro.market.prices import (
    ConstantPrice,
    MeanRevertingPrice,
    PricePath,
    PriceProcess,
    StepTracePrice,
    price_path,
)
from repro.market.recovery import FallbackOnDemand, RebidHigher
from repro.market.spot import (
    ON_DEMAND,
    Market,
    PurchaseOption,
    SpotInterruptionPlan,
    spot,
)

__all__ = [
    "ConstantPrice",
    "FallbackOnDemand",
    "Market",
    "MeanRevertingPrice",
    "ON_DEMAND",
    "PricePath",
    "PriceProcess",
    "PurchaseOption",
    "RebidHigher",
    "SpotInterruptionPlan",
    "StepTracePrice",
    "price_path",
    "spot",
]
