"""Deadline/budget hard constraints on schedules and realized runs.

The paper compares strategies on unconstrained makespan and cost; the
operator's real question is usually constrained — *which configuration
is cheapest while still meeting my deadline?* (Thai et al.,
arXiv:1507.05470; Gajbhiye & Singh, arXiv:1806.02397).  A
:class:`Constraints` object is the library-wide spelling of that
question:

* the metric layer (:func:`repro.core.metrics.evaluate` /
  :func:`~repro.core.metrics.compare_to_reference`) stamps every
  :class:`~repro.core.metrics.ScheduleMetrics` with a ``feasible`` flag
  and the violation breakdown when constraints are given;
* the service layer's per-tenant ``--tenant-budget`` admission is the
  same object with only ``budget`` set
  (:class:`repro.service.admission.BudgetGuardAdmission`);
* the autotuner (:func:`repro.tune.autotune`) searches for the cheapest
  configuration whose *re-simulated* outcome satisfies them.

A constraint is *hard*: there is no scoring blend, an outcome either
satisfies every bound or it is infeasible, and every miss is reported
as a :class:`ConstraintViolation` naming the bound, the actual value
and the excess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ExperimentError

#: the recognised constraint axes, in reporting order
CONSTRAINT_NAMES = ("deadline", "budget", "max_vms")


@dataclass(frozen=True)
class ConstraintViolation:
    """One bound an outcome missed: what was allowed vs. what happened."""

    #: which bound: ``"deadline"``, ``"budget"`` or ``"max_vms"``
    constraint: str
    #: the bound's limit (seconds, USD, or a VM count)
    limit: float
    #: the realized value that exceeded it
    actual: float

    @property
    def excess(self) -> float:
        """How far past the limit the outcome landed (> 0 by construction)."""
        return self.actual - self.limit

    def __str__(self) -> str:
        unit = {"deadline": "s", "budget": "$", "max_vms": " VMs"}[self.constraint]
        return (
            f"{self.constraint}: {self.actual:g}{unit} > "
            f"{self.limit:g}{unit} limit (+{self.excess:g})"
        )


@dataclass(frozen=True)
class Constraints:
    """Hard bounds an acceptable outcome must satisfy.

    ``None`` leaves an axis unconstrained; ``Constraints()`` accepts
    everything.  ``deadline`` bounds the (realized) makespan in seconds,
    ``budget`` the total cost in USD, ``max_vms`` the rented-VM count.
    """

    deadline: Optional[float] = None
    budget: Optional[float] = None
    max_vms: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ExperimentError(
                f"deadline must be positive seconds, got {self.deadline}"
            )
        if self.budget is not None and self.budget <= 0:
            raise ExperimentError(f"budget must be positive USD, got {self.budget}")
        if self.max_vms is not None and self.max_vms < 1:
            raise ExperimentError(f"max_vms must be >= 1, got {self.max_vms}")

    # ------------------------------------------------------------------
    @property
    def unconstrained(self) -> bool:
        """True when no axis is bounded (everything is feasible)."""
        return self.deadline is None and self.budget is None and self.max_vms is None

    def check(
        self,
        makespan: Optional[float] = None,
        cost: Optional[float] = None,
        vm_count: Optional[int] = None,
    ) -> Tuple[ConstraintViolation, ...]:
        """The violations of one outcome, in :data:`CONSTRAINT_NAMES`
        order; empty means feasible.  Axes whose actual value is not
        supplied are skipped (they cannot be judged)."""
        out = []
        if self.deadline is not None and makespan is not None and makespan > self.deadline:
            out.append(ConstraintViolation("deadline", self.deadline, makespan))
        if self.budget is not None and cost is not None and cost > self.budget:
            out.append(ConstraintViolation("budget", self.budget, cost))
        if self.max_vms is not None and vm_count is not None and vm_count > self.max_vms:
            out.append(
                ConstraintViolation("max_vms", float(self.max_vms), float(vm_count))
            )
        return tuple(out)

    def feasible(
        self,
        makespan: Optional[float] = None,
        cost: Optional[float] = None,
        vm_count: Optional[int] = None,
    ) -> bool:
        """Does the outcome satisfy every bound?"""
        return not self.check(makespan=makespan, cost=cost, vm_count=vm_count)

    def check_schedule(self, schedule) -> Tuple[ConstraintViolation, ...]:
        """Violations of a static :class:`~repro.core.schedule.Schedule`
        (planned makespan/cost/VM count)."""
        return self.check(
            makespan=schedule.makespan,
            cost=schedule.total_cost,
            vm_count=schedule.vm_count,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``deadline<=3600s, budget<=$12``."""
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline<={self.deadline:g}s")
        if self.budget is not None:
            parts.append(f"budget<=${self.budget:g}")
        if self.max_vms is not None:
            parts.append(f"max_vms<={self.max_vms}")
        return ", ".join(parts) if parts else "unconstrained"

    def to_json(self) -> dict:
        """JSON-stable form (the tune manifest embeds this)."""
        return {
            "deadline": self.deadline,
            "budget": self.budget,
            "max_vms": self.max_vms,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Constraints":
        known = set(CONSTRAINT_NAMES)
        unknown = set(data) - known
        if unknown:
            from repro.util.suggest import unknown_name_message

            raise ExperimentError(
                unknown_name_message("constraint", sorted(unknown)[0], known)
            )
        return cls(
            deadline=data.get("deadline"),
            budget=data.get("budget"),
            max_vms=data.get("max_vms"),
        )
