"""autotune: seed-deterministic, constraint-honest, backend-independent."""

import json

import pytest

import repro.api as api
from repro.errors import ExperimentError
from repro.tune import TuneSpace, autotune
from repro.tune.search import EvalUnit, _eval_seeds, evaluate_candidate

CONSTRAINTS = api.Constraints(deadline=9000, budget=15)


@pytest.fixture(scope="module")
def tuned():
    return autotune(
        constraints=CONSTRAINTS,
        workflow_name="montage",
        n_candidates=8,
        seed=1,
    )


class TestSearch:
    def test_winner_is_cheapest_feasible_final_outcome(self, tuned):
        assert tuned.winner is not None
        assert tuned.feasible
        feasible = [o for o in tuned.outcomes if o.feasible]
        assert feasible
        assert tuned.winner.cost == min(o.cost for o in feasible)
        assert tuned.winner.metrics.feasible is True

    def test_winner_satisfies_constraints_when_resimulated(self, tuned):
        """The acceptance property: re-running the winning configuration
        at the final rung's fidelity reproduces a feasible outcome."""
        final = tuned.rungs[-1]
        unit = EvalUnit(
            candidate=tuned.winner.candidate,
            workflow=tuned.workflow,
            platform=tuned.platform,
            seeds=_eval_seeds(tuned.seed, final.fidelity),
            constraints=CONSTRAINTS,
        )
        replay = evaluate_candidate(unit)
        assert replay.metrics.feasible is True
        assert CONSTRAINTS.feasible(makespan=replay.makespan, cost=replay.cost)
        assert replay.makespan == tuned.winner.makespan
        assert replay.cost == tuned.winner.cost

    def test_rung_ladder_shrinks_and_raises_fidelity(self, tuned):
        assert tuned.rungs
        for earlier, later in zip(tuned.rungs, tuned.rungs[1:]):
            assert later.fidelity > earlier.fidelity
            assert len(later.kept) <= len(earlier.kept)
        assert tuned.winner.label in tuned.rungs[-1].kept

    def test_frontier_is_a_subset_of_final_outcomes(self, tuned):
        labels = {o.label for o in tuned.outcomes}
        assert tuned.frontier
        assert {o.label for o in tuned.frontier} <= labels

    def test_summary_and_json_are_renderable(self, tuned):
        text = tuned.summary()
        assert tuned.winner.label in text
        payload = json.dumps(tuned.to_json(), sort_keys=True)
        assert tuned.winner.label in payload

    def test_outcome_lookup_suggests(self, tuned):
        label = tuned.winner.label
        assert tuned.outcome(label) is tuned.winner
        with pytest.raises(ExperimentError, match="did you mean"):
            tuned.outcome(label.replace("@", "!"))


class TestDeterminism:
    @pytest.mark.parametrize("backend,jobs", [("thread", 4), ("process", 2)])
    def test_byte_identical_across_backends(self, tuned, backend, jobs):
        other = autotune(
            constraints=CONSTRAINTS,
            workflow_name="montage",
            n_candidates=8,
            seed=1,
            backend=backend,
            jobs=jobs,
        )
        assert json.dumps(other.to_json(), sort_keys=True) == json.dumps(
            tuned.to_json(), sort_keys=True
        )


class TestInfeasible:
    def test_impossible_deadline_fails_loudly(self):
        with pytest.raises(ExperimentError) as err:
            autotune(
                deadline=0.001,
                workflow_name="sequential",
                n_candidates=4,
                seed=0,
            )
        message = str(err.value)
        assert "no feasible configuration" in message
        assert "deadline<=0.001s" in message
        assert "deadline:" in message  # the nearest miss's violation breakdown

    def test_on_infeasible_return_hands_back_near_misses(self):
        result = autotune(
            deadline=0.001,
            workflow_name="sequential",
            n_candidates=4,
            seed=0,
            on_infeasible="return",
        )
        assert result.winner is None
        assert not result.feasible
        assert result.outcomes
        for outcome in result.outcomes:
            assert outcome.metrics.feasible is False
            assert any(
                v.constraint == "deadline" for v in outcome.metrics.violations
            )


class TestValidation:
    def test_scalar_and_object_constraints_conflict(self):
        with pytest.raises(ExperimentError, match="not both"):
            autotune(constraints=CONSTRAINTS, deadline=100)

    def test_unknown_workflow_suggests(self):
        with pytest.raises(ExperimentError, match="montage"):
            autotune(workflow_name="montaage", n_candidates=1)

    def test_unknown_on_infeasible_suggests(self):
        with pytest.raises(ExperimentError, match="return"):
            autotune(on_infeasible="retrun", n_candidates=1)

    def test_space_dict_with_bad_axis_suggests(self):
        with pytest.raises(ExperimentError, match="policies"):
            autotune(space={"polices": ["AllParExceed"]}, n_candidates=1)

    def test_result_protocol(self, tuned):
        assert isinstance(tuned, api.ResultBase)
        assert tuned.manifest is None
        assert tuned.with_manifest({"artifact": "tune"}) is tuned
        assert tuned.manifest == {"artifact": "tune"}

    def test_explicit_workflow_narrow_space(self):
        result = autotune(
            workflow=api.sequential(),
            space=TuneSpace(
                policies=("OneVMperTask",),
                flavors=("small",),
                reductions=("none",),
                recoveries=("retry",),
                purchases=("on_demand",),
            ),
            n_candidates=1,
            seed=5,
        )
        assert result.winner.label == "OneVMperTask-s/none/retry@on_demand"
        assert result.scenario == "custom"
