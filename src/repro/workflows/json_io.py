"""JSON workflow interchange (round-trip), and one-way JSON export of
schedules and simulation traces for downstream analysis tools.

The workflow format is a plain object::

    {"name": ..., "tasks": [{"id", "work", "category"}...],
     "edges": [{"from", "to", "data_gb"}...]}
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import WorkflowError, WorkflowParseError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def workflow_to_dict(wf: Workflow) -> Dict[str, Any]:
    wf.validate()
    return {
        "name": wf.name,
        "tasks": [
            {"id": t.id, "work": t.work, "category": t.category} for t in wf.tasks
        ],
        "edges": [
            {"from": u, "to": v, "data_gb": gb} for u, v, gb in wf.edges()
        ],
    }


def workflow_to_json(wf: Workflow, indent: int | None = 2) -> str:
    return json.dumps(workflow_to_dict(wf), indent=indent)


def workflow_from_dict(data: Dict[str, Any]) -> Workflow:
    try:
        wf = Workflow(data["name"])
        for t in data["tasks"]:
            wf.add_task(Task(t["id"], float(t["work"]), t.get("category", "")))
        for e in data.get("edges", []):
            wf.add_dependency(e["from"], e["to"], float(e.get("data_gb", 0.0)))
    except WorkflowParseError:
        raise
    except (KeyError, TypeError, ValueError, WorkflowError) as exc:
        raise WorkflowParseError(f"malformed workflow JSON: {exc!r}") from exc
    try:
        return wf.validate()
    except WorkflowError as exc:
        raise WorkflowParseError(f"invalid workflow in JSON: {exc}") from exc


def workflow_from_json(text: str) -> Workflow:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkflowParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise WorkflowParseError("workflow JSON must be an object")
    return workflow_from_dict(data)


def schedule_to_dict(schedule) -> Dict[str, Any]:
    """One-way export of a :class:`~repro.core.schedule.Schedule`:
    VM flavors/regions, timed placements, and summary metrics."""
    return {
        "workflow": schedule.workflow.name,
        "algorithm": schedule.algorithm,
        "provisioning": schedule.provisioning,
        "makespan": schedule.makespan,
        "total_cost": schedule.total_cost,
        "rent_cost": schedule.rent_cost,
        "transfer_cost": schedule.transfer_cost,
        "idle_seconds": schedule.total_idle_seconds,
        "vms": [
            {
                "name": vm.name,
                "instance_type": vm.itype.name,
                "region": vm.region.name,
                "placements": [
                    {"task": p.task_id, "start": p.start, "end": p.end}
                    for p in vm.placements
                ],
            }
            for vm in schedule.vms
        ],
    }


def schedule_to_json(schedule, indent: int | None = 2) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def trace_to_dict(result) -> Dict[str, Any]:
    """Export a :class:`~repro.simulator.trace.SimulationResult`."""
    return {
        "makespan": result.makespan,
        "events": [
            {
                "time": e.time,
                "kind": e.kind,
                "task": e.task_id,
                "vm": e.vm,
                "detail": e.detail,
            }
            for e in result.events
        ],
    }


def trace_to_json(result, indent: int | None = None) -> str:
    return json.dumps(trace_to_dict(result), indent=indent)
