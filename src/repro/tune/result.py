"""What the autotuner returns: winner, Pareto near-misses, rung history.

A :class:`CandidateOutcome` is one configuration judged at some
fidelity (number of market/fault seeds); a :class:`TuneResult` is the
final rung of the search — every survivor's outcome in score order, the
cheapest feasible one as :attr:`~TuneResult.winner`, and the
non-dominated menu of near-misses computed with the same
:func:`~repro.experiments.pareto_front.pareto_front` machinery the
sweep reports use.

``to_json()`` is the cross-backend byte-identity surface: it contains
only quantities derived from seeded simulation (never wall-clock,
worker counts or backend names), so a fixed-seed search serialises to
the same bytes from the serial, thread and process backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cloud.platform import CloudPlatform
from repro.core.constraints import Constraints
from repro.core.metrics import ScheduleMetrics
from repro.experiments.parallel import CellFailure
from repro.experiments.result import ResultBase
from repro.tune.space import Candidate, TuneSpace
from repro.util.tables import format_table
from repro.workflows.dag import Workflow


@dataclass(frozen=True)
class CandidateOutcome:
    """One configuration's judged outcome at some fidelity.

    Feasibility is conservative: the candidate is judged on its *worst*
    realized makespan/cost over the rung's seeds, so a winner met its
    constraints on every evaluated sample, not just on average.
    """

    candidate: Candidate
    #: how many market/fault seeds this outcome aggregates
    fidelity: int
    #: worst realized makespan/cost over the seeds (the judged values)
    makespan: float
    cost: float
    #: seed-averaged realized values (reporting only)
    mean_makespan: float
    mean_cost: float
    #: the static plan behind every replay
    planned_makespan: float
    planned_cost: float
    vm_count: int
    #: worst-case realized metrics, constraint-stamped
    metrics: ScheduleMetrics

    @property
    def label(self) -> str:
        return self.candidate.label

    @property
    def feasible(self) -> bool:
        """Feasible, or unjudged (no constraints given)."""
        return self.metrics.feasible is not False

    @property
    def total_excess(self) -> float:
        """Summed overshoot across violated bounds (0 when feasible)."""
        return sum(v.excess for v in self.metrics.violations)

    def to_json(self) -> dict:
        return {
            "candidate": self.candidate.to_json(),
            "label": self.label,
            "fidelity": self.fidelity,
            "makespan": self.makespan,
            "cost": self.cost,
            "mean_makespan": self.mean_makespan,
            "mean_cost": self.mean_cost,
            "planned_makespan": self.planned_makespan,
            "planned_cost": self.planned_cost,
            "vm_count": self.vm_count,
            "feasible": self.metrics.feasible,
            "violations": [
                {"constraint": v.constraint, "limit": v.limit, "actual": v.actual}
                for v in self.metrics.violations
            ],
        }


@dataclass(frozen=True)
class RungRecord:
    """One successive-halving rung: who ran, at what fidelity, who survived."""

    rung: int
    #: seeds per candidate in this rung
    fidelity: int
    evaluated: int
    failed: int
    #: labels promoted to the next rung (the full ranking for the last)
    kept: Tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "rung": self.rung,
            "fidelity": self.fidelity,
            "evaluated": self.evaluated,
            "failed": self.failed,
            "kept": list(self.kept),
        }


@dataclass
class TuneResult(ResultBase):
    """Outcome of one :func:`repro.tune.autotune` search."""

    #: cheapest configuration whose worst-case outcome met every bound;
    #: ``None`` when the constraints admitted nothing
    winner: Optional[CandidateOutcome]
    #: final-rung outcomes, best score first
    outcomes: Tuple[CandidateOutcome, ...]
    #: non-dominated final-rung menu on realized (makespan, cost),
    #: fastest first — the near-misses worth a second look
    frontier: Tuple[CandidateOutcome, ...]
    rungs: Tuple[RungRecord, ...]
    constraints: Optional[Constraints]
    space: TuneSpace
    workflow_name: str
    scenario: str
    seed: int
    n_candidates: int
    eta: int
    #: candidates whose evaluation crashed or timed out (dropped)
    failures: List[CellFailure] = field(default_factory=list)
    #: the concrete tuned workflow instance and platform — provenance
    #: for re-simulating outcomes; deliberately not part of ``to_json()``
    workflow: Optional[Workflow] = None
    platform: Optional[CloudPlatform] = None

    @property
    def complete(self) -> bool:
        return not self.failures

    @property
    def feasible(self) -> bool:
        """Did the search find any configuration meeting the bounds?"""
        return self.winner is not None

    def outcome(self, label: str) -> CandidateOutcome:
        for o in self.outcomes:
            if o.label == label:
                return o
        from repro.errors import ExperimentError
        from repro.util.suggest import unknown_name_message

        raise ExperimentError(
            unknown_name_message(
                "tuned candidate", label, (o.label for o in self.outcomes)
            )
        )

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "workflow": self.workflow_name,
            "scenario": self.scenario,
            "seed": self.seed,
            "n_candidates": self.n_candidates,
            "eta": self.eta,
            "constraints": (
                self.constraints.to_json() if self.constraints is not None else None
            ),
            "space": self.space.to_json(),
            "winner": self.winner.to_json() if self.winner is not None else None,
            "frontier": [o.to_json() for o in self.frontier],
            "outcomes": [o.to_json() for o in self.outcomes],
            "rungs": [r.to_json() for r in self.rungs],
            "failures": [f.label for f in self.failures],
        }

    def summary(self) -> str:
        bounds = (
            self.constraints.describe()
            if self.constraints is not None
            else "unconstrained"
        )
        frontier_labels = {o.label for o in self.frontier}
        rows = []
        for o in self.outcomes:
            mark = ""
            if self.winner is not None and o.label == self.winner.label:
                mark = ">"
            elif o.label in frontier_labels:
                mark = "*"
            rows.append(
                (
                    mark + o.label,
                    "yes" if o.metrics.feasible else
                    ("-" if o.metrics.feasible is None else "NO"),
                    o.fidelity,
                    o.makespan,
                    o.cost,
                    o.metrics.violation_summary() or "",
                )
            )
        table = format_table(
            ["candidate (>=winner, *=Pareto)", "ok", "seeds", "worst s", "worst $", "violations"],
            rows,
            float_fmt=".2f",
            title=f"Autotune — {self.workflow_name}/{self.scenario}, {bounds}",
            align_right=False,
        )
        if self.winner is not None:
            head = (
                f"winner: {self.winner.label} — worst makespan "
                f"{self.winner.makespan:.0f}s, worst cost "
                f"${self.winner.cost:.2f} over {self.winner.fidelity} seed(s)"
            )
        else:
            head = f"no feasible configuration for {bounds}"
        ladder = "; ".join(
            f"rung {r.rung}: {r.evaluated}@{r.fidelity} seed(s) -> {len(r.kept)}"
            for r in self.rungs
        )
        text = f"{head}\nsearch: {ladder}\n{table}"
        if self.failures:
            lost = "\n".join(f"  {f}" for f in self.failures)
            text += f"\ndropped candidates ({len(self.failures)}):\n{lost}"
        return text
