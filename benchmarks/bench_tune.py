"""Autotune benchmark: the constraint-aware configuration search under load.

Times one seeded :func:`repro.tune.autotune` search (24 sampled
configurations over the full 360-point space, successively halved under
a deadline bound on montage) and records wall time plus the headline
the search exists for — the winner's cost against the best *fixed*
paper configuration (the Figure-4 policy/flavor menu at on-demand
prices, no reduction, retry recovery) under the same constraints — to
``BENCH_tune.json`` at the repo root, appending one dated row to
``BENCH_history.jsonl``.

``--check`` re-runs the committed search once and fails when it is more
than ``--tolerance`` (default 25%) slower than the baseline, with an
absolute slack so timer noise cannot trip the gate — the
``make bench-check`` regression hook.

Run directly::

    PYTHONPATH=src python benchmarks/bench_tune.py
    PYTHONPATH=src python benchmarks/bench_tune.py --check
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.core.constraints import Constraints
from repro.tune import TuneSpace, autotune

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_tune.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: minimum absolute slowdown (on top of the ratio tolerance) before the
#: check fails — the search runs in seconds, where scheduler noise alone
#: can exceed a 25% ratio on loaded machines.
ABS_SLACK_SECONDS = 0.5

#: the search's bound: tight enough that slow configurations are
#: infeasible on the montage/pareto instance, loose enough that a
#: feasible winner always exists
DEADLINE_SECONDS = 9000.0

#: the paper's fixed menu — 5 provisioning policies x 3 flavors, no
#: reduction, retry recovery, on-demand prices
PAPER_MENU = TuneSpace(
    reductions=("none",),
    recoveries=("retry",),
    purchases=("on_demand",),
)


def run_search(candidates: int, seed: int, jobs: int | None, backend: str | None):
    return autotune(
        constraints=Constraints(deadline=DEADLINE_SECONDS),
        workflow_name="montage",
        n_candidates=candidates,
        seed=seed,
        jobs=jobs,
        backend=backend,
    )


def paper_best(jobs: int | None, backend: str | None):
    """The cheapest feasible fixed paper configuration — evaluate the
    whole 15-point menu so the comparison is exhaustive, not sampled."""
    return autotune(
        constraints=Constraints(deadline=DEADLINE_SECONDS),
        workflow_name="montage",
        space=PAPER_MENU,
        n_candidates=PAPER_MENU.size,
        seed=0,
        jobs=jobs,
        backend=backend,
    )


def bench(args) -> dict:
    best, result = float("inf"), None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        result = run_search(args.candidates, args.seed, args.jobs, args.backend)
        best = min(best, time.perf_counter() - t0)
    assert result is not None and result.winner is not None

    fixed = paper_best(args.jobs, args.backend)
    assert fixed.winner is not None
    evals = sum(r.evaluated for r in result.rungs)
    savings = 1.0 - result.winner.cost / fixed.winner.cost
    return {
        "benchmark": "constraint-aware autotune (repro.tune.autotune)",
        "workload": {
            "workflow": "montage",
            "constraints": Constraints(deadline=DEADLINE_SECONDS).describe(),
            "candidates": args.candidates,
            "space_size": TuneSpace().size,
            "rungs": len(result.rungs),
            "evaluations": evals,
            "backend": args.backend or "serial",
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "repeats_best_of": args.repeats,
        "wall_seconds": round(best, 4),
        "evals_per_wall_second": round(evals / best, 1),
        "headline": {
            "winner": result.winner.label,
            "winner_cost": round(result.winner.cost, 4),
            "winner_makespan": round(result.winner.makespan, 1),
            "paper_best": fixed.winner.label,
            "paper_best_cost": round(fixed.winner.cost, 4),
            "savings_fraction_vs_paper_best": round(savings, 4),
        },
    }


def check(baseline_path: Path, tolerance: float, args) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run without --check first")
        return 0
    base = json.loads(baseline_path.read_text())
    t0 = time.perf_counter()
    result = run_search(args.candidates, args.seed, args.jobs, args.backend)
    seconds = time.perf_counter() - t0
    assert result.winner is not None
    ratio = seconds / base["wall_seconds"]
    slack = seconds - base["wall_seconds"]
    regressed = ratio > 1 + tolerance and slack > ABS_SLACK_SECONDS
    status = "REGRESSED" if regressed else "ok"
    print(
        f"autotune search: {seconds:6.3f}s vs baseline "
        f"{base['wall_seconds']:6.3f}s  x{ratio:5.2f}  {status}"
    )
    if regressed:
        print(
            f"autotune search {ratio:.2f}x baseline (+{slack:.3f}s; "
            f"tolerance {1 + tolerance:.2f}x and >{ABS_SLACK_SECONDS}s)"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidates", type=int, default=24)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of refreshing it",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed slowdown fraction for --check (default 0.25)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.out, args.tolerance, args)

    record = bench(args)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    headline = record["headline"]
    with HISTORY.open("a") as fh:
        fh.write(
            json.dumps(
                {
                    "date": datetime.date.today().isoformat(),
                    "benchmark": "tune",
                    "wall_seconds": record["wall_seconds"],
                    "evaluations": record["workload"]["evaluations"],
                    "winner_cost": headline["winner_cost"],
                    "savings_fraction_vs_paper_best": headline[
                        "savings_fraction_vs_paper_best"
                    ],
                }
            )
            + "\n"
        )
    print(
        f"{record['workload']['evaluations']} evaluations in "
        f"{record['wall_seconds']:.3f}s wall "
        f"({record['evals_per_wall_second']:.0f} evals/s) | "
        f"winner {headline['winner']} ${headline['winner_cost']:.2f} vs "
        f"paper-best {headline['paper_best']} ${headline['paper_best_cost']:.2f} "
        f"({headline['savings_fraction_vs_paper_best']:.0%} cheaper)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
