"""Tests for the one-call artifact export."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.cli import main
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.export import export_all
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.experiments.store import load_sweep


@pytest.fixture(scope="module")
def mini_sweep():
    platform = CloudPlatform.ec2()
    wfs = paper_workflows()
    return run_sweep(
        platform=platform,
        workflows={"montage": wfs["montage"], "sequential": wfs["sequential"]},
        scenarios=[scenario("pareto", platform)],
        strategies=[
            strategy("OneVMperTask-s"),
            strategy("AllParExceed-s"),
            strategy("GAIN"),
        ],
        seed=21,
    )


class TestExportAll:
    def test_writes_full_bundle(self, mini_sweep, tmp_path):
        written = export_all(tmp_path / "bundle", sweep=mini_sweep)
        names = {p.name for p in written}
        for expected in (
            "table1.txt",
            "table3.txt",
            "figure4.txt",
            "figure4_montage.svg",
            "figure5_sequential.svg",
            "summary.txt",
            "pareto_front.txt",
            "sweep.json",
            "report.html",
        ):
            assert expected in names, expected
        for p in written:
            assert p.exists() and p.stat().st_size > 0

    def test_sweep_json_loads_back(self, mini_sweep, tmp_path):
        export_all(tmp_path / "bundle", sweep=mini_sweep)
        loaded = load_sweep(tmp_path / "bundle" / "sweep.json")
        assert loaded.get("pareto", "montage", "GAIN").cost == pytest.approx(
            mini_sweep.get("pareto", "montage", "GAIN").cost
        )

    def test_creates_nested_directories(self, mini_sweep, tmp_path):
        target = tmp_path / "a" / "b" / "c"
        export_all(target, sweep=mini_sweep)
        assert (target / "table1.txt").exists()

    def test_cli_export_quick(self, tmp_path, capsys):
        assert main(
            ["export", "--quick", "--seed", "3", "--out-dir", str(tmp_path / "x")]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "x" / "figure4_montage.svg").exists()
