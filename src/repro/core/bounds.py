"""Lower bounds on makespan and cost, and efficiency ratios.

No schedule can beat the critical path on the fastest instance, nor can
it be billed less than the total work priced at the cheapest effective
rate per work-second.  Comparing a schedule against these bounds turns
"A is better than B" into "A is within x% of optimal" — a lens the
paper's relative comparisons lack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.platform import CloudPlatform
from repro.core.schedule import Schedule
from repro.workflows.dag import Workflow


def makespan_lower_bound(wf: Workflow, platform: CloudPlatform) -> float:
    """Critical path executed entirely on the fastest catalog type with
    free communication — unbeatable by any schedule."""
    _, cp = wf.critical_path()
    fastest = max(t.speedup for t in platform.catalog.values())
    return cp / fastest


def cost_lower_bound(wf: Workflow, platform: CloudPlatform) -> float:
    """Total work billed at the cheapest effective $ per work-second.

    A type's effective rate is ``price / (BTU * speedup)``; perfect
    packing (no idle, no BTU rounding) can approach but not beat it.
    EC2's cost-per-core pricing with sublinear speed-ups makes *small*
    the cheapest rate, so the bound is usually total work priced small.
    """
    region = platform.cheapest_region()
    btu = platform.btu_seconds
    best_rate = min(
        region.price(t) / (btu * t.speedup) for t in platform.catalog.values()
    )
    return wf.total_work() * best_rate


@dataclass(frozen=True)
class EfficiencyReport:
    """A schedule's distance from the physical optima."""

    label: str
    makespan: float
    makespan_bound: float
    cost: float
    cost_bound: float

    @property
    def makespan_ratio(self) -> float:
        """>= 1; 1 means the schedule is makespan-optimal."""
        return self.makespan / self.makespan_bound if self.makespan_bound else 1.0

    @property
    def cost_ratio(self) -> float:
        """>= 1; 1 means perfectly packed billing at the best rate."""
        return self.cost / self.cost_bound if self.cost_bound else 1.0


def efficiency(schedule: Schedule) -> EfficiencyReport:
    """Bound ratios for one schedule."""
    wf, platform = schedule.workflow, schedule.platform
    return EfficiencyReport(
        label=schedule.label,
        makespan=schedule.makespan,
        makespan_bound=makespan_lower_bound(wf, platform),
        cost=schedule.total_cost,
        cost_bound=cost_lower_bound(wf, platform),
    )
