"""Level-ranked list scheduling, and the stand-alone AllPar[Not]Exceed
strategies built on it (paper Sect. III-B).

The workflow is split into levels of mutually parallel tasks; levels are
scheduled in DAG order and tasks inside a level in descending execution
time (a deterministic stand-in for the paper's "arbitrary" order), each
placed by the provisioning policy of the same name.
"""

from __future__ import annotations

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.ranking import level_order
from repro.core.builder import ScheduleBuilder
from repro.core.provisioning.all_par import AllParExceed, AllParNotExceed
from repro.core.provisioning.base import ProvisioningPolicy, provisioning_policy
from repro.core.schedule import Schedule
from repro.kernels.dispatch import columnar_active, platform_eligible
from repro.workflows.dag import Workflow


class LevelScheduler(SchedulingAlgorithm):
    """Generic level-ranking scheduler over any provisioning policy."""

    name = "Level"

    def __init__(
        self,
        provisioning: ProvisioningPolicy | str = "AllParExceed",
        descending_exec: bool = True,
    ) -> None:
        if isinstance(provisioning, str):
            provisioning = provisioning_policy(provisioning)
        self.provisioning = provisioning
        self.descending_exec = descending_exec

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        # Large stock-model runs take the fused columnar kernel —
        # byte-identical schedules and counters (property-tested), one
        # array pass instead of per-object queries.  Exact-type checks:
        # a subclassed scheduler/policy may override behavior the fused
        # kernel inlines.
        if (
            type(self) in (LevelScheduler, AllParScheduler)
            and type(self.provisioning) in (AllParExceed, AllParNotExceed)
            and columnar_active(len(workflow))
            and platform_eligible(platform, itype)
        ):
            from repro.kernels.provision import fused_level_schedule

            return fused_level_schedule(
                workflow,
                platform,
                itype,
                region,
                exceed=self.provisioning.exceed_btu,
                descending_exec=self.descending_exec,
                algorithm=self.name,
                provisioning=self.provisioning.name,
            )
        builder = ScheduleBuilder(workflow, platform, itype, region)
        for level in level_order(workflow, platform, itype, self.descending_exec):
            for tid in level:
                builder.begin_task(tid)
                vm = self.provisioning.select_vm(tid, builder)
                builder.place(tid, vm)
        return builder.build(
            algorithm=self.name, provisioning=self.provisioning.name
        ).validate()


@register_algorithm
class AllParScheduler(LevelScheduler):
    """The paper's AllPar[Not]Exceed used *as* a scheduling algorithm:
    level ranking + the same-named provisioning policy."""

    name = "AllPar"

    def __init__(self, exceed: bool = True) -> None:
        super().__init__("AllParExceed" if exceed else "AllParNotExceed")
        self.exceed = exceed

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        out = super().schedule(workflow, platform, itype=itype, region=region)
        # Report under the provisioning name, matching the paper's plots.
        relabeled = Schedule(
            workflow=out.workflow,
            platform=out.platform,
            vms=out.vms,
            algorithm=self.provisioning.name,
            provisioning=self.provisioning.name,
        )
        if out._checked:
            # same workflow/platform/vms, only labels changed: the
            # feasibility verdict carries over
            object.__setattr__(relabeled, "_checked", True)
        return relabeled
