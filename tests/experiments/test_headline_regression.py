"""Regression pins for the headline reproduced numbers.

EXPERIMENTS.md reports specific measured values for the default sweep
(seed 2013).  These tests pin them (with tolerances for the genuinely
seed-sensitive ones) so refactors cannot silently drift the published
reproduction.  If a deliberate model change moves them, update
EXPERIMENTS.md together with these expectations.
"""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.runner import run_sweep
from repro.experiments.tables import table4


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(platform=CloudPlatform.ec2(), seed=2013)


class TestTable4Pins:
    """The strongest quantitative match against the paper."""

    def test_small_interval(self, sweep):
        t4 = {e["size"]: e for e in table4(sweep)}
        lo, hi = t4["s"]["loss_interval"]
        assert lo == pytest.approx(-92, abs=3)  # paper: -90
        assert hi == pytest.approx(0, abs=1e-6)

    def test_medium_interval_and_gain(self, sweep):
        t4 = {e["size"]: e for e in table4(sweep)}
        lo, hi = t4["m"]["loss_interval"]
        assert lo == pytest.approx(-83, abs=3)  # paper: -80
        assert hi == pytest.approx(33, abs=8)  # paper: 40
        glo, ghi = t4["m"]["gain_interval"]
        assert glo == pytest.approx(37.5, abs=1)  # paper stable gain: 37%
        assert ghi == pytest.approx(37.5, abs=1)

    def test_large_interval_and_gain(self, sweep):
        t4 = {e["size"]: e for e in table4(sweep)}
        lo, hi = t4["l"]["loss_interval"]
        assert lo == pytest.approx(-67, abs=3)  # paper: -64
        assert hi == pytest.approx(167, abs=5)  # paper: 166
        glo, ghi = t4["l"]["gain_interval"]
        assert glo == pytest.approx(52.4, abs=1)  # paper stable gain: 52%
        assert ghi == pytest.approx(52.4, abs=1)


class TestFigure4Pins:
    def test_dynamic_upgraders_loss_band(self, sweep):
        for wf in sweep.workflows("pareto"):
            for label in ("GAIN", "CPA-Eager"):
                m = sweep.get("pareto", wf, label)
                assert m.loss_pct == pytest.approx(100.0, abs=0.5), (wf, label)

    def test_onevm_large_loss_band(self, sweep):
        for wf in sweep.workflows("pareto"):
            m = sweep.get("pareto", wf, "OneVMperTask-l")
            assert 200.0 <= m.loss_pct <= 300.0 + 1e-9
            assert m.gain_pct == pytest.approx(52.4, abs=1)


class TestFigure5Pins:
    def test_montage_idle_scale(self, sweep):
        """EXPERIMENTS.md: Montage tops out around 21.5 h of idle."""
        idle = {
            label: m.idle_seconds
            for label, m in sweep.metrics["pareto"]["montage"].items()
        }
        assert max(idle.values()) == pytest.approx(77_525, rel=0.02)

    def test_sequential_packed_idle_under_one_btu(self, sweep):
        m = sweep.get("pareto", "sequential", "StartParExceed-s")
        assert m.idle_seconds <= 3600.0
