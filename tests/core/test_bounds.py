"""Tests for the makespan/cost lower bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.core.bounds import (
    cost_lower_bound,
    efficiency,
    makespan_lower_bound,
)
from repro.experiments.config import paper_strategies
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import random_layered, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestBounds:
    def test_makespan_bound_is_cp_on_xlarge(self, platform):
        wf = sequential(4)  # CP = total work = 4000 s
        assert makespan_lower_bound(wf, platform) == pytest.approx(4000.0 / 2.7)

    def test_cost_bound_uses_small_rate(self, platform):
        """On EC2 pricing small has the best $/work-second."""
        wf = sequential(4)
        assert cost_lower_bound(wf, platform) == pytest.approx(
            4000.0 * 0.08 / 3600.0
        )

    def test_bounds_positive(self, platform, paper_workflow):
        assert makespan_lower_bound(paper_workflow, platform) > 0
        assert cost_lower_bound(paper_workflow, platform) > 0


class TestEfficiency:
    def test_ratios_at_least_one(self, platform, paper_workflow):
        wf = apply_model(paper_workflow, ParetoModel(), seed=1)
        for spec in paper_strategies():
            report = efficiency(spec.run(wf, platform))
            assert report.makespan_ratio >= 1.0 - 1e-9, spec.label
            assert report.cost_ratio >= 1.0 - 1e-9, spec.label

    def test_packing_approaches_cost_bound(self, platform):
        """A long chain on one small VM wastes only the last BTU tail."""
        from repro.core.allocation.heft import HeftScheduler

        wf = sequential(36)  # 36,000 s of work = exactly 10 BTUs
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        report = efficiency(sched)
        assert report.cost_ratio == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bounds_hold_on_random_inputs(self, seed):
        platform = CloudPlatform.ec2()
        wf = apply_model(
            random_layered(layers=4, seed=seed), ParetoModel(), seed=seed
        )
        from repro.core.allocation.gain import GainScheduler
        from repro.core.allocation.heft import HeftScheduler

        for algo in (HeftScheduler("OneVMperTask"), GainScheduler()):
            sched = algo.schedule(wf, platform)
            assert sched.makespan >= makespan_lower_bound(wf, platform) - 1e-6
            assert sched.total_cost >= cost_lower_bound(wf, platform) - 1e-9
