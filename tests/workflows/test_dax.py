"""Tests for Pegasus DAX parsing/serialization."""

import pytest

from repro.errors import WorkflowParseError
from repro.workflows.dax import parse_dax, parse_dax_string, to_dax
from repro.workflows.generators import montage

_GB = 1024**3

_SAMPLE = f"""
<adag name="sample">
  <job id="j1" name="preprocess" runtime="120.5">
    <uses file="f.out" link="output" size="{2 * _GB}"/>
  </job>
  <job id="j2" name="analyze" runtime="300">
    <uses file="f.out" link="input" size="{2 * _GB}"/>
  </job>
  <job id="j3" name="tail" runtime="60"/>
  <child ref="j2"><parent ref="j1"/></child>
  <child ref="j3"><parent ref="j2"/></child>
</adag>
"""


class TestParse:
    def test_tasks_and_runtimes(self):
        wf = parse_dax_string(_SAMPLE)
        assert wf.name == "sample"
        assert len(wf) == 3
        assert wf.task("j1").work == pytest.approx(120.5)
        assert wf.task("j1").category == "preprocess"

    def test_dependencies(self):
        wf = parse_dax_string(_SAMPLE)
        assert wf.predecessors("j2") == ["j1"]
        assert wf.predecessors("j3") == ["j2"]

    def test_file_size_becomes_edge_volume(self):
        wf = parse_dax_string(_SAMPLE)
        assert wf.data_gb("j1", "j2") == pytest.approx(2.0)
        assert wf.data_gb("j2", "j3") == 0.0

    def test_namespace_tolerated(self):
        text = _SAMPLE.replace(
            "<adag name=", '<adag xmlns="http://pegasus.isi.edu/schema/DAX" name='
        )
        wf = parse_dax_string(text)
        assert len(wf) == 3

    def test_zero_runtime_clamped(self):
        text = '<adag><job id="a" runtime="0"/></adag>'
        wf = parse_dax_string(text)
        assert wf.task("a").work > 0

    def test_malformed_xml(self):
        with pytest.raises(WorkflowParseError):
            parse_dax_string("<adag><job id=")

    def test_wrong_root(self):
        with pytest.raises(WorkflowParseError, match="adag"):
            parse_dax_string("<workflow/>")

    def test_missing_runtime(self):
        with pytest.raises(WorkflowParseError, match="runtime"):
            parse_dax_string('<adag><job id="a"/></adag>')

    def test_non_numeric_runtime(self):
        with pytest.raises(WorkflowParseError):
            parse_dax_string('<adag><job id="a" runtime="fast"/></adag>')

    def test_unknown_dependency_target(self):
        text = (
            '<adag><job id="a" runtime="1"/>'
            '<child ref="ghost"><parent ref="a"/></child></adag>'
        )
        with pytest.raises(WorkflowParseError):
            parse_dax_string(text)

    def test_missing_child_ref(self):
        text = '<adag><job id="a" runtime="1"/><child><parent ref="a"/></child></adag>'
        with pytest.raises(WorkflowParseError):
            parse_dax_string(text)

    def test_parse_file(self, tmp_path):
        p = tmp_path / "wf.dax"
        p.write_text(_SAMPLE)
        wf = parse_dax(p)
        assert len(wf) == 3

    def test_parse_missing_file(self, tmp_path):
        with pytest.raises(WorkflowParseError):
            parse_dax(tmp_path / "nope.dax")


class TestRoundTrip:
    def test_montage_round_trips(self):
        original = montage()
        back = parse_dax_string(to_dax(original))
        assert sorted(back.task_ids) == sorted(original.task_ids)
        assert sorted((u, v) for u, v, _ in back.edges()) == sorted(
            (u, v) for u, v, _ in original.edges()
        )
        for t in original.tasks:
            assert back.task(t.id).work == pytest.approx(t.work)

    def test_edge_volumes_survive(self):
        original = montage()
        back = parse_dax_string(to_dax(original))
        for u, v, gb in original.edges():
            assert back.data_gb(u, v) == pytest.approx(gb, abs=1e-6)
