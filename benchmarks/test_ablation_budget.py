"""Ablation: the dynamic upgraders' budget factor.

The paper's budget sentence is garbled ("for times respectively twice");
DESIGN.md resolves it to 2x for both CPA-Eager and Gain because the
reported loss band is [45, 100]%.  This bench sweeps the factor and
shows the greedy upgraders saturate whatever budget they get: loss
approaches (factor - 1) * 100%, so 4x would have produced ~300% loss —
far outside the paper's plots.
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.core.allocation.cpa_eager import CpaEagerScheduler
from repro.core.allocation.gain import GainScheduler
from repro.core.baseline import reference_schedule
from repro.experiments.scenarios import scenario
from repro.util.tables import format_table
from repro.workflows.generators import montage

FACTORS = (1.0, 1.5, 2.0, 3.0, 4.0)


def _sweep(platform):
    wf = scenario("pareto", platform).apply(montage(), 2013)
    ref = reference_schedule(wf, platform)
    rows = []
    for factor in FACTORS:
        cells = [factor]
        for cls in (CpaEagerScheduler, GainScheduler):
            sched = cls(budget_factor=factor).schedule(wf, platform)
            loss = (sched.total_cost - ref.total_cost) / ref.total_cost * 100
            gain = (ref.makespan - sched.makespan) / ref.makespan * 100
            cells += [gain, loss]
        rows.append(tuple(cells))
    return rows


def test_budget_factor_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_sweep, platform)
    by_factor = {r[0]: r for r in rows}

    # factor 1: no upgrades, both sit at the reference
    assert by_factor[1.0][1] == pytest.approx(0.0)
    assert by_factor[1.0][2] == pytest.approx(0.0)

    for factor, _, cpa_loss, _, gain_loss in rows:
        # budgets are hard caps...
        assert cpa_loss <= (factor - 1) * 100 + 1e-6
        assert gain_loss <= (factor - 1) * 100 + 1e-6
    # ... and the greedy upgraders saturate them at the top end
    assert by_factor[4.0][4] > 200.0  # GAIN at 4x: way past the paper's band
    assert by_factor[2.0][4] <= 100.0 + 1e-6  # 2x reproduces [45, 100]%

    # more budget never slows the schedule down
    for col in (1, 3):
        gains = [r[col] for r in rows]
        assert gains == sorted(gains)

    save_artifact(
        artifact_dir,
        "ablation_budget.txt",
        format_table(
            ["factor", "CPA gain %", "CPA loss %", "GAIN gain %", "GAIN loss %"],
            rows,
            title="Budget-factor ablation (Montage, Pareto, seed 2013)",
        ),
    )
