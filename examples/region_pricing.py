#!/usr/bin/env python
"""Region economics: where should a workflow run, and what does moving
data out of a region cost?

Part 1 prices the same Montage schedule in each of the paper's seven
EC2 regions (Table II).  Part 2 builds a two-region pipeline by hand and
shows the banded egress billing ((1 GB, 10 TB] at the source region's
rate) the platform model implements.

Run:  python examples/region_pricing.py
"""

from repro import CloudPlatform, HeftScheduler, Schedule, Task, VM, Workflow, montage
from repro.util.tables import format_table


def regional_price_comparison(platform: CloudPlatform) -> None:
    workflow = montage()
    scheduler = HeftScheduler("StartParNotExceed")
    rows = []
    for name in sorted(platform.regions):
        region = platform.region(name)
        sched = scheduler.schedule(
            workflow, platform, itype=platform.itype("medium"), region=region
        )
        rows.append((name, sched.total_cost, sched.makespan, sched.vm_count))
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["region", "cost $", "makespan s", "VMs"],
            rows,
            float_fmt=".3f",
            title="Montage-24, StartParNotExceed-m, priced per region",
        )
    )


def cross_region_pipeline(platform: CloudPlatform) -> None:
    """A producer in Sao Paulo shipping 50 GB to a consumer in Virginia."""
    wf = Workflow("cross-region")
    wf.add_task(Task("produce", 3000.0))
    wf.add_task(Task("consume", 3000.0))
    wf.add_dependency("produce", "consume", 50.0)
    wf.validate()

    sao = platform.region("sa-sao-paulo")
    usa = platform.region("us-east-virginia")
    producer = VM(id=0, itype=platform.itype("small"), region=sao)
    producer.place("produce", 0.0, 3000.0)
    consumer = VM(id=1, itype=platform.itype("small"), region=usa)
    transfer = platform.transfer_time(
        50.0,
        producer.itype,
        consumer.itype,
        src_region=sao,
        dst_region=usa,
    )
    consumer.place("consume", 3000.0 + transfer, 3000.0)
    sched = Schedule(workflow=wf, platform=platform, vms=[producer, consumer])
    sched.validate()

    print("\nTwo-region pipeline (50 GB Sao Paulo -> Virginia):")
    print(f"  transfer time : {transfer:8.1f} s (store-and-forward, 1 Gb/s)")
    print(f"  rent cost     : ${sched.rent_cost:.3f}")
    print(f"  egress cost   : ${sched.transfer_cost:.3f} "
          f"(first GB free, then ${sao.transfer_out_per_gb}/GB)")
    print(f"  total         : ${sched.total_cost:.3f}")
    # the same pipeline entirely inside Virginia costs no egress at all
    local = VM(id=0, itype=platform.itype("small"), region=usa)
    local.place("produce", 0.0, 3000.0)
    local.place("consume", 3000.0, 3000.0)
    local_sched = Schedule(workflow=wf, platform=platform, vms=[local])
    print(f"  ... vs single-VM single-region total: ${local_sched.total_cost:.3f}")


def main() -> None:
    platform = CloudPlatform.ec2()
    regional_price_comparison(platform)
    cross_region_pipeline(platform)


if __name__ == "__main__":
    main()
