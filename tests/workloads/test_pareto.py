"""Tests for the Feitelson Pareto workload model (paper Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import ensure_rng
from repro.workloads.base import apply_model
from repro.workloads.pareto import (
    FEITELSON_RUNTIME_SHAPE,
    FEITELSON_SCALE,
    ParetoDataModel,
    ParetoModel,
    pareto_cdf,
    pareto_sample,
)
from repro.workflows.generators import montage


class TestParetoCdf:
    def test_at_scale_is_zero(self):
        assert pareto_cdf(FEITELSON_SCALE) == 0.0

    def test_below_scale_clamped_to_zero(self):
        assert pareto_cdf(100.0) == 0.0

    def test_closed_form(self):
        # F(x) = 1 - (500/x)^2
        assert pareto_cdf(1000.0) == pytest.approx(0.75)
        assert pareto_cdf(4000.0) == pytest.approx(1 - (1 / 8) ** 2)

    def test_figure3_shape(self):
        """The paper's Fig. 3: CDF rises steeply and is ~0.98 at 3500-4000."""
        assert 0.97 < pareto_cdf(3500.0) < 1.0
        assert pareto_cdf(1500.0) > 0.85

    def test_array_input(self):
        out = pareto_cdf(np.array([500.0, 1000.0]))
        assert out.shape == (2,)
        assert out[0] == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            pareto_cdf(1000.0, shape=0.0)
        with pytest.raises(ValueError):
            pareto_cdf(1000.0, scale=-1.0)


class TestParetoSample:
    def test_support_starts_at_scale(self):
        draws = pareto_sample(ensure_rng(0), 10_000, 2.0, 500.0)
        assert draws.min() >= 500.0

    def test_empirical_cdf_matches_closed_form(self):
        """Kolmogorov-Smirnov style check at a handful of quantiles."""
        draws = pareto_sample(ensure_rng(1), 200_000, 2.0, 500.0)
        for x in (600.0, 1000.0, 2000.0, 4000.0):
            emp = (draws <= x).mean()
            assert emp == pytest.approx(pareto_cdf(x), abs=0.01)

    def test_heavier_tail_for_smaller_shape(self):
        rng_a, rng_b = ensure_rng(2), ensure_rng(2)
        light = pareto_sample(rng_a, 100_000, 2.0, 500.0)
        heavy = pareto_sample(rng_b, 100_000, 1.3, 500.0)
        assert np.quantile(heavy, 0.99) > np.quantile(light, 0.99)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            pareto_sample(ensure_rng(0), -1, 2.0, 500.0)


class TestParetoModel:
    def test_covers_every_task(self):
        wf = montage()
        works = ParetoModel().runtimes(wf, seed=3)
        assert set(works) == set(wf.task_ids)
        assert all(w >= FEITELSON_SCALE for w in works.values())

    def test_reproducible(self):
        wf = montage()
        assert ParetoModel().runtimes(wf, seed=7) == ParetoModel().runtimes(wf, seed=7)

    def test_seed_changes_draws(self):
        wf = montage()
        assert ParetoModel().runtimes(wf, seed=1) != ParetoModel().runtimes(wf, seed=2)

    def test_cap(self):
        wf = montage()
        works = ParetoModel(cap=600.0).runtimes(wf, seed=0)
        assert max(works.values()) <= 600.0

    def test_apply_model_preserves_shape(self):
        wf = montage()
        out = apply_model(wf, ParetoModel(), seed=5)
        assert out.task_ids == wf.task_ids
        assert [(u, v) for u, v, _ in out.edges()] == [
            (u, v) for u, v, _ in wf.edges()
        ]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ParetoModel(shape=0)
        with pytest.raises(ValueError):
            ParetoModel(scale=-5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_any_seed_yields_valid_workflow(self, seed):
        out = apply_model(montage(), ParetoModel(), seed=seed)
        out.validate()
        assert all(t.work > 0 for t in out.tasks)


class TestParetoDataModel:
    def test_sizes_cover_every_edge(self):
        wf = montage()
        sizes = ParetoDataModel().data_sizes(wf, seed=4)
        assert set(sizes) == {(u, v) for u, v, _ in wf.edges()}
        assert all(gb > 0 for gb in sizes.values())

    def test_scale_is_500_mb(self):
        wf = montage()
        sizes = ParetoDataModel().data_sizes(wf, seed=4)
        assert min(sizes.values()) >= 500.0 / 1024.0

    def test_apply_replaces_edge_volumes(self):
        wf = montage()
        out = apply_model(wf, ParetoDataModel(), seed=4)
        changed = sum(
            1
            for u, v, gb in out.edges()
            if abs(gb - wf.data_gb(u, v)) > 1e-12
        )
        assert changed == len(out.edges())

    def test_runtime_and_size_streams_independent(self):
        """Same seed: runtimes identical to the runtime-only model."""
        wf = montage()
        assert ParetoDataModel().runtimes(wf, seed=9) == ParetoModel().runtimes(
            wf, seed=9
        )

    def test_sizes_stable_across_processes(self):
        """The size stream's seed derivation must not involve Python's
        per-process hash salt: a fresh interpreter draws identically."""
        import subprocess
        import sys

        code = (
            "from repro.workloads.pareto import ParetoDataModel;"
            "from repro.workflows.generators import montage;"
            "s = ParetoDataModel().data_sizes(montage(), seed=9);"
            "print(sum(sorted(s.values())))"
        )
        outs = {
            float(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True,
                    text=True,
                    check=True,
                ).stdout.strip()
            )
            for _ in range(2)
        }
        local = sum(sorted(ParetoDataModel().data_sizes(montage(), seed=9).values()))
        assert len(outs) == 1
        assert next(iter(outs)) == pytest.approx(local, rel=1e-12)
