"""Tests for DAG transformations (transitive reduction, chain merge)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.generators import montage, random_layered, sequential
from repro.workflows.task import Task
from repro.workflows.transform import (
    chain_decomposition,
    expand_merged_schedule_order,
    merge_chains,
    transitive_reduction,
)


def _triangle(data_on_shortcut: float = 0.0) -> Workflow:
    """a -> b -> c with a redundant a -> c shortcut."""
    wf = Workflow("tri")
    for t in "abc":
        wf.add_task(Task(t, 100.0))
    wf.add_dependency("a", "b", 1.0)
    wf.add_dependency("b", "c", 1.0)
    wf.add_dependency("a", "c", data_on_shortcut)
    return wf.validate()


class TestTransitiveReduction:
    def test_dataless_shortcut_removed(self):
        out = transitive_reduction(_triangle(0.0))
        assert len(out.edges()) == 2
        with pytest.raises(WorkflowError):
            out.data_gb("a", "c")

    def test_data_bearing_shortcut_kept(self):
        out = transitive_reduction(_triangle(2.0))
        assert out.data_gb("a", "c") == 2.0

    def test_critical_path_unchanged(self):
        wf = _triangle(0.0)
        _, before = wf.critical_path()
        _, after = transitive_reduction(wf).critical_path()
        assert before == after

    def test_montage_idempotent(self):
        """Montage has no dataless transitive edges: nothing changes."""
        wf = montage()
        out = transitive_reduction(wf)
        assert len(out.edges()) == len(wf.edges())


class TestChainDecomposition:
    def test_pure_chain_is_one_chain(self):
        chains = chain_decomposition(sequential(5))
        assert len(chains) == 1
        assert len(chains[0]) == 5

    def test_diamond_has_no_mergeable_interior(self, diamond):
        chains = chain_decomposition(diamond)
        assert sorted(len(c) for c in chains) == [1, 1, 1, 1]

    def test_montage_tail_chain_found(self):
        """mAdd -> mShrink -> mJPEG is a linear tail."""
        chains = {tuple(c) for c in chain_decomposition(montage())}
        assert ("mAdd", "mShrink", "mJPEG") in chains

    def test_partition(self):
        wf = montage()
        chains = chain_decomposition(wf)
        flat = [t for c in chains for t in c]
        assert sorted(flat) == sorted(wf.task_ids)


class TestMergeChains:
    def test_chain_collapses_to_one_task(self):
        out = merge_chains(sequential(4))
        assert len(out) == 1
        (task,) = out.tasks
        assert task.work == 4000.0
        assert expand_merged_schedule_order(out, task.id) == [
            f"step_{i:03d}" for i in range(4)
        ]

    def test_total_work_preserved(self):
        wf = montage()
        assert merge_chains(wf).total_work() == pytest.approx(wf.total_work())

    def test_critical_path_length_preserved(self):
        """Merging chains never changes the zero-communication CP."""
        wf = montage()
        _, before = wf.critical_path()
        _, after = merge_chains(wf).critical_path()
        assert after == pytest.approx(before)

    def test_boundary_edges_keep_volume(self, diamond):
        out = merge_chains(diamond)  # nothing merges; volumes intact
        for u, v, gb in diamond.edges():
            assert out.data_gb(u, v) == gb

    def test_expand_rejects_plain_tasks(self, diamond):
        with pytest.raises(WorkflowError):
            expand_merged_schedule_order(diamond, "A")

    def test_merged_workflow_schedulable(self):
        from repro.cloud.platform import CloudPlatform
        from repro.core.allocation.heft import HeftScheduler

        platform = CloudPlatform.ec2()
        wf = merge_chains(montage())
        sched = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        sched.validate()

    def test_merging_never_raises_cost(self):
        """Merged chains run on one VM: the packed policies' cost can
        only improve or stay equal."""
        from repro.cloud.platform import CloudPlatform
        from repro.core.allocation.heft import HeftScheduler

        platform = CloudPlatform.ec2()
        wf = montage()
        base = HeftScheduler("StartParExceed").schedule(wf, platform)
        merged = HeftScheduler("StartParExceed").schedule(
            merge_chains(wf), platform
        )
        assert merged.total_cost <= base.total_cost + 1e-9


class TestTransformProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_merge_preserves_work_and_cp(self, seed):
        wf = random_layered(layers=5, seed=seed)
        merged = merge_chains(wf)
        assert merged.total_work() == pytest.approx(wf.total_work())
        _, cp_a = wf.critical_path()
        _, cp_b = merged.critical_path()
        assert cp_b == pytest.approx(cp_a)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reduction_preserves_reachability(self, seed):
        wf = random_layered(layers=5, seed=seed, edge_density=0.8)
        out = transitive_reduction(wf)
        for tid in wf.task_ids:
            assert set(out.descendants(tid)) == set(wf.descendants(tid))
