"""Tenant arrival streams: who submits which workflow, when.

A service run is driven by a sequence of :class:`WorkflowRequest`
objects — (tenant, workflow, arrival time, optional budget/deadline).
Streams can be synthesized (Poisson arrivals over a tenant population,
:func:`poisson_arrivals`) or replayed from a trace of explicit rows
(:func:`trace_arrivals`).  Generation is seed-deterministic: the same
seed yields the same stream object for object, which the determinism
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.constraints import Constraints
from repro.errors import ExperimentError
from repro.util.rng import ensure_rng
from repro.workflows.dag import Workflow


@dataclass(frozen=True)
class WorkflowRequest:
    """One tenant submission entering the service at *arrival* seconds."""

    tenant: str
    workflow: Workflow
    arrival: float
    #: request name, unique within a stream (defaults to tenant/index)
    name: str = ""
    #: per-tenant spending cap in USD (inf = unconstrained); the budget
    #: guard reads the *tenant's* budget off its first request
    budget: float = float("inf")
    #: soft completion target, seconds after arrival (reported, never
    #: enforced — the hard-constraint policies reject, they do not kill)
    deadline: float = float("inf")

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ExperimentError(f"negative arrival time {self.arrival}")
        if self.budget <= 0:
            raise ExperimentError(f"budget must be positive, got {self.budget}")
        if self.deadline <= 0:
            raise ExperimentError(f"deadline must be positive, got {self.deadline}")
        if not self.tenant:
            raise ExperimentError("request needs a tenant id")

    @property
    def constraints(self) -> Constraints:
        """The request's bounds as the library-wide
        :class:`~repro.core.constraints.Constraints` spelling
        (``inf`` axes map to unconstrained)."""
        return Constraints(
            deadline=None if self.deadline == float("inf") else self.deadline,
            budget=None if self.budget == float("inf") else self.budget,
        )


def _sorted_stream(requests: Iterable[WorkflowRequest]) -> Tuple[WorkflowRequest, ...]:
    """Stable arrival order: ties broken by submission index, never by
    tenant name, so streams replay in exactly the generated order."""
    return tuple(sorted(requests, key=lambda r: r.arrival))


def poisson_arrivals(
    workflows: "Workflow | Sequence[Workflow]",
    count: int,
    tenants: int,
    mean_interarrival: float,
    seed=None,
    budget: "float | Constraints" = float("inf"),
) -> Tuple[WorkflowRequest, ...]:
    """*count* submissions with exponential inter-arrivals, tenants and
    workflow shapes drawn uniformly per submission.

    One RNG drives all three draws in a fixed order (gap, tenant,
    shape), so a stream is fully determined by ``(count, tenants,
    mean_interarrival, seed)``.  *budget* caps every tenant, spelled
    either as a plain USD float or as a
    :class:`~repro.core.constraints.Constraints` with ``budget`` set.
    """
    if isinstance(budget, Constraints):
        budget = float("inf") if budget.budget is None else budget.budget
    if count < 1:
        raise ExperimentError("count must be >= 1")
    if tenants < 1:
        raise ExperimentError("tenants must be >= 1")
    if mean_interarrival < 0:
        raise ExperimentError("mean_interarrival must be >= 0")
    if isinstance(workflows, Workflow):
        workflows = [workflows]
    shapes: List[Workflow] = list(workflows)
    if not shapes:
        raise ExperimentError("poisson_arrivals needs at least one workflow shape")
    rng = ensure_rng(seed)
    width = len(str(tenants - 1))
    t = 0.0
    out: List[WorkflowRequest] = []
    for i in range(count):
        tenant_idx = int(rng.integers(tenants))
        shape = shapes[int(rng.integers(len(shapes)))]
        tenant = f"tenant{tenant_idx:0{width}d}"
        out.append(
            WorkflowRequest(
                tenant=tenant,
                workflow=shape,
                arrival=t,
                name=f"{tenant}/{shape.name}#{i}",
                budget=budget,
            )
        )
        if mean_interarrival:
            t += float(rng.exponential(mean_interarrival))
    return _sorted_stream(out)


def trace_arrivals(
    rows: Iterable[Tuple],
    workflows: Dict[str, Workflow],
) -> Tuple[WorkflowRequest, ...]:
    """Build a stream from explicit trace rows.

    Each row is ``(tenant, workflow_name, arrival)`` with optional
    trailing ``budget`` and ``deadline`` entries; *workflows* maps the
    names to DAGs.  Rows may be unordered — the stream is sorted by
    arrival with the original row order breaking ties.
    """
    out: List[WorkflowRequest] = []
    for i, row in enumerate(rows):
        if len(row) < 3:
            raise ExperimentError(
                f"trace row {i} needs (tenant, workflow, arrival), got {row!r}"
            )
        tenant, wf_name, arrival = row[0], row[1], float(row[2])
        if wf_name not in workflows:
            known = ", ".join(sorted(workflows))
            raise ExperimentError(
                f"trace row {i}: unknown workflow {wf_name!r} (known: {known})"
            )
        budget = float(row[3]) if len(row) > 3 else float("inf")
        deadline = float(row[4]) if len(row) > 4 else float("inf")
        out.append(
            WorkflowRequest(
                tenant=str(tenant),
                workflow=workflows[wf_name],
                arrival=arrival,
                name=f"{tenant}/{wf_name}#{i}",
                budget=budget,
                deadline=deadline,
            )
        )
    if not out:
        raise ExperimentError("trace_arrivals got an empty trace")
    return _sorted_stream(out)
