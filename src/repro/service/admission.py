"""Admission and queueing policies for the service loop.

When a :class:`~repro.service.arrivals.WorkflowRequest` arrives (or a
concurrency slot frees up), an admission policy answers two questions:

* :meth:`AdmissionPolicy.admit` — may this request run at all?  A
  ``False`` is a *reject*: the workflow never executes (the
  hard-constraint framing of Thai et al., arXiv:1507.05470 — constrained
  services refuse work rather than kill it mid-flight).
* :meth:`AdmissionPolicy.select_next` — which queued request starts
  when a slot opens?

Policies are deterministic functions of service state, so a seeded
service run admits, queues and rejects identically on every backend.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Sequence

from repro.core.constraints import Constraints
from repro.errors import ExperimentError
from repro.service.arrivals import WorkflowRequest
from repro.util.suggest import unknown_name_message


class AdmissionPolicy(abc.ABC):
    """Strategy deciding admit/queue/reject per submission."""

    #: registry key and report label
    name: str = "base"

    def admit(self, request: WorkflowRequest, service) -> bool:
        """May *request* run (now or later)?  Decided once, at arrival;
        the loop takes any noted estimate as a budget commitment the
        moment this returns ``True``, so queued requests of one tenant
        can never jointly overshoot its budget."""
        return True

    def select_next(self, queue: Sequence[WorkflowRequest], service) -> int:
        """Index of the queued request to start next (queue is in
        arrival order).  Default: FIFO."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class FifoAdmission(AdmissionPolicy):
    """Admit everything; start queued requests strictly in arrival
    order.  The throughput-oriented baseline."""

    name = "fifo"


class FairShareAdmission(AdmissionPolicy):
    """Admit everything; when a slot frees, pick the queued request of
    the tenant with the fewest workflows currently running (ties: fewer
    admitted so far, then arrival order).

    This is per-tenant fair-share queueing: one tenant submitting a
    burst cannot starve the others — the WaaS fairness lever of Hilman
    et al. (arXiv:1903.01113).
    """

    name = "fair"

    def select_next(self, queue: Sequence[WorkflowRequest], service) -> int:
        # Every queued request of one tenant shares the same
        # (running, admitted) pair, so the argmin over the queue equals
        # the argmin over each tenant's *first* occurrence: one account
        # lookup per distinct tenant instead of per queued entry.
        # Strict < keeps the earliest index on cross-tenant ties,
        # matching min(..., key=(running, admitted, i)) exactly.
        best_i = 0
        best_key = None
        seen = set()
        for i, request in enumerate(queue):
            tenant = request.tenant
            if tenant in seen:
                continue
            seen.add(tenant)
            acct = service.account(tenant)
            key = (acct.running, acct.admitted)
            if best_key is None or key < best_key:
                best_key, best_i = key, i
        return best_i


def default_estimator(request: WorkflowRequest, service) -> float:
    """Conservative-by-construction rent estimate for one request.

    Builds the request's workflow through a static
    :class:`~repro.core.builder.ScheduleBuilder` under the
    ``OneVMperTask`` provisioning policy — on the *service's* instance
    type, with the builder's rentals recorded in the shared
    :class:`~repro.service.fleet.FleetManager` ledger — and prices the
    result.  With no cross-VM transfers this equals the realized online
    cost of the workflow exactly (each task pays its own BTUs); with
    transfers the realized cost can exceed it, because online staging
    happens after placement.
    """
    from repro.core.builder import ScheduleBuilder
    from repro.core.provisioning.base import provisioning_policy

    builder = ScheduleBuilder(
        request.workflow,
        service.platform,
        service.itype,
        region=service.region,
        fleet=service.fleet,
    )
    policy = provisioning_policy("OneVMperTask")
    for tid in request.workflow.topological_order():
        builder.begin_task(tid)
        builder.place(tid, policy.select_vm(tid, builder))
    return builder.build("estimate", "OneVMperTask").rent_cost


class BudgetGuardAdmission(AdmissionPolicy):
    """Reject a request when its tenant's budget cannot cover it.

    A tenant account carries ``spent`` (realized rent of finished
    work, from the fleet bill) plus ``committed`` (estimates of its
    still-running workflows); a request is admitted only while
    ``spent + committed + estimate <= budget``.  Queue order stays
    FIFO.  Estimates come from *estimator* (default:
    :func:`default_estimator`); when estimates upper-bound realized
    cost, per-tenant spend provably never exceeds the budget.

    The bound itself is a :class:`~repro.core.constraints.Constraints`
    budget: pass *constraints* to cap every tenant by one service-level
    object, or leave it ``None`` to read each request's own bounds
    (``WorkflowRequest.constraints``, the per-request ``budget`` field's
    Constraints spelling).  Judging goes through
    :meth:`Constraints.feasible`, the same verdict the metric layer and
    the autotuner use.
    """

    name = "budget"

    def __init__(
        self,
        estimator: Callable[[WorkflowRequest, object], float] | None = None,
        constraints: "Constraints | float | None" = None,
    ) -> None:
        self.estimator = estimator or default_estimator
        if constraints is not None and not isinstance(constraints, Constraints):
            constraints = Constraints(budget=float(constraints))
        self.constraints: Optional[Constraints] = constraints

    def admit(self, request: WorkflowRequest, service) -> bool:
        limits = (
            self.constraints if self.constraints is not None else request.constraints
        )
        if limits.budget is None:
            return True
        acct = service.account(request.tenant)
        estimate = self.estimator(request, service)
        projected = acct.spent + acct.committed + estimate
        # the 1e-9 slack absorbs float accumulation noise in the ledger
        if not limits.feasible(cost=projected - 1e-9):
            return False
        # stash the estimate: the loop commits it against the budget on
        # admit, without pricing the workflow a second time
        service.note_estimate(request, estimate)
        return True


#: registry: name -> zero-argument factory
ADMISSION_POLICIES: Dict[str, Callable[[], AdmissionPolicy]] = {
    "fifo": FifoAdmission,
    "fair": FairShareAdmission,
    "budget": BudgetGuardAdmission,
}


def admission_policy(policy: "str | AdmissionPolicy | None") -> AdmissionPolicy:
    """Resolve a policy instance from a name, instance or ``None``
    (FIFO), with a did-you-mean error on unknown names."""
    if policy is None:
        return FifoAdmission()
    if isinstance(policy, AdmissionPolicy):
        return policy
    for key, factory in ADMISSION_POLICIES.items():
        if key.lower() == str(policy).lower():
            return factory()
    raise ExperimentError(
        unknown_name_message("admission policy", str(policy), ADMISSION_POLICIES)
    )
