"""repro.obs — the observability layer.

Three legs, all zero-overhead when disabled (see the contract in
DESIGN.md §10):

* :class:`Tracer` / :data:`NULL_TRACER` — structured spans, instants and
  counter samples, serialized as JSONL or Chrome ``trace_event`` JSON
  (opens in ``chrome://tracing`` / Perfetto).
* :class:`MetricsRegistry` — per-run counters (VMs rented, BTUs billed,
  tasks retried, cache hits, events processed) that merge
  deterministically across execution backends.
* run manifests — config hash, seed, git revision, library versions and
  wall/simulated time written next to every CLI artifact, so any figure
  or table is reproducible from its manifest.
"""

from repro.obs.manifest import (
    build_manifest,
    config_hash,
    default_manifest_path,
    git_revision,
    library_versions,
    load_manifest,
    manifest_argv,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry, current
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    ensure_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "validate_chrome_trace",
    "MetricsRegistry",
    "current",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_argv",
    "default_manifest_path",
    "config_hash",
    "git_revision",
    "library_versions",
]
