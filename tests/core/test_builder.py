"""Tests for the incremental ScheduleBuilder."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.builder import ScheduleBuilder
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


def _builder(wf, platform, itype="small"):
    return ScheduleBuilder(wf, platform, platform.itype(itype))


class TestPlacement:
    def test_entry_task_starts_at_zero(self, chain3, platform):
        b = _builder(chain3, platform)
        vm = b.new_vm()
        b.place("X", vm)
        assert b.task_start["X"] == 0.0
        assert b.task_finish["X"] == 1000.0

    def test_same_vm_chain_has_no_transfer(self, chain3, platform):
        b = _builder(chain3, platform)
        vm = b.new_vm()
        for t in ("X", "Y", "Z"):
            b.place(t, vm)
        assert b.task_start["Y"] == 1000.0
        assert b.task_start["Z"] == 3000.0
        assert b.makespan == 3500.0

    def test_cross_vm_chain_pays_latency(self, chain3, platform):
        b = _builder(chain3, platform)
        b.place("X", b.new_vm())
        b.place("Y", b.new_vm())
        # zero data but a control dependency still pays one latency
        assert b.task_start["Y"] == pytest.approx(1000.0 + 0.1)

    def test_cross_vm_data_transfer(self, diamond, platform):
        b = _builder(diamond, platform)
        b.place("A", b.new_vm())
        b.place("B", b.new_vm())
        # 0.5 GB over 1 Gb/s + 0.1 s latency
        assert b.task_start["B"] == pytest.approx(600.0 + 4.1)

    def test_vm_busy_serializes(self, diamond, platform):
        b = _builder(diamond, platform)
        vm = b.new_vm()
        b.place("A", vm)
        b.place("B", vm)
        b.place("C", vm)  # must wait for B on the same VM
        assert b.task_start["C"] == b.task_finish["B"]

    def test_medium_speedup_applied(self, chain3, platform):
        b = _builder(chain3, platform, "medium")
        b.place("X", b.new_vm())
        assert b.task_finish["X"] == pytest.approx(1000.0 / 1.6)

    def test_unscheduled_predecessor_rejected(self, chain3, platform):
        b = _builder(chain3, platform)
        with pytest.raises(SchedulingError, match="predecessor"):
            b.place("Y", b.new_vm())

    def test_double_placement_rejected(self, chain3, platform):
        b = _builder(chain3, platform)
        vm = b.new_vm()
        b.place("X", vm)
        with pytest.raises(SchedulingError, match="already"):
            b.place("X", vm)

    def test_foreign_vm_rejected(self, chain3, platform):
        b1 = _builder(chain3, platform)
        b2 = _builder(chain3, platform)
        alien = b2.new_vm()
        with pytest.raises(SchedulingError):
            b1.place("X", alien)


class TestQueries:
    def test_is_entry_and_levels(self, diamond, platform):
        b = _builder(diamond, platform)
        assert b.is_entry("A") and not b.is_entry("D")
        assert b.level_of("A") == 0 and b.level_of("D") == 2
        assert b.level_size("B") == 2 and b.level_size("A") == 1

    def test_busiest_vm(self, diamond, platform):
        b = _builder(diamond, platform)
        v1, v2 = b.new_vm(), b.new_vm()
        b.place("A", v1)  # 600 s
        b.place("B", v2)  # 1200 s
        assert b.busiest_vm() is v2

    def test_busiest_vm_tie_breaks_to_oldest(self, platform, fan7):
        b = _builder(fan7, platform)
        v1 = b.new_vm()
        b.place("root", v1)
        v2, v3 = b.new_vm(), b.new_vm()
        b.place("c0", v2)
        assert b.busiest_vm() is v2  # c0 (2400) > root (1800)

    def test_busiest_vm_none_when_empty(self, chain3, platform):
        assert _builder(chain3, platform).busiest_vm() is None

    def test_vm_of_largest_predecessor(self, diamond, platform):
        b = _builder(diamond, platform)
        va = b.new_vm()
        b.place("A", va)
        vb, vc = b.new_vm(), b.new_vm()
        b.place("B", vb)
        b.place("C", vc)
        assert b.vm_of_largest_predecessor("D") is vb  # B=1200 > C=900

    def test_vm_of_largest_predecessor_no_preds(self, diamond, platform):
        assert _builder(diamond, platform).vm_of_largest_predecessor("A") is None


class TestBtuFit:
    def test_empty_vm_fits_up_to_one_btu(self, platform):
        from repro.workflows.dag import Workflow
        from repro.workflows.task import Task

        wf = Workflow("w")
        wf.add_task(Task("short", 3600.0))
        wf.add_task(Task("long", 3700.0))
        wf.validate()
        b = ScheduleBuilder(wf, platform, platform.itype("small"))
        vm = b.new_vm()
        assert b.fits_in_btu("short", vm)
        assert not b.fits_in_btu("long", vm)

    def test_running_vm_paid_horizon(self, chain3, platform):
        b = _builder(chain3, platform)
        vm = b.new_vm()
        b.place("X", vm)  # uptime 1000 s, paid horizon 3600
        assert b.fits_in_btu("Y", vm)  # 1000 + 2000 = 3000 <= 3600
        b.place("Y", vm)  # uptime 3000
        assert b.fits_in_btu("Z", vm)  # 3000 + 500 = 3500 <= 3600
        b.place("Z", vm)

    def test_running_vm_overrun_detected(self, platform):
        from repro.workflows.dag import Workflow
        from repro.workflows.task import Task

        wf = Workflow("w")
        wf.add_task(Task("a", 3000.0))
        wf.add_task(Task("b", 700.0))
        wf.add_dependency("a", "b")
        wf.validate()
        b = ScheduleBuilder(wf, platform, platform.itype("small"))
        vm = b.new_vm()
        b.place("a", vm)  # uptime 3000, horizon 3600
        assert not b.fits_in_btu("b", vm)  # 3000 + 700 = 3700 > 3600

    def test_fit_accounts_for_wait_time(self, diamond, platform):
        """Waiting on a transfer burns BTU on the receiving VM."""
        b = _builder(diamond, platform)
        va = b.new_vm()
        b.place("A", va)  # 600 s on va
        vb = b.new_vm()
        b.place("B", vb)
        # C on va starts immediately after A: 600 + 900 = 1500 <= 3600
        assert b.fits_in_btu("C", va)


class TestBuild:
    def test_build_requires_all_tasks(self, chain3, platform):
        b = _builder(chain3, platform)
        b.place("X", b.new_vm())
        with pytest.raises(SchedulingError, match="unscheduled"):
            b.build()

    def test_build_drops_speculative_empty_vms(self, chain3, platform):
        b = _builder(chain3, platform)
        vm = b.new_vm()
        b.new_vm()  # never used
        for t in ("X", "Y", "Z"):
            b.place(t, vm)
        sched = b.build(algorithm="t", provisioning="p")
        assert sched.vm_count == 1
        assert sched.algorithm == "t" and sched.provisioning == "p"

    def test_build_matches_builder_makespan(self, diamond, platform):
        b = _builder(diamond, platform)
        for t in ("A", "B", "C", "D"):
            b.place(t, b.new_vm())
        sched = b.build()
        assert sched.makespan == pytest.approx(b.makespan)
        sched.validate()
