"""Pricing-sweep benchmark: the market-aware replay grid under load.

Times one seeded pricing sweep (the 5 provisioning policies x 4 price
scenarios x 2 boot regimes x 3 market seeds = 120 market-replayed
cells by default) and records wall time plus the headline market
outcomes (preemption volume, spot savings on the frontier) to
``BENCH_pricing.json`` at the repo root, appending one dated row to
``BENCH_history.jsonl`` — the same trajectory log the sweep, scaling
and service benchmarks feed.

``--check`` re-runs a reduced grid and fails when it is more than
``--tolerance`` (default 25%) slower than the committed baseline, with
an absolute slack so timer noise on sub-second cells cannot trip the
gate — the ``make bench-check`` regression hook.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pricing.py
    PYTHONPATH=src python benchmarks/bench_pricing.py --check
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.cloud.platform import CloudPlatform
from repro.experiments.pricing import run_pricing_sweep
from repro.workflows.generators import montage

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_pricing.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: minimum absolute slowdown (on top of the ratio tolerance) before the
#: check fails — the whole grid runs in well under a second, where timer
#: noise alone can exceed a 25% ratio.
ABS_SLACK_SECONDS = 0.15


def run_grid(tasks: int, seeds: int, jobs: int | None, backend: str | None):
    return run_pricing_sweep(
        platform=CloudPlatform.ec2(),
        workflow=montage(tasks),
        workflow_name="montage",
        seeds=seeds,
        jobs=jobs,
        backend=backend,
    )


def bench(args) -> dict:
    best, sweep = float("inf"), None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        sweep = run_grid(args.tasks, args.seeds, args.jobs, args.backend)
        best = min(best, time.perf_counter() - t0)
    assert sweep is not None and sweep.complete

    spot_cells = [c for c in sweep.cells if c.scenario != "on_demand"]
    preemptions = sum(c.stats.preemptions for c in spot_cells)
    rebids = sum(c.stats.rebids for c in spot_cells)
    # headline: cheapest frontier policy under the spike vs the same
    # policy menu's cheapest fixed-price rent (prebooted control cell)
    spike = sweep.mean_points("spot_spike", "prebooted")
    control = sweep.mean_points("on_demand", "prebooted")
    cheapest_spot = min(c for c, _ in spike.values())
    cheapest_od = min(c for c, _ in control.values())
    return {
        "benchmark": "pricing sweep (run_pricing_sweep)",
        "workload": {
            "workflow": f"montage({args.tasks})",
            "cells": len(sweep.cells),
            "seeds": args.seeds,
            "backend": args.backend or "serial",
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "repeats_best_of": args.repeats,
        "wall_seconds": round(best, 4),
        "cells_per_wall_second": round(len(sweep.cells) / best, 1),
        "market": {
            "preemptions": preemptions,
            "rebids": rebids,
            "cheapest_spot_spike_cost": round(cheapest_spot, 4),
            "cheapest_on_demand_cost": round(cheapest_od, 4),
            "spot_savings_fraction": round(
                1.0 - cheapest_spot / cheapest_od, 4
            ),
        },
    }


def check(baseline_path: Path, tolerance: float, args) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run without --check first")
        return 0
    base = json.loads(baseline_path.read_text())
    # re-run the committed grid shape once (cold) and compare walls
    t0 = time.perf_counter()
    sweep = run_grid(args.tasks, args.seeds, args.jobs, args.backend)
    seconds = time.perf_counter() - t0
    assert sweep.complete
    ratio = seconds / base["wall_seconds"]
    slack = seconds - base["wall_seconds"]
    regressed = ratio > 1 + tolerance and slack > ABS_SLACK_SECONDS
    status = "REGRESSED" if regressed else "ok"
    print(
        f"pricing sweep: {seconds:6.3f}s vs baseline "
        f"{base['wall_seconds']:6.3f}s  x{ratio:5.2f}  {status}"
    )
    if regressed:
        print(
            f"pricing sweep {ratio:.2f}x baseline (+{slack:.3f}s; "
            f"tolerance {1 + tolerance:.2f}x and >{ABS_SLACK_SECONDS}s)"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=50, help="montage size")
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of refreshing it",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed slowdown fraction for --check (default 0.25)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.out, args.tolerance, args)

    record = bench(args)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    market = record["market"]
    with HISTORY.open("a") as fh:
        fh.write(
            json.dumps(
                {
                    "date": datetime.date.today().isoformat(),
                    "benchmark": "pricing",
                    "wall_seconds": record["wall_seconds"],
                    "cells": record["workload"]["cells"],
                    "preemptions": market["preemptions"],
                    "spot_savings_fraction": market["spot_savings_fraction"],
                }
            )
            + "\n"
        )
    print(
        f"{record['workload']['cells']} cells in "
        f"{record['wall_seconds']:.3f}s wall "
        f"({record['cells_per_wall_second']:.0f} cells/s) | "
        f"{market['preemptions']} preemptions, {market['rebids']} rebids, "
        f"spot saves {market['spot_savings_fraction']:.0%} under the spike"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
