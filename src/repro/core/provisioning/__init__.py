"""The paper's five VM provisioning policies (Sect. III-A)."""

from repro.core.provisioning.base import (
    ProvisioningPolicy,
    provisioning_policy,
    PROVISIONING_POLICIES,
)
from repro.core.provisioning.one_vm_per_task import OneVMperTask
from repro.core.provisioning.start_par import StartParNotExceed, StartParExceed
from repro.core.provisioning.all_par import AllParNotExceed, AllParExceed
from repro.core.provisioning.reference import (
    REFERENCE_POLICIES,
    AllParExceedReference,
    AllParNotExceedReference,
    OneVMperTaskReference,
    StartParExceedReference,
    StartParNotExceedReference,
)

__all__ = [
    "ProvisioningPolicy",
    "provisioning_policy",
    "PROVISIONING_POLICIES",
    "OneVMperTask",
    "StartParNotExceed",
    "StartParExceed",
    "AllParNotExceed",
    "AllParExceed",
    # unregistered full-scan oracles for the equivalence tests
    "REFERENCE_POLICIES",
    "OneVMperTaskReference",
    "StartParNotExceedReference",
    "StartParExceedReference",
    "AllParNotExceedReference",
    "AllParExceedReference",
]
