"""Straightforward (pre-indexed) DAG passes, kept as the oracle.

These are the original networkx-walking implementations of the
:class:`~repro.workflows.dag.Workflow` structural passes, before they
were rewritten as single O(V+E) sweeps over cached traversal orders.
They re-walk the graph on every call, so they are quadratic when issued
per-query — exactly why they were replaced — but they are *obviously*
correct, and the kernel-equivalence property tests assert the optimized
passes return byte-identical results on random DAGs (see
``tests/core/test_kernel_equivalence.py`` and DESIGN.md §9).

Never call these from production code paths.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import networkx as nx

from repro.workflows.dag import Workflow


def level_of_reference(workflow: Workflow) -> Dict[str, int]:
    """Longest-path depth per task, walking the graph directly."""
    workflow.validate()
    graph = workflow._graph
    levels: Dict[str, int] = {}
    for tid in nx.topological_sort(graph):
        preds = list(graph.predecessors(tid))
        levels[tid] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def critical_path_reference(
    workflow: Workflow,
    exec_time: Callable[[str], float] | None = None,
    transfer_time: Callable[[str, str], float] | None = None,
) -> Tuple[List[str], float]:
    """Longest weighted path, walking the graph directly."""
    workflow.validate()
    graph = workflow._graph
    w = exec_time or (lambda tid: workflow.task(tid).work)
    c = transfer_time or (lambda u, v: 0.0)
    dist: Dict[str, float] = {}
    best_pred: Dict[str, str | None] = {}
    for tid in nx.topological_sort(graph):
        best, pred = 0.0, None
        for p in graph.predecessors(tid):
            cand = dist[p] + c(p, tid)
            if cand > best:
                best, pred = cand, p
        dist[tid] = best + w(tid)
        best_pred[tid] = pred
    end = max(dist, key=lambda t: dist[t])
    path = [end]
    while best_pred[path[-1]] is not None:
        path.append(best_pred[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path, dist[end]
