"""Time-ordered event queue.

Events fire in (time, insertion sequence) order, so simultaneous events
are processed deterministically in the order they were scheduled —
essential for bit-for-bit reproducible experiments.

The event record is a :class:`typing.NamedTuple` rather than the
historical frozen dataclass: heap sifts then compare plain tuples in C,
and because ``(time, seq)`` is unique per queue the comparison never
reaches the (incomparable) ``action`` field.  Pushing an event is one
tuple allocation instead of a dataclass ``__init__`` + ``__setattr__``
guard per field — the queue sits on the simulator's innermost loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, NamedTuple

from repro.errors import SimulationError


class ScheduledEvent(NamedTuple):
    """An action queued at a simulation time.

    Field order matters: tuple comparison orders by ``(time, seq)`` and
    — ``seq`` being unique — never reaches ``action``.
    """

    time: float
    seq: int
    action: Callable[[], None]
    label: str = ""


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` with stable ordering."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        if time < 0 or time != time:
            raise SimulationError(f"cannot schedule event at time {time}")
        ev = ScheduledEvent(time, next(self._counter), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> ScheduledEvent:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
