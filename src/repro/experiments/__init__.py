"""Experiment harness regenerating every figure and table of the
paper's evaluation (Sect. IV-V)."""

from repro.experiments.config import (
    StrategySpec,
    paper_strategies,
    paper_workflows,
    strategy,
)
from repro.experiments.scenarios import Scenario, paper_scenarios, scenario
from repro.experiments.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.experiments.result import ResultBase
from repro.experiments.runner import SweepResult, run_strategy, run_sweep
from repro.experiments import figures, tables
from repro.experiments.gantt import gantt
from repro.experiments.report import full_report
from repro.experiments.store import save_sweep, load_sweep, diff_sweeps
from repro.experiments.summary import summarize, most_stable, render_summary
from repro.experiments.replication import replicate, render_replication
from repro.experiments.pareto_front import pareto_front, pareto_fronts, render_pareto
from repro.experiments.export import export_all
from repro.experiments.html_report import html_report, write_html_report

__all__ = [
    "StrategySpec",
    "paper_strategies",
    "paper_workflows",
    "strategy",
    "Scenario",
    "paper_scenarios",
    "scenario",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "ResultBase",
    "SweepResult",
    "run_strategy",
    "run_sweep",
    "figures",
    "tables",
    "gantt",
    "full_report",
    "save_sweep",
    "load_sweep",
    "diff_sweeps",
    "summarize",
    "most_stable",
    "render_summary",
    "replicate",
    "render_replication",
    "pareto_front",
    "pareto_fronts",
    "render_pareto",
    "export_all",
    "html_report",
    "write_html_report",
]
