"""Bidding-aware recovery: what to do when the spot market reclaims a VM.

The paper-era policies of :mod:`repro.core.recovery` treat every VM
death the same; under a spot market the *purchase option* of the
replacement is itself a decision.  Two composable policies cover the
bidding story:

* :class:`RebidHigher` — resubmit on a fresh spot VM with the bid
  raised by a multiplicative step, falling back to on-demand once the
  escalated bid would exceed ``max_bid`` (paying above list price to
  keep losing capacity is strictly worse than on-demand);
* :class:`FallbackOnDemand` — give up on spot after the first
  reclamation and resubmit on-demand (the conservative bracket).

Non-preemption failures (task transients, random crashes) are delegated
to a wrapped *base* policy from the core registry, so the bidding axis
composes with retry/resubmit/replan rather than replacing them.  Both
policies optionally checkpoint on the reclamation warning
(``checkpoint_on_warning``): work done before the warning is preserved
and the replacement attempt runs only the remainder plus
``restart_cost_seconds`` of restore overhead.

Importing this module registers ``"rebid"`` and ``"fallback"`` in
:data:`~repro.core.recovery.RECOVERY_POLICIES`;
:func:`~repro.core.recovery.recovery_policy` triggers that import
lazily, so the names resolve everywhere without the core layer
depending on the market package at import time.
"""

from __future__ import annotations

import math

from repro.core.recovery import (
    RECOVERY_POLICIES,
    FailureEvent,
    RecoveryAction,
    RecoveryPolicy,
    recovery_policy,
)
from repro.errors import SchedulingError
from repro.market.spot import ON_DEMAND, PurchaseOption, spot


class _MarketPolicy(RecoveryPolicy):
    """Shared plumbing: wrap a base policy, mirror its queue semantics."""

    def __init__(
        self,
        base: "str | RecoveryPolicy | None" = "resubmit",
        max_attempts: int = 8,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 600.0,
        checkpoint_on_warning: bool = False,
        restart_cost_seconds: float = 0.0,
    ) -> None:
        super().__init__(max_attempts, backoff_base, backoff_factor, backoff_cap)
        if restart_cost_seconds < 0:
            raise SchedulingError("restart_cost_seconds must be >= 0")
        self.base = recovery_policy(base)
        # crashed-VM queue handling and retry affinity follow the base
        self.queue_strategy = self.base.queue_strategy
        self.prefer_same_vm = self.base.prefer_same_vm
        self.checkpoint_on_warning = checkpoint_on_warning
        self.restart_cost_seconds = restart_cost_seconds

    def on_preemption(self, failure: FailureEvent) -> RecoveryAction:
        raise NotImplementedError

    def on_task_failure(self, failure: FailureEvent) -> RecoveryAction:
        if failure.attempt >= self.max_attempts:
            return RecoveryAction("abort")
        if failure.reason == "spot_preempt":
            return self.on_preemption(failure)
        return self.base.on_task_failure(failure)


class RebidHigher(_MarketPolicy):
    """Resubmit with the bid raised by ``step`` ×, capped at ``max_bid``.

    A preempted spot VM's tasks come back as spot requests bidding
    ``prior bid × step`` (tag ``rebid.higher``); once that would exceed
    ``max_bid`` — by default the list price — the policy resubmits
    on-demand instead (tag ``rebid.fallback``).
    """

    name = "rebid"

    def __init__(
        self,
        base: "str | RecoveryPolicy | None" = "resubmit",
        step: float = 1.5,
        max_bid: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(base, **kwargs)
        if step <= 1.0:
            raise SchedulingError(f"rebid step must be > 1, got {step}")
        if max_bid <= 0:
            raise SchedulingError(f"max_bid must be > 0, got {max_bid}")
        self.step = step
        self.max_bid = max_bid

    def on_preemption(self, failure: FailureEvent) -> RecoveryAction:
        prior = failure.purchase
        delay = self.backoff(failure.attempt)
        if not isinstance(prior, PurchaseOption) or not prior.is_spot:
            # nothing to escalate — buy safety outright
            return RecoveryAction("resubmit", delay, ON_DEMAND, "rebid.fallback")
        bid = prior.bid_multiplier * self.step
        if bid > self.max_bid or math.isinf(bid):
            return RecoveryAction("resubmit", delay, ON_DEMAND, "rebid.fallback")
        return RecoveryAction("resubmit", delay, spot(bid), "rebid.higher")


class FallbackOnDemand(_MarketPolicy):
    """Resubmit every preempted task on-demand — spot never twice."""

    name = "fallback"

    def on_preemption(self, failure: FailureEvent) -> RecoveryAction:
        delay = self.backoff(failure.attempt)
        return RecoveryAction("resubmit", delay, ON_DEMAND, "rebid.fallback")


RECOVERY_POLICIES.setdefault(RebidHigher.name, RebidHigher)
RECOVERY_POLICIES.setdefault(FallbackOnDemand.name, FallbackOnDemand)
