"""Shared fixtures: the EC2 platform, the paper's workflows, and small
hand-built DAGs with known-by-construction schedules — plus the
:func:`assert_schedule_invariants` checker every execution-path test
can apply to a simulated result."""

from __future__ import annotations

import pytest

from repro.cloud.platform import CloudPlatform
from repro.workflows.dag import Workflow
from repro.workflows.generators import cstem, mapreduce, montage, sequential
from repro.workflows.task import Task

_TOL = 1e-6


def assert_schedule_invariants(result, workflow=None, complete=True, tol=_TOL):
    """Assert the structural invariants of one simulated execution.

    Works on any result exposing ``task_start``/``task_finish`` dicts —
    both :class:`repro.simulator.trace.SimulationResult` (task→VM read
    from the event stream) and :class:`repro.simulator.online.
    OnlineResult` (read from ``task_vm``).  Checks:

    * every finished task started, and ``finish >= start``;
    * no VM runs two tasks at once (realized intervals on one VM are
      disjoint up to *tol*);
    * with *workflow*: every task starts no earlier than each
      predecessor's finish, and (when *complete*, the default) every
      task of the DAG completed.  Pass ``complete=False`` for
      fault-injected runs without recovery, where tasks may die with
      their VM and never rerun.
    """
    starts = dict(result.task_start)
    finishes = dict(result.task_finish)
    for tid, fin in finishes.items():
        assert tid in starts, f"task {tid!r} finished without starting"
        assert fin >= starts[tid] - tol, (
            f"task {tid!r} finished at {fin} before its start {starts[tid]}"
        )
    task_vm = getattr(result, "task_vm", None)
    if task_vm is not None:
        placement = {tid: f"vm{vid}" for tid, vid in task_vm.items()}
    else:
        placement = {
            ev.task_id: ev.vm
            for ev in result.events
            if ev.kind == "task_start" and ev.vm
        }
    by_vm = {}
    for tid, fin in finishes.items():
        vm = placement.get(tid)
        assert vm is not None, f"task {tid!r} has no VM placement"
        by_vm.setdefault(vm, []).append((starts[tid], fin, tid))
    for vm, intervals in by_vm.items():
        intervals.sort()
        for (_, f1, t1), (s2, _, t2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - tol, (
                f"{vm} runs {t2!r} (start {s2}) before {t1!r} ends ({f1})"
            )
    if workflow is not None:
        if complete:
            missing = [t for t in workflow.task_ids if t not in finishes]
            assert not missing, f"tasks never completed: {missing}"
        for tid in workflow.task_ids:
            if tid not in starts:
                continue
            for pred in workflow.predecessors(tid):
                assert pred in finishes, (
                    f"task {tid!r} ran but predecessor {pred!r} never finished"
                )
                assert starts[tid] >= finishes[pred] - tol, (
                    f"task {tid!r} starts at {starts[tid]} before "
                    f"predecessor {pred!r} finishes at {finishes[pred]}"
                )


@pytest.fixture(scope="session")
def platform() -> CloudPlatform:
    return CloudPlatform.ec2()


@pytest.fixture
def diamond() -> Workflow:
    """A -> (B, C) -> D with distinct runtimes and data volumes."""
    wf = Workflow("diamond")
    wf.add_task(Task("A", 600.0))
    wf.add_task(Task("B", 1200.0))
    wf.add_task(Task("C", 900.0))
    wf.add_task(Task("D", 300.0))
    wf.add_dependency("A", "B", 0.5)
    wf.add_dependency("A", "C", 0.25)
    wf.add_dependency("B", "D", 1.0)
    wf.add_dependency("C", "D", 0.125)
    return wf.validate()


@pytest.fixture
def chain3() -> Workflow:
    """X -> Y -> Z, zero data (pure control dependencies)."""
    wf = Workflow("chain3")
    wf.add_task(Task("X", 1000.0))
    wf.add_task(Task("Y", 2000.0))
    wf.add_task(Task("Z", 500.0))
    wf.add_dependency("X", "Y")
    wf.add_dependency("Y", "Z")
    return wf.validate()


@pytest.fixture
def fan7() -> Workflow:
    """The Fig. 1 shape: one entry task and six children."""
    wf = Workflow("fan7")
    wf.add_task(Task("root", 1800.0))
    for i, work in enumerate((2400.0, 2000.0, 1600.0, 1200.0, 900.0, 600.0)):
        wf.add_task(Task(f"c{i}", work))
        wf.add_dependency("root", f"c{i}", 0.01)
    return wf.validate()


@pytest.fixture(
    params=["montage", "cstem", "mapreduce", "sequential"],
    ids=["montage", "cstem", "mapreduce", "sequential"],
)
def paper_workflow(request) -> Workflow:
    """Parametrized over the paper's four shapes."""
    return {
        "montage": montage,
        "cstem": cstem,
        "mapreduce": mapreduce,
        "sequential": sequential,
    }[request.param]()
