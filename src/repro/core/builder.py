"""Incremental schedule construction.

A :class:`ScheduleBuilder` is the shared workbench of every allocation
algorithm + provisioning policy pair: the allocation strategy decides
*task order*, the provisioning policy decides *which VM* (existing or
new) each task lands on, and the builder maintains the resulting
estimated start/finish times, per-VM accumulated execution time and BTU
occupancy that both sides query.  Because scheduling is static and task
times deterministic, the builder's estimates are exact — a property the
test suite checks against the discrete-event simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.cloud.vm import VM
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import current as current_metrics
from repro.workflows.dag import Workflow


@dataclass
class BuilderVM:
    """A VM being filled in during scheduling."""

    id: int
    itype: InstanceType
    region: Region
    #: task ids in execution order
    order: List[str] = field(default_factory=list)
    #: estimated [start, finish) per hosted task
    timing: Dict[str, tuple] = field(default_factory=dict)
    #: sum of execution durations — "the VM with the largest execution
    #: time" of the StartPar policies
    busy_seconds: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.order

    @property
    def start_time(self) -> float:
        if self.empty:
            raise SchedulingError(f"vm{self.id} has no placements yet")
        return self.timing[self.order[0]][0]

    @property
    def ready_time(self) -> float:
        """When the VM becomes free (0 for an empty VM)."""
        if self.empty:
            return 0.0
        return self.timing[self.order[-1]][1]

    @property
    def uptime_seconds(self) -> float:
        if self.empty:
            return 0.0
        return self.ready_time - self.start_time


class ScheduleBuilder:
    """Mutable scheduling state for one (workflow, platform, region) run."""

    def __init__(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        default_itype: InstanceType,
        region: Region | None = None,
        region_chooser=None,
        metrics: MetricsRegistry | None = None,
        fleet=None,
    ) -> None:
        workflow.validate()
        self.workflow = workflow
        self.platform = platform
        self.default_itype = default_itype
        self.region = region or platform.default_region
        #: optional rental ledger (duck-typed — anything exposing
        #: ``on_builder_rent(builder, vm)``, in practice a
        #: :class:`repro.service.fleet.FleetManager`); the builder's VM
        #: records stay local, only rental *accounting* is shared, so
        #: the service can attribute static planning work per tenant
        self.fleet = fleet
        #: metrics sink: explicit kwarg, else the ambient registry (see
        #: :func:`repro.obs.metrics.current`); ``None`` keeps every hot
        #: path down to a single ``is not None`` branch
        self.metrics = metrics if metrics is not None else current_metrics()
        #: optional ``(task_id, builder) -> Region | None`` hook deciding
        #: where a *new* VM rented for a task lives (data locality);
        #: ``None`` from the hook falls back to the builder region
        self.region_chooser = region_chooser
        self._active_task: str | None = None
        self.vms: List[BuilderVM] = []
        self.task_vm: Dict[str, BuilderVM] = {}
        self.task_start: Dict[str, float] = {}
        self.task_finish: Dict[str, float] = {}
        self._levels = workflow.level_of()
        self._level_sizes: Dict[int, int] = {}
        for lvl in self._levels.values():
            self._level_sizes[lvl] = self._level_sizes.get(lvl, 0) + 1
        # --- hot-path structures (see DESIGN.md §9) ---------------------
        #: uncopied adjacency/edge maps — read-only
        self._pred_map = workflow.pred_map()
        self._edge_gb = workflow.edge_data_map()
        #: per-task data-ready memo: task -> (rows, pred vm ids, by-key memo)
        self._pred_cache: Dict[str, Tuple[list, FrozenSet[int], dict]] = {}
        # Incremental VM indexes, built lazily by ``_ensure_index`` on
        # the first indexed query so external code (the replan path)
        # may seed builder state directly beforehand:
        #: lazy max-heap of (-busy_seconds, vm id, stamp); stale entries
        #: (stamp mismatch) are dropped on pop
        self._busy_heap: Optional[list] = None
        #: per-VM entry version, bumped on every busy_seconds change
        self._busy_stamp: Dict[int, int] = {}
        #: per-VM set of DAG levels it hosts (AllPar* exclusion in O(1))
        self._vm_levels: Dict[int, Set[int]] = {}
        #: (level, heap) candidate pool for the level currently being
        #: packed by a level-driven policy; None until first use
        self._level_pool: Optional[Tuple[int, list]] = None
        #: ghosts handed out by :meth:`adopt_ghost` (ids go negative)
        self._ghost_count = 0

    # ------------------------------------------------------------------
    # queries used by provisioning policies
    # ------------------------------------------------------------------
    def level_of(self, task_id: str) -> int:
        return self._levels[task_id]

    def level_size(self, task_id: str) -> int:
        """Number of tasks sharing *task_id*'s level (its parallelism)."""
        return self._level_sizes[self._levels[task_id]]

    def is_entry(self, task_id: str) -> bool:
        return not self.workflow.predecessors(task_id)

    def exec_time(self, task_id: str, itype: InstanceType | None = None) -> float:
        """Estimated execution time of a task on *itype* (VM's type when
        placed, builder default otherwise)."""
        if itype is None:
            vm = self.task_vm.get(task_id)
            itype = vm.itype if vm is not None else self.default_itype
        return self.platform.runtime(self.workflow.task(task_id), itype)

    def busiest_vm(self, candidates: List[BuilderVM] | None = None) -> Optional[BuilderVM]:
        """The VM with the largest accumulated execution time.

        Deterministic tie-break on VM id (earliest rented wins).
        """
        pool = self.vms if candidates is None else candidates
        pool = [vm for vm in pool if not vm.empty]
        if not pool:
            return None
        return max(pool, key=lambda vm: (vm.busy_seconds, -vm.id))

    def vm_of_largest_predecessor(self, task_id: str) -> Optional[BuilderVM]:
        """VM hosting the predecessor with the longest execution time
        (the AllPar* rule for sequential tasks)."""
        preds = [p for p in self.workflow.predecessors(task_id) if p in self.task_vm]
        if not preds:
            return None
        largest = max(preds, key=lambda p: (self.task_finish[p] - self.task_start[p], p))
        return self.task_vm[largest]

    def _pred_info(self, task_id: str) -> Tuple[list, FrozenSet[int], dict]:
        """Per-task predecessor snapshot backing ``earliest_start``.

        Predecessor placements are append-only (a placed task's finish
        never changes), so ``(finish, data_gb, host vm)`` rows are fixed
        the moment every predecessor is placed; they are computed once
        per task and dropped when the task itself is placed.
        """
        info = self._pred_cache.get(task_id)
        if info is None:
            finish = self.task_finish
            task_vm = self.task_vm
            edge_gb = self._edge_gb
            rows = []
            for pred in self._pred_map[task_id]:
                if pred not in finish:
                    raise SchedulingError(
                        f"cannot place {task_id!r}: predecessor {pred!r} unscheduled "
                        "(allocation order is not topological)"
                    )
                rows.append((finish[pred], edge_gb[pred, task_id], task_vm[pred]))
            info = (rows, frozenset(id(row[2]) for row in rows), {})
            self._pred_cache[task_id] = info
        return info

    def _data_ready(self, task_id: str, vm: BuilderVM) -> float:
        """Latest ``predecessor finish + transfer`` onto *vm*.

        For a candidate VM hosting none of the predecessors the value is
        a pure function of its (flavor, region) — memoized per task, so
        scanning many same-flavor candidates costs O(1) each after the
        first.  A VM hosting a predecessor (``same_vm`` transfer) is
        computed exactly.  ``max`` over identical operands makes both
        paths byte-identical to the plain per-predecessor loop.
        """
        metrics = self.metrics
        rows, pred_vm_ids, memo = self._pred_info(task_id)
        if not rows:
            return 0.0
        if id(vm) in pred_vm_ids:
            transfer = self.platform.transfer_time
            best = 0.0
            for fin, gb, pvm in rows:
                cand = fin + transfer(
                    gb,
                    pvm.itype,
                    vm.itype,
                    same_vm=pvm is vm,
                    src_region=pvm.region,
                    dst_region=vm.region,
                )
                if cand > best:
                    best = cand
            return best
        key = (vm.itype.name, vm.region.name)
        if key in memo:
            if metrics is not None:
                metrics.inc("builder.data_ready_memo_hits")
            return memo[key]
        if metrics is not None:
            metrics.inc("builder.data_ready_memo_misses")
        transfer = self.platform.transfer_time
        best = 0.0
        for fin, gb, pvm in rows:
            cand = fin + transfer(
                gb,
                pvm.itype,
                vm.itype,
                same_vm=False,
                src_region=pvm.region,
                dst_region=vm.region,
            )
            if cand > best:
                best = cand
        memo[key] = best
        return best

    def earliest_start(self, task_id: str, vm: BuilderVM) -> float:
        """Estimated start of *task_id* if placed next on *vm*: VM free
        time vs. latest predecessor finish + data transfer."""
        ready = vm.ready_time
        data_ready = self._data_ready(task_id, vm)
        if data_ready > ready:
            ready = data_ready
        if vm.empty and not self.platform.prebooted:
            # cold start: the VM is requested when the task becomes
            # ready and boots before it can execute anything
            ready += self.platform.boot_seconds
        return ready

    def paid_horizon(self, vm: BuilderVM) -> float:
        """Absolute time at which *vm* is released if no further task is
        placed on it: the end of its last started BTU.

        Idle VMs are deprovisioned at their BTU boundary (the standard
        IaaS practice this literature assumes), so a task can only
        *reuse* a VM if it can start before this horizon.
        """
        if vm.empty:
            return float("inf")
        billing = self.platform.billing
        return vm.start_time + billing.paid_seconds(vm.uptime_seconds)

    def is_reusable(self, task_id: str, vm: BuilderVM) -> bool:
        """Can *task_id* still catch *vm* before it is released?"""
        if vm.empty:
            return True
        return self.earliest_start(task_id, vm) <= self.paid_horizon(vm) + 1e-9

    def fits_in_btu(self, task_id: str, vm: BuilderVM) -> bool:
        """Would *task_id*, placed next on *vm*, finish within the BTUs
        the VM has already started to pay?

        On an **empty** VM the question is whether the task fits one
        fresh BTU.  On a running VM the candidate's estimated finish must
        not cross the VM's current paid horizon
        (``start + btus(uptime) * BTU``); waiting time on the VM counts
        against the BTU exactly as in the paper's Fig. 1.
        """
        billing = self.platform.billing
        duration = self.exec_time(task_id, vm.itype)
        if vm.empty:
            return duration <= billing.btu_seconds + 1e-9
        finish = self.earliest_start(task_id, vm) + duration
        paid_horizon = vm.start_time + billing.paid_seconds(vm.uptime_seconds)
        return finish <= paid_horizon + 1e-9

    # ------------------------------------------------------------------
    # indexed queries (the O(log V)-per-placement kernels, DESIGN.md §9)
    # ------------------------------------------------------------------
    def _ensure_index(self) -> None:
        """Build the VM indexes from current state on first indexed use.

        Lazy so external code that seeds builder state directly (the
        replan path in :mod:`repro.simulator.executor`) is indexed
        correctly, as long as such seeding happens before the first
        indexed query — which it does, since policies only run after.
        """
        if self._busy_heap is not None:
            return
        stamps: Dict[int, int] = {}
        vm_levels: Dict[int, Set[int]] = {}
        heap: list = []
        levels = self._levels
        for vm in self.vms:
            stamps[vm.id] = 0
            if vm.empty:
                continue
            vm_levels[vm.id] = {levels[t] for t in vm.order}
            heap.append((-vm.busy_seconds, vm.id, 0))
        heapq.heapify(heap)
        self._busy_stamp = stamps
        self._vm_levels = vm_levels
        self._busy_heap = heap

    def _level_pool_for(self, lvl: int) -> list:
        """Busy-ordered heap of non-empty VMs not hosting level *lvl*.

        Rebuilt (O(V)) when the queried level changes; level-driven
        policies place whole levels contiguously, so each level pays one
        rebuild and then O(log V) amortized per query.  ``place``
        maintains the pool incrementally while its level stays current.
        """
        self._ensure_index()
        pool = self._level_pool
        if pool is not None and pool[0] == lvl:
            return pool[1]
        stamps = self._busy_stamp
        vm_levels = self._vm_levels
        heap = []
        for vm in self.vms:
            if vm.empty or lvl in vm_levels.get(vm.id, ()):
                continue
            heap.append((-vm.busy_seconds, vm.id, stamps[vm.id]))
        heapq.heapify(heap)
        self._level_pool = (lvl, heap)
        return heap

    def best_level_candidate(
        self, task_id: str, require_fit: bool = False
    ) -> Optional[BuilderVM]:
        """Largest-accumulated-execution-time VM that can host *task_id*
        under the AllPar* rules: not hosting a task of its level, still
        alive when the task could start, and (with *require_fit*) within
        its paid BTUs.  Equivalent to the full candidate scan's
        ``max(candidates, key=(busy_seconds, -id))`` — identical result,
        heap-ordered iteration instead of an O(V·tasks) rescan.
        """
        lvl = self._levels[task_id]
        heap = self._level_pool_for(lvl)
        stamps = self._busy_stamp
        vm_levels = self._vm_levels
        vms = self.vms
        deferred: list = []
        chosen: Optional[BuilderVM] = None
        while heap:
            entry = heapq.heappop(heap)
            vid = entry[1]
            vm = vms[vid]
            if entry[2] != stamps.get(vid) or vm.empty or lvl in vm_levels.get(vid, ()):
                continue  # stale entry or VM claimed by this level — drop
            if self.is_reusable(task_id, vm) and (
                not require_fit or self.fits_in_btu(task_id, vm)
            ):
                chosen = vm  # entry consumed: the caller places here,
                break  # after which the VM hosts this level anyway
            # rejection was task-specific (data-ready/fit); keep the VM
            # as a candidate for the level's remaining tasks
            deferred.append(entry)
        for entry in deferred:
            heapq.heappush(heap, entry)
        return chosen

    def qualifies_for_level(
        self, task_id: str, vm: BuilderVM, require_fit: bool = False
    ) -> bool:
        """Would *vm* be in the AllPar* candidate scan for *task_id*?
        (The O(1)-ish membership test behind the largest-predecessor
        fast path.)"""
        if vm.empty:
            return False  # covers ghost VMs of the replan path too
        vid = vm.id
        if vid < 0 or vid >= len(self.vms) or self.vms[vid] is not vm:
            return False  # not a VM of this builder
        self._ensure_index()
        if self._levels[task_id] in self._vm_levels.get(vid, ()):
            return False
        if not self.is_reusable(task_id, vm):
            return False
        return not require_fit or self.fits_in_btu(task_id, vm)

    def busiest_reusable(self, task_id: str) -> Optional[BuilderVM]:
        """The StartPar* target: the VM with the largest accumulated
        execution time among those still alive when *task_id* could
        start.  Identical to ``busiest_vm([alive candidates])`` over the
        full scan, served from the busy-seconds heap.
        """
        self._ensure_index()
        heap = self._busy_heap
        stamps = self._busy_stamp
        vms = self.vms
        deferred: list = []
        chosen: Optional[BuilderVM] = None
        while heap:
            entry = heapq.heappop(heap)
            vid = entry[1]
            vm = vms[vid]
            if entry[2] != stamps.get(vid) or vm.empty:
                continue  # stale — drop for good
            deferred.append(entry)  # current entry: always keep
            if self.is_reusable(task_id, vm):
                chosen = vm
                break
        for entry in deferred:
            heapq.heappush(heap, entry)
        return chosen

    def busiest_fitting(
        self, task_id: str, exclude: Optional[BuilderVM] = None
    ) -> Optional[BuilderVM]:
        """Busiest alive VM (skipping *exclude*) whose remaining paid
        BTUs absorb *task_id* — the StartParNotExceed ``try_all_vms``
        scan, in the same decreasing (busy_seconds, -id) order.
        """
        self._ensure_index()
        heap = self._busy_heap
        stamps = self._busy_stamp
        vms = self.vms
        deferred: list = []
        chosen: Optional[BuilderVM] = None
        while heap:
            entry = heapq.heappop(heap)
            vid = entry[1]
            vm = vms[vid]
            if entry[2] != stamps.get(vid) or vm.empty:
                continue
            deferred.append(entry)
            if vm is exclude:
                continue
            if self.is_reusable(task_id, vm) and self.fits_in_btu(task_id, vm):
                chosen = vm
                break
        for entry in deferred:
            heapq.heappush(heap, entry)
        return chosen

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def begin_task(self, task_id: str) -> None:
        """Mark the task currently being placed, so region choosers can
        see which task a ``new_vm`` rental is for."""
        self._active_task = task_id

    def new_vm(self, itype: InstanceType | None = None, region: Region | None = None) -> BuilderVM:
        if region is None and self.region_chooser is not None and self._active_task:
            region = self.region_chooser(self._active_task, self)
        vm = BuilderVM(
            id=len(self.vms),
            itype=itype or self.default_itype,
            region=region or self.region,
        )
        self.vms.append(vm)
        if self._busy_heap is not None:
            self._busy_stamp[vm.id] = 0
            # empty VMs enter the busy/level structures on first placement
        if self.metrics is not None:
            self.metrics.inc("builder.vms_rented")
        if self.fleet is not None:
            self.fleet.on_builder_rent(self, vm)
        return vm

    def adopt_vm(
        self,
        itype: InstanceType | None = None,
        region: Region | None = None,
        placements=(),
    ) -> BuilderVM:
        """Append a VM carrying already-realized history.

        The replan path seeds a fresh builder with the surviving runtime
        fleet before handing the unfinished sub-DAG to a provisioning
        policy; *placements* rows are ``(task_id, start, finish)`` frozen
        at their realized times.  Must run before the first indexed
        query — the lazy indexes snapshot builder state when built.
        """
        if self._busy_heap is not None:
            raise SchedulingError("adopt_vm after indexed queries began")
        vm = BuilderVM(
            id=len(self.vms),
            itype=itype or self.default_itype,
            region=region or self.region,
        )
        for tid, start, finish in placements:
            vm.order.append(tid)
            vm.timing[tid] = (start, finish)
            vm.busy_seconds += finish - start
            self.task_vm[tid] = vm
            self.task_start[tid] = start
            self.task_finish[tid] = finish
        self.vms.append(vm)
        return vm

    def adopt_ghost(
        self,
        itype: InstanceType,
        region: Region,
        placements=(),
    ) -> BuilderVM:
        """Record executions whose VM is gone (crashed): the policy can
        never place new work there — the ghost stays off ``vms`` and
        keeps a negative id — but transfer estimates for re-placed
        successors still need the origin's flavor and region."""
        self._ghost_count += 1
        ghost = BuilderVM(id=-self._ghost_count, itype=itype, region=region)
        for tid, start, finish in placements:
            self.task_vm[tid] = ghost
            self.task_start[tid] = start
            self.task_finish[tid] = finish
        return ghost

    def place(self, task_id: str, vm: BuilderVM) -> None:
        """Append *task_id* to *vm*'s execution order and fix its times."""
        if task_id in self.task_vm:
            raise SchedulingError(f"task {task_id!r} already placed")
        if vm.id >= len(self.vms) or vm is not self.vms[vm.id]:
            raise SchedulingError(f"vm{vm.id} does not belong to this builder")
        start = self.earliest_start(task_id, vm)
        duration = self.exec_time(task_id, vm.itype)
        vm.order.append(task_id)
        vm.timing[task_id] = (start, start + duration)
        vm.busy_seconds += duration
        self.task_vm[task_id] = vm
        self.task_start[task_id] = start
        self.task_finish[task_id] = start + duration
        # the task is placed: its data-ready memo is dead weight now
        self._pred_cache.pop(task_id, None)
        if self.metrics is not None:
            self.metrics.inc("builder.tasks_placed")
        if self._busy_heap is not None:
            stamp = self._busy_stamp.get(vm.id, 0) + 1
            self._busy_stamp[vm.id] = stamp
            hosted = self._vm_levels.setdefault(vm.id, set())
            hosted.add(self._levels[task_id])
            entry = (-vm.busy_seconds, vm.id, stamp)
            heapq.heappush(self._busy_heap, entry)
            pool = self._level_pool
            if pool is not None and pool[0] not in hosted:
                heapq.heappush(pool[1], entry)

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.task_finish:
            return 0.0
        return max(self.task_finish.values())

    def build(self, algorithm: str = "", provisioning: str = "") -> Schedule:
        """Freeze the builder into an immutable :class:`Schedule`."""
        unplaced = [t for t in self.workflow.task_ids if t not in self.task_vm]
        if unplaced:
            raise SchedulingError(f"unscheduled tasks remain: {unplaced}")
        vms: List[VM] = []
        for bvm in self.vms:
            if bvm.empty:
                continue  # a policy may have speculated a VM it never used
            vm = VM(
                id=len(vms),
                itype=bvm.itype,
                region=bvm.region,
                boot_seconds=self.platform.boot_seconds,
            )
            for tid in bvm.order:
                start, finish = bvm.timing[tid]
                vm.place(tid, start, finish - start)
            vms.append(vm)
        return Schedule(
            workflow=self.workflow,
            platform=self.platform,
            vms=vms,
            algorithm=algorithm,
            provisioning=provisioning,
        )
