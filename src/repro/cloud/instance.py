"""EC2 on-demand instance catalog (paper Sect. IV-A).

Four types — small, medium, large, xlarge — with 1/2/4/8 cores, Stata/MP
speed-ups 1 / 1.6 / 2.1 / 2.7 over the small baseline, and 1 Gb links
for the two small types vs 10 Gb for the two large ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import PlatformError


@dataclass(frozen=True, order=True)
class InstanceType:
    """An IaaS instance flavor.

    Ordering is by *speedup* (ties broken by the other fields), so
    ``sorted(INSTANCE_TYPES.values())`` goes slowest to fastest —
    the upgrade ladder CPA-Eager/Gain/AllPar1LnSDyn climb.
    """

    speedup: float
    cores: int
    name: str
    short: str
    link_gbps: float

    def __post_init__(self) -> None:
        if self.speedup <= 0 or self.cores <= 0 or self.link_gbps <= 0:
            raise PlatformError(f"invalid instance type parameters: {self}")

    def runtime(self, reference_seconds: float) -> float:
        """Execution time of a task whose small-instance time is given."""
        if reference_seconds < 0:
            raise PlatformError("reference runtime must be >= 0")
        return reference_seconds / self.speedup


SMALL = InstanceType(speedup=1.0, cores=1, name="small", short="s", link_gbps=1.0)
MEDIUM = InstanceType(speedup=1.6, cores=2, name="medium", short="m", link_gbps=1.0)
LARGE = InstanceType(speedup=2.1, cores=4, name="large", short="l", link_gbps=10.0)
XLARGE = InstanceType(speedup=2.7, cores=8, name="xlarge", short="xl", link_gbps=10.0)

#: canonical catalog, slowest first
INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t for t in (SMALL, MEDIUM, LARGE, XLARGE)
}
_BY_SHORT = {t.short: t for t in INSTANCE_TYPES.values()}


def instance_type(name: str) -> InstanceType:
    """Look up an instance type by full (``"large"``) or short (``"l"``)
    name; raises :class:`PlatformError` on unknown names."""
    key = name.lower()
    if key in INSTANCE_TYPES:
        return INSTANCE_TYPES[key]
    if key in _BY_SHORT:
        return _BY_SHORT[key]
    raise PlatformError(
        f"unknown instance type {name!r}; known: {sorted(INSTANCE_TYPES)}"
    )


def value_ratio(itype: InstanceType) -> float:
    """Speed-up per unit of price multiple — the paper's Sect.-V "benefit
    of renting" figure: small 1.0, medium 0.8, large 0.525, xlarge
    0.3375.  (The paper prints 0.675 for large, which is the *xlarge*
    speed-up over the *large* price — a slip its own Table IV
    contradicts; see EXPERIMENTS.md.)

    Under EC2's cost-per-core pricing the price multiple equals the core
    count, so this is ``speedup / cores``.
    """
    return itype.speedup / itype.cores


def faster_types(itype: InstanceType) -> List[InstanceType]:
    """Catalog types strictly faster than *itype*, slowest first."""
    return [t for t in sorted(INSTANCE_TYPES.values()) if t.speedup > itype.speedup]


def next_faster(itype: InstanceType) -> InstanceType | None:
    """The next rung of the upgrade ladder, or ``None`` at the top."""
    ladder = faster_types(itype)
    return ladder[0] if ladder else None
