#!/usr/bin/env python
"""The paper's Figure 1, recreated live: each provisioning policy's
schedule of the CSTEM sub-workflow (one entry task, six children) drawn
as an ASCII Gantt chart — busy time, paid idle, and BTU boundaries.

Run:  python examples/gantt_walkthrough.py
"""

from repro import AllParScheduler, CloudPlatform, HeftScheduler
from repro.experiments.figures import figure1_subworkflow
from repro.experiments.gantt import gantt


def main() -> None:
    platform = CloudPlatform.ec2()
    workflow = figure1_subworkflow()
    print(
        f"workflow: {len(workflow)} tasks "
        f"(entry {workflow.entry_tasks()[0]!r} + 6 parallel children), "
        f"BTU = {platform.btu_seconds:.0f} s\n"
    )

    schedulers = {
        "OneVMperTask": HeftScheduler("OneVMperTask"),
        "StartParNotExceed": HeftScheduler("StartParNotExceed"),
        "StartParExceed": HeftScheduler("StartParExceed"),
        "AllParNotExceed": AllParScheduler(exceed=False),
        "AllParExceed": AllParScheduler(exceed=True),
    }
    for name, scheduler in schedulers.items():
        sched = scheduler.schedule(workflow, platform)
        print(gantt(sched))
        print()

    print(
        "Reading the charts (cf. the paper's Fig. 1): OneVMperTask buys\n"
        "maximal parallelism at maximal idle; StartParExceed serializes\n"
        "everything on the entry VM (single initial task); the AllPar\n"
        "variants keep the parallelism while packing sequential tails."
    )


if __name__ == "__main__":
    main()
