"""Columnar DAG representation and vectorized graph sweeps.

A :class:`ColumnarDAG` flattens a :class:`~repro.workflows.dag.Workflow`
into numpy arrays once per (workflow, mutation) generation — CSR
predecessor/successor adjacency with per-edge data volumes, a work
vector, lexicographic id ranks for string tie-breaks, and longest-path
levels — and is memoized in the workflow's structural cache, so every
kernel and every policy run over the same workflow shares one build.

The sweeps (:func:`level_values`, :func:`upward_rank_values`,
:func:`critical_path_columnar`) are level-synchronous: tasks are
processed one level per wave with ``np.maximum.reduceat`` over gathered
CSR segments.  ``max`` over float64 always returns one of its operands,
and each candidate is formed by the same single addition the scalar
kernels perform, so the values are byte-identical to the reference
sweeps — the property the kernel-equivalence tests assert.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkflowError

_GET_GB = itemgetter("data_gb")

__all__ = [
    "ColumnarDAG",
    "get_columnar",
    "level_of_columnar",
    "upward_rank_values",
    "critical_path_columnar",
]


class ColumnarDAG:
    """Array view of a validated workflow (read-only once built)."""

    __slots__ = (
        "ids",
        "index",
        "works",
        "str_rank",
        "pred_ptr",
        "pred_idx",
        "pred_gb",
        "succ_ptr",
        "succ_idx",
        "succ_gb",
        "levels",
        "n_levels",
        "level_sizes",
    )

    def __init__(self, workflow) -> None:
        graph = workflow._graph
        #: task index <-> id, in workflow insertion order
        self.ids: List[str] = list(workflow._tasks)
        n = len(self.ids)
        self.index: Dict[str, int] = {t: i for i, t in enumerate(self.ids)}
        self.works = np.fromiter(
            (t.work for t in workflow._tasks.values()), dtype=np.float64, count=n
        )
        # Lexicographic rank of each id: order-isomorphic to the id
        # string, so integer comparisons reproduce string tie-breaks.
        by_id = sorted(range(n), key=self.ids.__getitem__)
        str_rank = np.empty(n, dtype=np.int64)
        str_rank[by_id] = np.arange(n, dtype=np.int64)
        self.str_rank = str_rank

        # Predecessor CSR in *edge-insertion* order per task (the
        # ``nx.DiGraph.predecessors`` order critical_path tie-breaks on).
        index = self.index
        self.pred_ptr, self.pred_idx, self.pred_gb = _csr(
            self.ids, index, graph._pred, n
        )
        # Successor CSR derived by transposition — rows are ordered by
        # child index rather than ``_succ`` insertion order, which no
        # consumer observes: every successor sweep is a max/indegree
        # fold, and each (child, gb) pairing is preserved per edge.
        dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.pred_ptr))
        by_src = np.argsort(self.pred_idx, kind="stable")
        self.succ_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.pred_idx, minlength=n), out=self.succ_ptr[1:])
        self.succ_idx = dst[by_src]
        self.succ_gb = self.pred_gb[by_src]

        self.levels = _peel_levels(
            n, self.pred_ptr, self.succ_ptr, self.succ_idx, workflow.name
        )
        self.n_levels = int(self.levels.max()) + 1 if n else 0
        self.level_sizes = np.bincount(self.levels, minlength=self.n_levels)

    @property
    def n(self) -> int:
        return len(self.ids)

    @property
    def n_edges(self) -> int:
        return int(self.pred_idx.shape[0])

    # ------------------------------------------------------------------
    def level_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(order, starts)``: task indices grouped by level (stable
        within a level, i.e. insertion order) and the per-level offsets
        into that order (length ``n_levels + 1``)."""
        order = np.argsort(self.levels, kind="stable")
        starts = np.zeros(self.n_levels + 1, dtype=np.int64)
        np.cumsum(self.level_sizes, out=starts[1:])
        return order, starts


def _csr(ids, index, adj, n):
    """Flatten a networkx adjacency dict-of-dicts into CSR arrays.

    Row contents are gathered with C-level ``map``/``extend`` — at 50k
    tasks the per-item generator bytecode this replaces dominated the
    whole build.
    """
    counts = np.fromiter((len(adj[t]) for t in ids), dtype=np.int64, count=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    lookup = index.__getitem__
    flat_idx: list = []
    flat_gb: list = []
    put_idx = flat_idx.extend
    put_gb = flat_gb.extend
    for t in ids:
        row = adj[t]
        if row:
            put_idx(map(lookup, row))
            put_gb(_row_gb(row))
    idx = np.array(flat_idx, dtype=np.int64)
    gb = np.array(flat_gb, dtype=np.float64)
    return ptr, idx, gb


def _row_gb(row) -> list:
    """Edge volumes of one adjacency row, tolerant of missing keys
    (``add_dependency`` always sets ``data_gb``; hand-built graphs may
    not)."""
    try:
        return list(map(_GET_GB, row.values()))
    except KeyError:
        return [d.get("data_gb", 0.0) for d in row.values()]


def _peel_levels(n, pred_ptr, succ_ptr, succ_idx, name) -> np.ndarray:
    """Longest-path depth per task via level-synchronous Kahn peeling.

    One wave per DAG level: peel every task whose predecessors are all
    peeled, decrement successor in-degrees in bulk.  Values match
    ``Workflow.level_of`` (1 + max over predecessors) exactly — the
    depth is order-independent.
    """
    indeg = np.diff(pred_ptr).copy()
    succ_cnt = np.diff(succ_ptr)
    levels = np.full(n, -1, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    lvl = 0
    done = 0
    while frontier.size:
        levels[frontier] = lvl
        done += frontier.size
        targets = succ_idx[gather_csr(succ_ptr, frontier, succ_cnt[frontier])]
        if targets.size:
            indeg -= np.bincount(targets, minlength=n)
        frontier = np.flatnonzero((indeg == 0) & (levels == -1))
        lvl += 1
    if done != n:  # pragma: no cover - guarded by Workflow.validate()
        raise WorkflowError(f"workflow {name!r} has a cycle")
    return levels


def gather_csr(ptr, nodes, counts) -> np.ndarray:
    """Flat positions of the CSR rows of *nodes* (segments contiguous,
    in *nodes* order); ``counts`` must be ``ptr`` row lengths."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    excl = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(excl, counts)
        + np.repeat(ptr[nodes], counts)
    )


# ----------------------------------------------------------------------
# workflow-level cache
# ----------------------------------------------------------------------
def get_columnar(workflow) -> ColumnarDAG:
    """The memoized :class:`ColumnarDAG` of *workflow* (built on first
    use, dropped by the workflow's mutation invalidation)."""
    workflow.validate()
    return workflow._memo("columnar_dag", lambda: ColumnarDAG(workflow))


# ----------------------------------------------------------------------
# vectorized sweeps
# ----------------------------------------------------------------------
def level_of_columnar(workflow) -> Dict[str, int]:
    """``Workflow.level_of`` values from the columnar peel.

    Identical values; the dict is built in task-insertion order rather
    than topological order (no caller depends on iteration order — the
    builder does lookups, ``levels()`` re-sorts).
    """
    cd = get_columnar(workflow)
    return dict(zip(cd.ids, cd.levels.tolist()))


def remote_transfer_seconds(gb: np.ndarray, platform, itype) -> np.ndarray:
    """Per-edge cross-VM transfer time at a uniform flavor, intra-region.

    Inlines ``NetworkModel.transfer_time`` (the dispatch layer only
    engages for the stock model): ``gb * 8 / bottleneck_gbps + latency``,
    with a pure latency for zero-size control edges.  Identical
    elementwise IEEE operations to the scalar formula.
    """
    lat = platform.network.intra_region_latency_s
    bw = itype.link_gbps
    if gb.size == 0:
        return gb.copy()
    return np.where(gb == 0.0, lat, gb * 8.0 / bw + lat)


def upward_rank_values(
    workflow, platform, itype, include_transfers: bool = True
) -> np.ndarray:
    """HEFT upward ranks as a vector over the columnar index.

    Byte-identical to :func:`repro.core.allocation.ranking.upward_rank`
    — same per-edge ``transfer + rank`` additions, max over the same
    operands, same final ``runtime + best`` addition.
    """
    cd = get_columnar(workflow)
    n = cd.n
    runt = cd.works / itype.speedup
    succ_cnt = np.diff(cd.succ_ptr)
    tr = (
        remote_transfer_seconds(cd.succ_gb, platform, itype)
        if include_transfers
        else None
    )
    ranks = np.empty(n, dtype=np.float64)
    order, starts = cd.level_groups()
    for lvl in range(cd.n_levels - 1, -1, -1):
        nodes = order[starts[lvl] : starts[lvl + 1]]
        ranks[nodes] = runt[nodes]
        cnt = succ_cnt[nodes]
        nz = nodes[cnt > 0]
        if not nz.size:
            continue
        cnz = succ_cnt[nz]
        flat = gather_csr(cd.succ_ptr, nz, cnz)
        vals = ranks[cd.succ_idx[flat]]
        if tr is not None:
            vals = tr[flat] + vals
        seg_starts = np.cumsum(cnz) - cnz
        best = np.maximum.reduceat(vals, seg_starts)
        # the scalar kernel folds from best = 0.0; candidates are
        # strictly positive (work > 0), so the max is unchanged — kept
        # for exactness with empty-successor semantics
        np.maximum(best, 0.0, out=best)
        ranks[nz] = runt[nz] + best
    return ranks


def critical_path_columnar(workflow) -> Tuple[List[str], float]:
    """``Workflow.critical_path()`` with default weights, vectorized.

    Longest path by task ``work`` with zero edge cost.  Tie-breaks match
    the scalar sweep exactly: per-task best predecessor is the *first*
    (edge-insertion order) predecessor achieving the max, and the end
    task is the first maximum in ``nx_topo`` order — the topo order is
    only materialized when the global max actually ties.
    """
    cd = get_columnar(workflow)
    n = cd.n
    w = cd.works
    pred_cnt = np.diff(cd.pred_ptr)
    dist = np.empty(n, dtype=np.float64)
    best_pred = np.full(n, -1, dtype=np.int64)
    order, starts = cd.level_groups()
    for lvl in range(cd.n_levels):
        nodes = order[starts[lvl] : starts[lvl + 1]]
        cnt = pred_cnt[nodes]
        nz = nodes[cnt > 0]
        dist[nodes] = w[nodes]
        if not nz.size:
            continue
        cnz = pred_cnt[nz]
        flat = gather_csr(cd.pred_ptr, nz, cnz)
        vals = dist[cd.pred_idx[flat]]
        seg_starts = np.cumsum(cnz) - cnz
        best = np.maximum.reduceat(vals, seg_starts)
        # first flat position achieving the segment max (dist > 0, so a
        # predecessor always beats the scalar sweep's 0.0 starting best)
        total = vals.shape[0]
        pos = np.where(
            vals == np.repeat(best, cnz), np.arange(total, dtype=np.int64), total
        )
        first = np.minimum.reduceat(pos, seg_starts)
        best_pred[nz] = cd.pred_idx[flat[first]]
        dist[nz] = best + w[nz]
    top = float(dist.max()) if n else 0.0
    ties = np.flatnonzero(dist == top)
    if ties.size == 1:
        end = int(ties[0])
    else:
        # several tasks share the exact maximum: the scalar sweep
        # returns the first in nx topological order
        tie_set = {cd.ids[i] for i in ties.tolist()}
        end = cd.index[next(t for t in workflow._nx_topo() if t in tie_set)]
    path = [end]
    while best_pred[path[-1]] >= 0:
        path.append(int(best_pred[path[-1]]))
    path.reverse()
    return [cd.ids[i] for i in path], float(dist[end])
