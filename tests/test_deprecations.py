"""The renamed-kwarg shims: every legacy spelling still works, warns
with the replacement's name, and collides loudly with the new one."""

import warnings

import pytest

import repro.api as api
from repro.util.compat import LEGACY_KWARGS, renamed_kwargs


def _tiny_sweep_kwargs():
    return dict(
        workflows={"sequential": api.sequential()},
        scenarios=[api.scenario("best")],
        strategies=[api.strategy("OneVMperTask-s")],
    )


class TestDecorator:
    def test_forwards_and_warns(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.warns(DeprecationWarning, match="use new="):
            assert fn(old=42) == 42

    def test_both_spellings_is_type_error(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with pytest.raises(TypeError, match="both 'old'"):
            fn(old=1, new=2)

    def test_new_spelling_is_silent(self):
        @renamed_kwargs(old="new")
        def fn(new=None):
            return new

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fn(new=7) == 7

    def test_legacy_table_is_the_documented_mapping(self):
        assert LEGACY_KWARGS == {
            "n_jobs": "jobs",
            "pool": "backend",
            "rng_seed": "seed",
            "error_mode": "on_error",
            "faults": "fault_plan",
            "recovery_policy": "recovery",
        }


class TestRunSweep:
    def test_legacy_kwargs_work(self):
        with pytest.warns(DeprecationWarning) as record:
            old = api.run_sweep(n_jobs=1, rng_seed=3, **_tiny_sweep_kwargs())
        messages = sorted(str(w.message) for w in record)
        assert any("use jobs=" in m for m in messages)
        assert any("use seed=" in m for m in messages)
        new = api.run_sweep(jobs=1, seed=3, **_tiny_sweep_kwargs())
        assert old.metrics == new.metrics

    def test_pool_maps_to_backend(self):
        with pytest.warns(DeprecationWarning, match="use backend="):
            sweep = api.run_sweep(pool="serial", **_tiny_sweep_kwargs())
        assert sweep.metrics

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="'n_jobs'"):
            api.run_sweep(n_jobs=1, jobs=1, **_tiny_sweep_kwargs())


class TestSimulatorEntryPoints:
    def test_run_with_faults_accepts_faults(self):
        platform = api.CloudPlatform.ec2()
        sched = api.reference_schedule(api.sequential(), platform)
        with pytest.warns(DeprecationWarning, match="use fault_plan="):
            result = api.run_with_faults(sched, faults=api.FaultPlan())
        assert result.makespan > 0

    def test_run_online_accepts_recovery_policy(self):
        platform = api.CloudPlatform.ec2()
        with pytest.warns(DeprecationWarning, match="use recovery="):
            result = api.run_online(
                api.sequential(), platform, recovery_policy="retry"
            )
        assert result.makespan > 0


class TestExperimentEntryPoints:
    def test_replicate_accepts_pool(self):
        with pytest.warns(DeprecationWarning, match="use backend="):
            rows = api.replicate(
                seeds=[1],
                workflows={"sequential": api.sequential()},
                strategies=[api.strategy("OneVMperTask-s")],
                pool="serial",
            )
        assert rows

    def test_run_fault_sweep_accepts_recovery_policy(self):
        with pytest.warns(DeprecationWarning, match="use recovery="):
            sweep = api.run_fault_sweep(
                workflow=api.sequential(),
                workflow_name="sequential",
                strategies=[api.strategy("OneVMperTask-s")],
                intensities=[0.0],
                fault_seeds=1,
                recovery_policy="retry",
            )
        assert sweep.cells
