"""Run manifests: everything needed to reproduce an artifact.

Every CLI artifact run emits a manifest next to its output: the resolved
configuration (and its canonical hash), the RNG seed, the git revision,
library versions, wall and simulated time, and the run's metrics
summary.  A figure or table is then reproducible from its manifest
alone — :func:`manifest_argv` rebuilds the exact CLI invocation, and the
test suite asserts a re-run reproduces the same summary metrics.
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

MANIFEST_FORMAT = 1

#: config keys that point at output/observability paths — excluded from
#: the config hash and from reconstructed argv, because re-runs write
#: elsewhere without changing *what* is computed
NON_REPRODUCIBLE_KEYS = ("out", "out_dir", "manifest", "trace", "trace_out")


def config_hash(config: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON form of the reproducible config."""
    reproducible = {
        k: v for k, v in config.items() if k not in NON_REPRODUCIBLE_KEYS
    }
    blob = json.dumps(reproducible, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def git_revision(cwd: str | Path | None = None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def library_versions() -> Dict[str, str]:
    """Versions of python and the libraries the results depend on."""
    import numpy

    import repro

    versions = {
        "python": _platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }
    try:  # networkx is a declared dependency but nothing core needs it
        import networkx

        versions["networkx"] = networkx.__version__
    except ImportError:  # pragma: no cover - dependency always present
        pass
    return versions


def build_manifest(
    artifact: str,
    config: Dict[str, object],
    seed: Optional[int] = None,
    outputs: Sequence[str | Path] = (),
    counters: Optional[dict] = None,
    wall_seconds: Optional[float] = None,
    simulated_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble the manifest dict for one artifact run."""
    return {
        "format": MANIFEST_FORMAT,
        "artifact": artifact,
        "config": dict(config),
        "config_hash": config_hash(config),
        "seed": seed,
        "git_revision": git_revision(Path(__file__).resolve().parent),
        "versions": library_versions(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_seconds": wall_seconds,
        "simulated_seconds": simulated_seconds,
        "outputs": [str(p) for p in outputs],
        "metrics": counters,
    }


def write_manifest(path: str | Path, manifest: Dict[str, object]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    return path


def load_manifest(path: str | Path) -> Dict[str, object]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path}: not a repro run manifest")
    return data


def manifest_argv(manifest: Dict[str, object]) -> List[str]:
    """Rebuild the ``repro-experiments`` argv that reproduces a run.

    Output/observability paths are dropped (see
    :data:`NON_REPRODUCIBLE_KEYS`); append fresh ``--out``/``--trace-out``
    arguments for the re-run's destinations.
    """
    config = manifest.get("config")
    if not isinstance(config, dict):
        raise ValueError("manifest has no config to reproduce from")
    argv: List[str] = [str(manifest["artifact"])]
    for key in sorted(config):
        if key in NON_REPRODUCIBLE_KEYS or key == "artifact":
            continue
        value = config[key]
        flag = "--" + key.replace("_", "-")
        if isinstance(value, bool):
            if value:
                argv.append(flag)
        elif value is not None:
            argv.extend([flag, str(value)])
    return argv


def default_manifest_path(out: str | Path) -> Path:
    """Manifest path conventions: ``<out>.manifest.json`` for a file
    artifact, ``<dir>/manifest.json`` for a directory bundle."""
    out = Path(out)
    if out.is_dir():
        return out / "manifest.json"
    return out.with_name(out.name + ".manifest.json")
