"""The sweep-level observability contract.

Metrics rolled up from a traced+metered sweep must be byte-identical
across the serial, thread and process backends for the same seed, and
the merged trace must be a structurally valid Chrome trace whatever
backend produced the per-cell events.
"""

import pytest

from repro.experiments.config import strategy
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import validate_chrome_trace, Tracer
from repro.workflows.generators import mapreduce, sequential

BACKENDS = ("serial", "thread", "process")


def _observed_sweep(backend):
    tracer, metrics = Tracer(), MetricsRegistry()
    sweep = run_sweep(
        workflows={"sequential": sequential(), "mapreduce": mapreduce()},
        scenarios=[scenario("best")],
        strategies=[strategy("OneVMperTask-s"), strategy("StartParNotExceed-s")],
        seed=11,
        verify=True,  # DES replays emit sim-time spans + sim.* counters
        jobs=2,
        backend=backend,
        tracer=tracer,
        metrics=metrics,
    )
    return sweep, tracer, metrics


class TestBackendIdentity:
    @pytest.fixture(scope="class")
    def observed(self):
        return {b: _observed_sweep(b) for b in BACKENDS}

    def test_metrics_byte_identical_across_backends(self, observed):
        texts = {b: observed[b][2].summary_text() for b in BACKENDS}
        assert texts["serial"] == texts["thread"] == texts["process"]
        assert texts["serial"]  # and non-trivial

    def test_sweep_result_carries_the_rollup(self, observed):
        for b in BACKENDS:
            sweep, _, metrics = observed[b]
            assert sweep.counters == metrics.as_dict()

    def test_counters_capture_simulation_facts(self, observed):
        counters = observed["serial"][2].counters
        assert counters["sweep.cells"] == 2
        assert counters["builder.vms_rented"] > 0
        assert counters["sim.events_processed"] > 0
        assert counters["provision.rent"] > 0

    def test_traces_valid_and_equally_sized(self, observed):
        sizes = {}
        for b in BACKENDS:
            tracer = observed[b][1]
            events = validate_chrome_trace(tracer.to_chrome())
            # one adopted process (+ name metadata) per traced cell
            labels = [
                e["args"]["name"] for e in events if e.get("ph") == "M"
            ]
            assert sorted(labels) == ["best/mapreduce", "best/sequential"]
            sizes[b] = len([e for e in events if e.get("ph") == "X"])
        assert sizes["serial"] == sizes["thread"] == sizes["process"]

    def test_trace_has_sim_and_wall_layers(self, observed):
        events = observed["serial"][1].events
        cats = {e.get("cat") for e in events}
        assert "sweep" in cats       # wall spans around strategies
        assert "sim.task" in cats    # simulated task executions
        assert "sim.vm" in cats      # VM rent windows


class TestDisabledPath:
    def test_untraced_sweep_collects_nothing(self):
        sweep = run_sweep(
            workflows={"sequential": sequential()},
            scenarios=[scenario("best")],
            strategies=[strategy("OneVMperTask-s")],
        )
        assert sweep.counters is None

    def test_results_unchanged_by_observation(self):
        kwargs = dict(
            workflows={"sequential": sequential()},
            scenarios=[scenario("best")],
            strategies=[strategy("OneVMperTask-s")],
            seed=11,
            verify=True,
        )
        plain = run_sweep(**kwargs)
        observed = run_sweep(
            tracer=Tracer(), metrics=MetricsRegistry(), **kwargs
        )
        assert plain.metrics == observed.metrics
