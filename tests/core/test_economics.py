"""Tests for the co-rent and energy idle-time economics."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.economics import CoRentModel, EnergyModel
from repro.errors import SchedulingError
from repro.workflows.generators import montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def wasteful(platform):
    return HeftScheduler("OneVMperTask").schedule(montage(), platform)


@pytest.fixture(scope="module")
def frugal(platform):
    return HeftScheduler("StartParExceed").schedule(montage(), platform)


class TestCoRent:
    def test_zero_rate_is_plain_cost(self, wasteful):
        model = CoRentModel(reimbursement_rate=0.0)
        assert model.effective_cost(wasteful) == wasteful.total_cost
        assert model.reimbursement(wasteful) == 0.0

    def test_reimbursement_bounded_by_cost(self, wasteful):
        model = CoRentModel(reimbursement_rate=1.0)
        assert 0 < model.reimbursement(wasteful) <= wasteful.total_cost

    def test_more_idle_more_reimbursement(self, wasteful, frugal):
        model = CoRentModel(reimbursement_rate=0.5)
        assert model.reimbursement(wasteful) > model.reimbursement(frugal)

    def test_rate_monotone(self, wasteful):
        costs = [
            CoRentModel(reimbursement_rate=r).effective_cost(wasteful)
            for r in (0.0, 0.25, 0.5, 1.0)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_corent_narrows_the_gap(self, wasteful, frugal):
        """Co-renting helps wasteful policies more — the paper's point."""
        model = CoRentModel(reimbursement_rate=1.0)
        plain_gap = wasteful.total_cost - frugal.total_cost
        corent_gap = model.effective_cost(wasteful) - model.effective_cost(frugal)
        assert corent_gap < plain_gap

    def test_invalid_rate(self):
        with pytest.raises(SchedulingError):
            CoRentModel(reimbursement_rate=1.5)


class TestEnergy:
    def test_energy_positive_and_decomposes(self, wasteful):
        model = EnergyModel()
        assert 0 < model.wasted_kwh(wasteful) < model.energy_kwh(wasteful)

    def test_wasteful_burns_more(self, wasteful, frugal):
        model = EnergyModel()
        assert model.wasted_kwh(wasteful) > model.wasted_kwh(frugal)
        assert model.energy_kwh(wasteful) > model.energy_kwh(frugal)

    def test_zero_idle_fraction_counts_busy_only(self, platform):
        sched = HeftScheduler("StartParExceed").schedule(sequential(3), platform)
        model = EnergyModel(idle_fraction=0.0)
        busy_kwh = 120.0 * 3000.0 / 3.6e6
        assert model.energy_kwh(sched) == pytest.approx(busy_kwh)
        assert model.wasted_kwh(sched) == 0.0

    def test_known_value(self, platform):
        """One small VM, 1000 s busy, 2600 s idle tail."""
        sched = HeftScheduler("OneVMperTask").schedule(sequential(1), platform)
        model = EnergyModel(idle_fraction=0.5)
        expected = (120.0 * 1000.0 + 0.5 * 120.0 * 2600.0) / 3.6e6
        assert model.energy_kwh(sched) == pytest.approx(expected)

    def test_energy_cost(self, wasteful):
        model = EnergyModel()
        assert model.energy_cost(wasteful, usd_per_kwh=0.2) == pytest.approx(
            2 * model.energy_cost(wasteful, usd_per_kwh=0.1)
        )

    def test_validation(self, frugal):
        with pytest.raises(SchedulingError):
            EnergyModel(idle_fraction=2.0)
        with pytest.raises(SchedulingError):
            EnergyModel(active_watts={"small": -5.0})
        with pytest.raises(SchedulingError):
            EnergyModel().energy_cost(frugal, usd_per_kwh=-1.0)
        with pytest.raises(SchedulingError, match="power rating"):
            EnergyModel(active_watts={"xlarge": 100.0}).energy_kwh(frugal)
