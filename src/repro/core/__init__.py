"""The paper's primary contribution: VM provisioning policies, workflow
scheduling algorithms, and the schedule/metric model tying them to the
cloud substrate."""

from repro.core.schedule import Schedule
from repro.core.builder import ScheduleBuilder, BuilderVM
from repro.core.constraints import CONSTRAINT_NAMES, Constraints, ConstraintViolation
from repro.core.metrics import ScheduleMetrics, compare_to_reference, evaluate
from repro.core.baseline import reference_schedule
from repro.core.provisioning import (
    ProvisioningPolicy,
    OneVMperTask,
    StartParNotExceed,
    StartParExceed,
    AllParNotExceed,
    AllParExceed,
    provisioning_policy,
    PROVISIONING_POLICIES,
)
from repro.core.allocation import (
    SchedulingAlgorithm,
    HeftScheduler,
    LevelScheduler,
    CpaEagerScheduler,
    GainScheduler,
    AllParScheduler,
    AllPar1LnSScheduler,
    AllPar1LnSDynScheduler,
    RoundRobinScheduler,
    LeastLoadScheduler,
    DeadlineScheduler,
    scheduling_algorithm,
    SCHEDULING_ALGORITHMS,
)
from repro.core.allocation import (
    ClassicHeftScheduler,
    LocalityHeftScheduler,
    MinMinScheduler,
    MaxMinScheduler,
    PchScheduler,
    HcocScheduler,
    pin_regions,
)
from repro.core.economics import CoRentModel, EnergyModel
from repro.core.bounds import (
    EfficiencyReport,
    cost_lower_bound,
    efficiency,
    makespan_lower_bound,
)
from repro.core.explain import CostExplanation, explain, render_explanation
from repro.core.critical import CriticalReport, realized_critical_path
from repro.core.utilization import UtilizationReport, utilization, parallelism_profile
from repro.core.adaptive import AdaptiveSelector, Goal, recommend
from repro.core.recovery import (
    FailureEvent,
    RecoveryAction,
    RecoveryPolicy,
    RetrySameVM,
    ResubmitFresh,
    ReplanRemaining,
    RECOVERY_POLICIES,
    recovery_policy,
)

__all__ = [
    "Schedule",
    "ScheduleBuilder",
    "BuilderVM",
    "CONSTRAINT_NAMES",
    "Constraints",
    "ConstraintViolation",
    "ScheduleMetrics",
    "compare_to_reference",
    "evaluate",
    "reference_schedule",
    "ProvisioningPolicy",
    "OneVMperTask",
    "StartParNotExceed",
    "StartParExceed",
    "AllParNotExceed",
    "AllParExceed",
    "provisioning_policy",
    "PROVISIONING_POLICIES",
    "SchedulingAlgorithm",
    "HeftScheduler",
    "LevelScheduler",
    "CpaEagerScheduler",
    "GainScheduler",
    "AllParScheduler",
    "AllPar1LnSScheduler",
    "AllPar1LnSDynScheduler",
    "RoundRobinScheduler",
    "LeastLoadScheduler",
    "DeadlineScheduler",
    "CoRentModel",
    "EnergyModel",
    "ClassicHeftScheduler",
    "LocalityHeftScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "PchScheduler",
    "HcocScheduler",
    "pin_regions",
    "EfficiencyReport",
    "cost_lower_bound",
    "efficiency",
    "makespan_lower_bound",
    "CostExplanation",
    "explain",
    "render_explanation",
    "CriticalReport",
    "realized_critical_path",
    "UtilizationReport",
    "utilization",
    "parallelism_profile",
    "scheduling_algorithm",
    "SCHEDULING_ALGORITHMS",
    "AdaptiveSelector",
    "Goal",
    "recommend",
    "FailureEvent",
    "RecoveryAction",
    "RecoveryPolicy",
    "RetrySameVM",
    "ResubmitFresh",
    "ReplanRemaining",
    "RECOVERY_POLICIES",
    "recovery_policy",
]
