"""Hypothesis properties of realized-critical-path analysis across
random workflows and strategy families."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.allocation.pch import PchScheduler
from repro.core.critical import realized_critical_path
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import random_layered

_PLATFORM = CloudPlatform.ec2()
_FACTORIES = (
    lambda: HeftScheduler("OneVMperTask"),
    lambda: HeftScheduler("StartParNotExceed"),
    lambda: AllParScheduler(exceed=True),
    lambda: PchScheduler(),
)


def _schedules(seed):
    wf = apply_model(random_layered(layers=4, seed=seed), ParetoModel(), seed=seed)
    for factory in _FACTORIES:
        yield factory().schedule(wf, _PLATFORM)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_path_ends_at_makespan_and_is_blocking_chain(seed):
    for sched in _schedules(seed):
        report = realized_critical_path(sched)
        assert sched.finish(report.path[-1]) == pytest.approx(sched.makespan)
        assert len(report.reasons) == len(report.path) - 1
        for a, b, reason in zip(report.path, report.path[1:], report.reasons):
            if reason == "vm":
                assert sched.vm_of(a) is sched.vm_of(b)
                assert sched.finish(a) == pytest.approx(sched.start(b), abs=1e-5)
            else:
                assert a in sched.workflow.predecessors(b)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_critical_tasks_have_zero_slack(seed):
    for sched in _schedules(seed):
        report = realized_critical_path(sched)
        for tid in report.path:
            assert report.slack[tid] == pytest.approx(0.0, abs=1e-5), (
                sched.label,
                tid,
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_slack_bounded_and_nonnegative(seed):
    for sched in _schedules(seed):
        report = realized_critical_path(sched)
        for tid, s in report.slack.items():
            assert -1e-9 <= s <= sched.makespan + 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_onevm_never_machine_blocked(seed):
    """One VM per task: the makespan chain is pure dependencies."""
    wf = apply_model(random_layered(layers=4, seed=seed), ParetoModel(), seed=seed)
    sched = HeftScheduler("OneVMperTask").schedule(wf, _PLATFORM)
    report = realized_critical_path(sched)
    assert report.bottleneck_fraction_vm == 0.0
