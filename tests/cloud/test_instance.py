"""Tests for the EC2 instance catalog (paper Sect. IV-A)."""

import pytest

from repro.cloud.instance import (
    INSTANCE_TYPES,
    LARGE,
    MEDIUM,
    SMALL,
    XLARGE,
    InstanceType,
    faster_types,
    instance_type,
    next_faster,
)
from repro.errors import PlatformError


class TestCatalog:
    def test_paper_speedups(self):
        assert SMALL.speedup == 1.0
        assert MEDIUM.speedup == 1.6
        assert LARGE.speedup == 2.1
        assert XLARGE.speedup == 2.7

    def test_paper_cores(self):
        assert [t.cores for t in (SMALL, MEDIUM, LARGE, XLARGE)] == [1, 2, 4, 8]

    def test_paper_links(self):
        """small/medium on 1 Gb links, large/xlarge on 10 Gb."""
        assert SMALL.link_gbps == MEDIUM.link_gbps == 1.0
        assert LARGE.link_gbps == XLARGE.link_gbps == 10.0

    def test_catalog_ordering_by_speedup(self):
        assert sorted(INSTANCE_TYPES.values()) == [SMALL, MEDIUM, LARGE, XLARGE]

    def test_lookup_by_name_and_short(self):
        assert instance_type("medium") is MEDIUM
        assert instance_type("m") is MEDIUM
        assert instance_type("XLARGE") is XLARGE

    def test_lookup_unknown(self):
        with pytest.raises(PlatformError):
            instance_type("tiny")

    def test_invalid_instance_type(self):
        with pytest.raises(PlatformError):
            InstanceType(speedup=0, cores=1, name="x", short="x", link_gbps=1)


class TestRuntime:
    def test_runtime_scaling(self):
        assert XLARGE.runtime(2700.0) == pytest.approx(1000.0)
        assert SMALL.runtime(2700.0) == 2700.0

    def test_runtime_rejects_negative(self):
        with pytest.raises(PlatformError):
            SMALL.runtime(-1.0)


class TestValueRatio:
    def test_declining_value_per_dollar(self):
        from repro.cloud.instance import value_ratio

        assert value_ratio(SMALL) == 1.0
        assert value_ratio(MEDIUM) == pytest.approx(0.8)
        assert value_ratio(LARGE) == pytest.approx(0.525)
        assert value_ratio(XLARGE) == pytest.approx(0.3375)

    def test_monotone_decreasing(self):
        from repro.cloud.instance import value_ratio

        ratios = [value_ratio(t) for t in (SMALL, MEDIUM, LARGE, XLARGE)]
        assert ratios == sorted(ratios, reverse=True)


class TestLadder:
    def test_faster_types(self):
        assert faster_types(SMALL) == [MEDIUM, LARGE, XLARGE]
        assert faster_types(XLARGE) == []

    def test_next_faster(self):
        assert next_faster(SMALL) is MEDIUM
        assert next_faster(LARGE) is XLARGE
        assert next_faster(XLARGE) is None
