"""Multi-workflow streams: instance-intensive scheduling.

The paper's related work (Liu et al.) studies *instance-intensive*
cloud workflows — many workflow instances arriving over time, sharing
one elastic fleet.  This module runs that scenario on the online
executor: submissions carry arrival times, task ids are namespaced per
instance, entry tasks become ready at arrival, and the provisioning
policy sees one shared fleet, so an instance can reuse VMs still alive
from earlier instances (the throughput advantage reuse buys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.errors import ExperimentError
from repro.simulator.online import OnlineCloudExecutor, OnlineResult
from repro.util.rng import ensure_rng
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


@dataclass(frozen=True)
class Submission:
    """One workflow instance entering the system at *arrival* seconds."""

    workflow: Workflow
    arrival: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ExperimentError(f"negative arrival time {self.arrival}")


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a stream run: fleet totals + per-instance summaries."""

    online: OnlineResult
    #: per submission: (arrival, finish, response_time)
    per_instance: Tuple[Tuple[float, float, float], ...]

    @property
    def total_cost(self) -> float:
        return self.online.rent_cost

    @property
    def vm_count(self) -> int:
        return self.online.vm_count

    @property
    def idle_seconds(self) -> float:
        return self.online.idle_seconds

    @property
    def mean_response(self) -> float:
        return sum(r for _, _, r in self.per_instance) / len(self.per_instance)

    @property
    def max_response(self) -> float:
        return max(r for _, _, r in self.per_instance)


def merge_stream(
    submissions: Sequence[Submission],
) -> Tuple[Workflow, Dict[str, float], List[List[str]]]:
    """Merge submissions into one namespaced DAG.

    Returns ``(merged_workflow, release_times, per_instance_task_ids)``;
    task ``t`` of submission ``i`` becomes ``w{i}:{t}``, released (if an
    entry task) at the submission's arrival.
    """
    if not submissions:
        raise ExperimentError("stream needs at least one submission")
    merged = Workflow("stream")
    release: Dict[str, float] = {}
    groups: List[List[str]] = []
    for i, sub in enumerate(submissions):
        prefix = f"w{i}:"
        ids: List[str] = []
        for task in sub.workflow.tasks:
            merged.add_task(
                Task(f"{prefix}{task.id}", task.work, task.category, dict(task.attrs))
            )
            ids.append(f"{prefix}{task.id}")
        for u, v, gb in sub.workflow.edges():
            merged.add_dependency(f"{prefix}{u}", f"{prefix}{v}", gb)
        for entry in sub.workflow.entry_tasks():
            release[f"{prefix}{entry}"] = sub.arrival
        groups.append(ids)
    return merged.validate(), release, groups


def run_stream(
    submissions: Sequence[Submission],
    platform: CloudPlatform,
    policy: str = "StartParNotExceed",
    itype: InstanceType | None = None,
    region: Region | None = None,
) -> StreamResult:
    """Execute a submission stream on one shared online fleet."""
    merged, release, groups = merge_stream(submissions)
    executor = OnlineCloudExecutor(
        merged,
        platform,
        policy=policy,
        itype=itype or platform.itype("small"),
        region=region,
        release_times=release,
    )
    online = executor.run()
    per_instance = []
    for sub, ids in zip(submissions, groups):
        finish = max(online.task_finish[t] for t in ids)
        per_instance.append((sub.arrival, finish, finish - sub.arrival))
    return StreamResult(online=online, per_instance=tuple(per_instance))


def poisson_stream(
    workflow: Workflow,
    count: int,
    mean_interarrival: float,
    seed=None,
) -> List[Submission]:
    """*count* instances of *workflow* with exponential inter-arrivals."""
    if count < 1:
        raise ExperimentError("count must be >= 1")
    if mean_interarrival < 0:
        raise ExperimentError("mean_interarrival must be >= 0")
    rng = ensure_rng(seed)
    t = 0.0
    out: List[Submission] = []
    for i in range(count):
        out.append(Submission(workflow, t, name=f"{workflow.name}#{i}"))
        t += float(rng.exponential(mean_interarrival)) if mean_interarrival else 0.0
    return out
