"""Discrete-event simulation substrate — the reproduction of the
paper's "custom made simulator": an event-queue engine plus an executor
that replays a static schedule (assignments + per-VM order) through
task-ready/transfer/completion dynamics and reports observed timings."""

from repro.simulator.engine import Simulator
from repro.simulator.events import EventQueue, ScheduledEvent
from repro.simulator.trace import TraceEvent, SimulationResult
from repro.simulator.executor import (
    ScheduleExecutor,
    run_with_faults,
    simulate_schedule,
)
from repro.simulator.faults import FaultPlan, FaultStats
from repro.simulator.perturb import (
    RobustnessReport,
    lognormal_jitter,
    robustness_study,
)
from repro.simulator.online import (
    OnlineCloudExecutor,
    OnlineResult,
    online_to_schedule,
    run_online,
)
from repro.simulator.stream import (
    Submission,
    StreamResult,
    merge_stream,
    poisson_stream,
    run_stream,
)

__all__ = [
    "Simulator",
    "EventQueue",
    "ScheduledEvent",
    "TraceEvent",
    "SimulationResult",
    "ScheduleExecutor",
    "simulate_schedule",
    "run_with_faults",
    "FaultPlan",
    "FaultStats",
    "RobustnessReport",
    "lognormal_jitter",
    "robustness_study",
    "OnlineCloudExecutor",
    "OnlineResult",
    "online_to_schedule",
    "run_online",
    "Submission",
    "StreamResult",
    "merge_stream",
    "poisson_stream",
    "run_stream",
]
