"""The unit of work scheduled on a VM.

A task's ``work`` is its execution time, in seconds, on the *reference*
instance (the paper's EC2 *small*, speed-up 1.0); running on a faster
instance divides it by that instance's speed-up.  Data exchanged with a
successor lives on the dependency edge (see :class:`repro.workflows.dag.
Workflow`), not on the task, because Montage-style workflows send
different files to different children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import WorkflowError


@dataclass(frozen=True)
class Task:
    """An atomic workflow task.

    Parameters
    ----------
    id:
        Unique (within a workflow) non-empty identifier.
    work:
        Execution time in seconds on the reference (small, speed-up 1.0)
        instance. Must be positive: zero-length tasks make BTU/idle
        accounting degenerate and the paper's models never produce them.
    category:
        Optional transformation name (``mProject``, ``map``...); used by
        generators and the DAX writer, never by the schedulers.
    attrs:
        Free-form metadata, carried around untouched.
    """

    id: str
    work: float
    category: str = ""
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise WorkflowError(f"task id must be a non-empty string, got {self.id!r}")
        if not (self.work > 0) or self.work != self.work:  # also rejects NaN
            raise WorkflowError(
                f"task {self.id!r}: work must be a positive number, got {self.work!r}"
            )

    def with_work(self, work: float) -> "Task":
        """Copy of this task with a different reference execution time."""
        return Task(self.id, work, self.category, dict(self.attrs))

    def runtime_on(self, speedup: float) -> float:
        """Execution time on an instance with the given *speedup* factor."""
        if speedup <= 0:
            raise WorkflowError(f"speedup must be positive, got {speedup}")
        return self.work / speedup
