"""Recovery policies: what to do when a fault fires.

The fault processes of :mod:`repro.simulator.faults` decide *what
breaks*; a :class:`RecoveryPolicy` decides *how the run carries on*.
Policies are pure decision objects — the executors own the mechanics —
so one policy drives both the static-schedule replay
(:class:`~repro.simulator.executor.ScheduleExecutor`) and the online
scheduler (:class:`~repro.simulator.online.OnlineCloudExecutor`).

Three recoveries are provided:

* :class:`RetrySameVM` — re-run the failed attempt on the same VM after
  a capped exponential backoff (the data is already staged there); falls
  back to a fresh VM when the hosting VM is dead.
* :class:`ResubmitFresh` — rent a fresh VM of the same flavor and re-run
  the task there, re-staging its inputs.
* :class:`ReplanRemaining` — re-run the schedule's original provisioning
  policy on the unfinished sub-DAG against the surviving fleet state.
  In the online scheduler a failed task simply re-enters the ready queue
  and the online policy re-places it, which *is* the replan.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import SchedulingError
from repro.obs.metrics import current as current_metrics
from repro.util.suggest import unknown_name_message


@dataclass(frozen=True)
class FailureEvent:
    """One fault firing, as presented to a recovery policy."""

    task_id: str
    vm_id: int
    attempt: int
    time: float
    #: ``"task"`` (transient task failure), ``"vm_crash"`` (random
    #: crash), or ``"spot_preempt"`` (price-correlated spot reclamation)
    reason: str
    #: whether the hosting VM survived the failure
    vm_alive: bool
    #: how the failed VM was bought (a
    #: :class:`~repro.market.spot.PurchaseOption`); ``None`` outside
    #: market runs — lets bidding-aware policies raise the bid
    purchase: Optional[object] = None


@dataclass(frozen=True)
class RecoveryAction:
    """A policy's verdict for one failure.

    ``kind`` is one of ``"retry"`` (same VM), ``"resubmit"`` (fresh VM),
    ``"replan"`` (re-run provisioning on the unfinished sub-DAG) or
    ``"abort"`` (give up; the executor raises
    :class:`~repro.errors.FaultError`).  ``delay`` is the recovery
    latency in seconds before the chosen action takes effect.

    ``purchase`` (a :class:`~repro.market.spot.PurchaseOption`), when
    set, overrides how the replacement VM is bought — the bidding axis:
    rebid higher, or fall back to on-demand.  ``tag`` sub-labels the
    decision for metrics/decision logs (``recovery.decision.<tag>``);
    empty outside market runs so existing logs are unchanged.
    """

    kind: str
    delay: float = 0.0
    purchase: Optional[object] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("retry", "resubmit", "replan", "abort"):
            raise SchedulingError(f"unknown recovery action {self.kind!r}")
        if self.delay < 0:
            raise SchedulingError(f"recovery delay must be >= 0, got {self.delay}")


class RecoveryPolicy(abc.ABC):
    """Strategy deciding how a fault-injected run recovers."""

    #: registry key and report label
    name: str = "base"
    #: how a crashed VM's *queued* (not yet started) tasks are handled:
    #: ``"replacement"`` moves them, in order, to one fresh VM;
    #: ``"replan"`` re-runs the provisioning policy on everything pending
    queue_strategy: str = "replacement"
    #: whether an online retry should stick to the VM of the failed
    #: attempt (inputs are already staged there) when it is still alive
    prefer_same_vm: bool = False
    #: market hooks (see :mod:`repro.market.recovery`): checkpoint the
    #: running task when a spot reclamation warning fires, and the extra
    #: seconds a checkpointed restart costs
    checkpoint_on_warning: bool = False
    restart_cost_seconds: float = 0.0

    def __init__(
        self,
        max_attempts: int = 8,
        backoff_base: float = 30.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 600.0,
    ) -> None:
        if max_attempts < 1:
            raise SchedulingError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base < 0 or backoff_cap < 0 or backoff_factor < 1:
            raise SchedulingError("invalid backoff parameters")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap

    # ------------------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff before re-attempt *attempt + 1*."""
        return min(
            self.backoff_base * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_cap,
        )

    @abc.abstractmethod
    def on_task_failure(self, failure: FailureEvent) -> RecoveryAction:
        """Decide the recovery for one failed execution attempt."""

    def decide(self, failure: FailureEvent) -> RecoveryAction:
        """Instrumented entry point the executors call: delegates to
        :meth:`on_task_failure` and, when a metrics registry is active,
        counts the decision by kind (``recovery.decision.<kind>``)."""
        action = self.on_task_failure(failure)
        metrics = current_metrics()
        if metrics is not None:
            metrics.inc(f"recovery.decision.{action.kind}")
            if action.tag:
                metrics.inc(f"recovery.decision.{action.tag}")
        return action

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(max_attempts={self.max_attempts})"


class RetrySameVM(RecoveryPolicy):
    """Retry on the same VM with capped exponential backoff."""

    name = "retry"
    queue_strategy = "replacement"
    prefer_same_vm = True

    def on_task_failure(self, failure: FailureEvent) -> RecoveryAction:
        if failure.attempt >= self.max_attempts:
            return RecoveryAction("abort")
        delay = self.backoff(failure.attempt)
        if failure.vm_alive and failure.reason == "task":
            return RecoveryAction("retry", delay)
        # the hosting VM is gone — a same-VM retry is impossible
        return RecoveryAction("resubmit", delay)


class ResubmitFresh(RecoveryPolicy):
    """Always move a failed task to a freshly rented VM.

    The default backoff is zero: renting the replacement *is* the
    recovery latency in this model.
    """

    name = "resubmit"
    queue_strategy = "replacement"

    def __init__(
        self,
        max_attempts: int = 8,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 600.0,
    ) -> None:
        super().__init__(max_attempts, backoff_base, backoff_factor, backoff_cap)

    def on_task_failure(self, failure: FailureEvent) -> RecoveryAction:
        if failure.attempt >= self.max_attempts:
            return RecoveryAction("abort")
        return RecoveryAction("resubmit", self.backoff(failure.attempt))


class ReplanRemaining(RecoveryPolicy):
    """Re-run the original provisioning policy on the unfinished sub-DAG.

    On any failure the whole set of pending (unstarted) tasks is handed
    back to the schedule's provisioning policy, which re-decides their
    placement against the surviving fleet state.  ``provisioning``
    overrides the policy name when the schedule's own is not in the
    registry (e.g. schedules built by dynamic upgraders).
    """

    name = "replan"
    queue_strategy = "replan"

    def __init__(
        self,
        max_attempts: int = 8,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_cap: float = 600.0,
        provisioning: Optional[str] = None,
    ) -> None:
        super().__init__(max_attempts, backoff_base, backoff_factor, backoff_cap)
        self.provisioning = provisioning

    def on_task_failure(self, failure: FailureEvent) -> RecoveryAction:
        if failure.attempt >= self.max_attempts:
            return RecoveryAction("abort")
        return RecoveryAction("replan", self.backoff(failure.attempt))


#: registry: name -> zero-argument factory
RECOVERY_POLICIES: Dict[str, Callable[[], RecoveryPolicy]] = {
    RetrySameVM.name: RetrySameVM,
    ResubmitFresh.name: ResubmitFresh,
    ReplanRemaining.name: ReplanRemaining,
}


def recovery_policy(policy: "str | RecoveryPolicy | None") -> RecoveryPolicy:
    """Resolve a policy instance, registry name, or ``None`` (retry)."""
    if policy is None:
        return RetrySameVM()
    if isinstance(policy, RecoveryPolicy):
        return policy
    key = str(policy).lower()
    if key not in RECOVERY_POLICIES:
        # the bidding-aware policies register themselves on import
        import repro.market.recovery  # noqa: F401
    try:
        return RECOVERY_POLICIES[key]()
    except KeyError:
        raise SchedulingError(
            unknown_name_message("recovery policy", str(policy), RECOVERY_POLICIES)
        ) from None
