"""Simulation traces and their consistency checks.

The executor emits a :class:`TraceEvent` stream and summarizes it into a
:class:`SimulationResult`; :meth:`SimulationResult.check_against` proves
the dynamic execution reproduced the static schedule's timing — the
cross-validation invariant in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.schedule import Schedule
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.simulator.faults import FaultStats

_EPS = 1e-6


@dataclass(frozen=True)
class TraceEvent:
    """One observed simulation event."""

    time: float
    kind: str  # "vm_start" | "vm_boot" | "vm_boot_fail" | "transfer_start" | "transfer_end" | "task_start" | "task_fail" | "task_end" | "vm_crash" | "vm_stop"
    task_id: str = ""
    vm: str = ""
    detail: str = ""


@dataclass
class SimulationResult:
    """Observed timings of one simulated schedule execution."""

    events: List[TraceEvent] = field(default_factory=list)
    task_start: Dict[str, float] = field(default_factory=dict)
    task_finish: Dict[str, float] = field(default_factory=dict)
    vm_windows: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: robustness accounting, populated only by fault-injected runs
    faults: Optional["FaultStats"] = None
    #: realized per-VM rent (crashed VMs billed to their BTU boundary),
    #: populated only by fault-injected runs
    vm_costs: Dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.task_finish:
            return 0.0
        return max(self.task_finish.values())

    @property
    def realized_cost(self) -> float:
        """Total realized rent of a fault-injected run (0 otherwise)."""
        return sum(self.vm_costs.values())

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if event.kind == "task_start":
            self.task_start[event.task_id] = event.time
        elif event.kind == "task_end":
            self.task_finish[event.task_id] = event.time

    def check_against(self, schedule: Schedule) -> None:
        """Verify the observed timings match the static schedule.

        Raises :class:`SimulationError` on the first divergence; a clean
        return certifies the schedule is executable exactly as planned.
        """
        for tid in schedule.workflow.task_ids:
            if tid not in self.task_finish:
                raise SimulationError(f"task {tid!r} never completed in simulation")
            planned_start = schedule.start(tid)
            planned_finish = schedule.finish(tid)
            got_start = self.task_start[tid]
            got_finish = self.task_finish[tid]
            if abs(got_start - planned_start) > _EPS * max(1.0, planned_start):
                raise SimulationError(
                    f"{tid!r}: simulated start {got_start:.6f} != "
                    f"planned {planned_start:.6f}"
                )
            if abs(got_finish - planned_finish) > _EPS * max(1.0, planned_finish):
                raise SimulationError(
                    f"{tid!r}: simulated finish {got_finish:.6f} != "
                    f"planned {planned_finish:.6f}"
                )
