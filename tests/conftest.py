"""Shared fixtures: the EC2 platform, the paper's workflows, and small
hand-built DAGs with known-by-construction schedules."""

from __future__ import annotations

import pytest

from repro.cloud.platform import CloudPlatform
from repro.workflows.dag import Workflow
from repro.workflows.generators import cstem, mapreduce, montage, sequential
from repro.workflows.task import Task


@pytest.fixture(scope="session")
def platform() -> CloudPlatform:
    return CloudPlatform.ec2()


@pytest.fixture
def diamond() -> Workflow:
    """A -> (B, C) -> D with distinct runtimes and data volumes."""
    wf = Workflow("diamond")
    wf.add_task(Task("A", 600.0))
    wf.add_task(Task("B", 1200.0))
    wf.add_task(Task("C", 900.0))
    wf.add_task(Task("D", 300.0))
    wf.add_dependency("A", "B", 0.5)
    wf.add_dependency("A", "C", 0.25)
    wf.add_dependency("B", "D", 1.0)
    wf.add_dependency("C", "D", 0.125)
    return wf.validate()


@pytest.fixture
def chain3() -> Workflow:
    """X -> Y -> Z, zero data (pure control dependencies)."""
    wf = Workflow("chain3")
    wf.add_task(Task("X", 1000.0))
    wf.add_task(Task("Y", 2000.0))
    wf.add_task(Task("Z", 500.0))
    wf.add_dependency("X", "Y")
    wf.add_dependency("Y", "Z")
    return wf.validate()


@pytest.fixture
def fan7() -> Workflow:
    """The Fig. 1 shape: one entry task and six children."""
    wf = Workflow("fan7")
    wf.add_task(Task("root", 1800.0))
    for i, work in enumerate((2400.0, 2000.0, 1600.0, 1200.0, 900.0, 600.0)):
        wf.add_task(Task(f"c{i}", work))
        wf.add_dependency("root", f"c{i}", 0.01)
    return wf.validate()


@pytest.fixture(
    params=["montage", "cstem", "mapreduce", "sequential"],
    ids=["montage", "cstem", "mapreduce", "sequential"],
)
def paper_workflow(request) -> Workflow:
    """Parametrized over the paper's four shapes."""
    return {
        "montage": montage,
        "cstem": cstem,
        "mapreduce": mapreduce,
        "sequential": sequential,
    }[request.param]()
