"""Tests for the DOT exporter."""

from repro.workflows.dag import Workflow
from repro.workflows.dot import to_dot
from repro.workflows.generators import sequential
from repro.workflows.task import Task


class TestToDot:
    def test_contains_every_task_and_edge(self):
        wf = sequential(4)
        dot = to_dot(wf)
        for tid in wf.task_ids:
            assert f'"{tid}"' in dot
        assert dot.count("->") == 3

    def test_digraph_header(self):
        dot = to_dot(sequential(2))
        assert dot.startswith('digraph "sequential"')
        assert dot.rstrip().endswith("}")

    def test_data_labels_on_edges(self):
        wf = Workflow("w")
        wf.add_task(Task("a", 1.0))
        wf.add_task(Task("b", 1.0))
        wf.add_dependency("a", "b", 2.5)
        assert '2.5GB' in to_dot(wf)

    def test_quoting_special_characters(self):
        wf = Workflow('has "quotes"')
        wf.add_task(Task("a", 1.0))
        dot = to_dot(wf)
        assert '\\"quotes\\"' in dot
