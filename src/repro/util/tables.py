"""Plain-text table rendering for the experiment harness.

The paper's tables are regenerated as monospace text so the benchmark
harness can print them directly; no plotting dependency is required.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object, fmt: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".2f",
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Floats are formatted with *float_fmt*; ``None`` renders empty. The
    first column is always left-aligned (it is almost always a label).
    """
    str_rows: List[List[str]] = [[_cell(v, float_fmt) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            if c == 0 or not align_right:
                parts.append(cell.ljust(widths[c]))
            else:
                parts.append(cell.rjust(widths[c]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
