"""The one result protocol every experiment entry point returns.

``run_sweep``, ``run_fault_sweep``, ``run_pricing_sweep``,
``run_service``/``run_service_sweep`` and ``autotune`` each produce a
different result class, but callers always want the same three things:

* :meth:`ResultBase.summary` — the rendered report a human reads;
* :meth:`ResultBase.to_json` — a JSON-stable dict for files and tests
  (deterministic key order, no timestamps, no backend fingerprints —
  the byte-identity surface of the cross-backend determinism tests);
* :attr:`ResultBase.manifest` — the reproducibility manifest of the run
  that produced it (``None`` unless the caller attached one, as the CLI
  artifacts do), replayable via
  :func:`repro.obs.manifest.manifest_argv`.

Result classes subclass :class:`ResultBase` and implement the two
methods; callers can hold any experiment result through this one shape
instead of special-casing five return types.
"""

from __future__ import annotations

from typing import Optional


class ResultBase:
    """Common protocol of every experiment result.

    Subclasses implement :meth:`summary` and :meth:`to_json`;
    :attr:`manifest` rides along as plain data so a result can always
    say how to reproduce itself.
    """

    #: reproducibility manifest of the producing run (``None`` until a
    #: caller attaches one via :meth:`with_manifest`)
    manifest: Optional[dict] = None

    def summary(self) -> str:
        """Human-readable report of this result."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement summary()"
        )

    def to_json(self) -> dict:
        """JSON-stable dict form (deterministic keys, plain types)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement to_json()"
        )

    def with_manifest(self, manifest: Optional[dict]) -> "ResultBase":
        """Attach the producing run's manifest; returns ``self``.

        Uses ``object.__setattr__`` so frozen dataclass subclasses work
        too — the manifest is provenance riding along, not part of the
        result's value.
        """
        object.__setattr__(self, "manifest", manifest)
        return self
