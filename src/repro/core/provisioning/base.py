"""Provisioning policy interface and registry.

A provisioning policy answers one question, task by task, in the order
the allocation strategy hands tasks over: *which VM runs this task* —
an existing one, or a newly rented one?  Policies are stateless between
runs; all scheduling state lives in the
:class:`~repro.core.builder.ScheduleBuilder` they are given.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.errors import SchedulingError
from repro.util.suggest import unknown_name_message


class ProvisioningPolicy(abc.ABC):
    """Strategy deciding VM reuse vs. rental for each task."""

    #: registry key and report label
    name: str = "base"

    @abc.abstractmethod
    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        """Return the VM (existing or freshly rented via
        ``builder.new_vm()``) that should run *task_id* next.

        The caller immediately places the task on the returned VM, so the
        builder state a policy inspects always reflects every earlier
        decision.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


#: registry: name -> zero-argument factory
PROVISIONING_POLICIES: Dict[str, Callable[[], ProvisioningPolicy]] = {}


def register_policy(factory: Callable[[], ProvisioningPolicy]) -> Callable[[], ProvisioningPolicy]:
    """Class decorator registering a policy under its ``name``."""
    probe = factory()
    if not probe.name or probe.name == "base":
        raise SchedulingError(f"policy {factory!r} must define a unique name")
    if probe.name in PROVISIONING_POLICIES:
        raise SchedulingError(f"duplicate provisioning policy {probe.name!r}")
    PROVISIONING_POLICIES[probe.name] = factory
    return factory


def provisioning_policy(name: str) -> ProvisioningPolicy:
    """Instantiate a registered policy by name (case-insensitive)."""
    for key, factory in PROVISIONING_POLICIES.items():
        if key.lower() == name.lower():
            return factory()
    raise SchedulingError(
        unknown_name_message("provisioning policy", name, PROVISIONING_POLICIES)
    )


def online_policy_names() -> tuple:
    """Registered policy names the online executor (and the service
    loop) accepts — the registry keys, i.e. the paper's five policies.

    The import forces registration so the answer does not depend on
    what the caller happened to import first.
    """
    import repro.core.provisioning  # noqa: F401  (registers the five)

    return tuple(PROVISIONING_POLICIES)
