"""Online (dynamic) scheduling: decisions during execution.

The paper schedules *statically* — all placement decisions are made up
front from exact runtime estimates.  Much of its related work
(instance-intensive workflows, auto-scaling) instead decides at runtime.
This module implements that mode on the discrete-event engine: a task is
placed the moment it becomes ready (all predecessors finished), using
the same five provisioning rules, against the fleet state *at that
moment*; idle VMs are deprovisioned at their BTU boundary and cannot be
reused afterwards.

Two deliberate differences from the static model, both inherent to
online operation:

* input transfers start only after placement (the destination is not
  known earlier), so a task pays its *largest* predecessor transfer
  after its ready time instead of overlapping per-predecessor transfers
  with earlier waits;
* with a ``runtime_fn`` the policy reacts to *actual* durations, so
  online placements can differ from the static plan built on estimates.

Fault injection follows the same reservation semantics the online model
already uses for placement: a failing attempt holds its reserved slot to
the planned finish (the VM is not reclaimed early), a VM crash voids the
VM and every uncompleted reservation on it, and recovery re-dispatch
goes back through the ready queue — in online mode *re-entering the
ready queue is the replan*, because the provisioning policy re-places
the task against the fleet state at recovery time.  With ``fault_plan``
``None`` the executor is byte-identical to the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.provisioning.base import online_policy_names
from repro.core.recovery import FailureEvent, RecoveryPolicy, recovery_policy
from repro.errors import FaultError, SchedulingError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import current as current_metrics
from repro.obs.tracer import Tracer, ensure_tracer
from repro.service.fleet import FleetManager, FleetVM
from repro.simulator.engine import Simulator
from repro.simulator.faults import FaultPlan, FaultStats
from repro.simulator.trace import TraceEvent
from repro.util.compat import removed_kwargs
from repro.workflows.dag import Workflow

#: the fleet record was lifted into :mod:`repro.service.fleet` so a
#: fleet can outlive one run; the old private name stays as an alias
_OnlineVM = FleetVM


@dataclass
class OnlineResult:
    """Outcome of one online run."""

    makespan: float
    rent_cost: float
    idle_seconds: float
    vm_count: int
    task_start: Dict[str, float]
    task_finish: Dict[str, float]
    task_vm: Dict[str, int]
    events: List[TraceEvent]
    #: robustness accounting, populated only by fault-injected runs
    faults: Optional[FaultStats] = None


class OnlineCloudExecutor:
    """Run *workflow* with runtime placement decisions.

    By default the executor owns its world: a private
    :class:`~repro.simulator.engine.Simulator` and a private
    :class:`~repro.service.fleet.FleetManager`.  The service loop
    instead passes a shared *sim* and *fleet* (plus an *owner* for
    billing attribution and a unique *run_name* so task ids from
    different submissions cannot collide on a shared VM roster) and
    drives :meth:`start` itself; :meth:`finish` stays private-fleet
    only — fleet-wide billing of a shared fleet is the service's job.
    """

    def __init__(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        policy: str = "StartParNotExceed",
        itype: InstanceType = SMALL,
        region: Region | None = None,
        runtime_fn: Callable[[str, float], float] | None = None,
        max_events: int = 10_000_000,
        release_times: Dict[str, float] | None = None,
        fault_plan: FaultPlan | None = None,
        recovery: "str | RecoveryPolicy | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        sim: Simulator | None = None,
        fleet: FleetManager | None = None,
        owner: str = "",
        run_name: str = "",
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        supported = online_policy_names()
        if policy not in supported:
            raise SchedulingError(
                f"unsupported online policy {policy!r}; known: {supported}"
            )
        workflow.validate()
        self.workflow = workflow
        self.platform = platform
        self.policy = policy
        self.itype = itype
        self.region = region or platform.default_region
        self.runtime_fn = runtime_fn
        #: optional per-entry-task earliest-ready times (workflow streams)
        self.release_times = dict(release_times or {})
        self.tracer = ensure_tracer(tracer)
        self.metrics = metrics if metrics is not None else current_metrics()
        self.sim = sim if sim is not None else Simulator(max_events=max_events, tracer=tracer)
        self._fleet_mgr = fleet if fleet is not None else FleetManager(region=self.region)
        self._shared_fleet = fleet is not None
        self.owner = owner
        self.run_name = run_name
        self.on_complete = on_complete
        self.levels = workflow.level_of()
        self.level_sizes: Dict[int, int] = {}
        for lvl in self.levels.values():
            self.level_sizes[lvl] = self.level_sizes.get(lvl, 0) + 1
        self._pending = {
            tid: len(workflow.predecessors(tid)) for tid in workflow.task_ids
        }
        self.task_start: Dict[str, float] = {}
        self.task_finish: Dict[str, float] = {}
        self.task_vm: Dict[str, int] = {}
        self.events: List[TraceEvent] = []
        if fault_plan is None:
            # a platform-level market makes the run fault-injected even
            # without an explicit plan (the price process is a fault)
            ambient = getattr(platform, "market", None)
            if ambient is not None:
                fault_plan = FaultPlan(market=ambient)
        self.fault_plan = fault_plan
        self.market = fault_plan.market if fault_plan is not None else None
        self._spot = fault_plan.spot_plan() if fault_plan is not None else None
        self._default_purchase = (
            self.market.purchase if self.market is not None else None
        )
        self.recovery: Optional[RecoveryPolicy] = (
            recovery_policy(recovery) if fault_plan is not None else None
        )
        self.stats: Optional[FaultStats] = (
            FaultStats() if fault_plan is not None else None
        )
        #: current attempt number per task (1-based)
        self._attempt: Dict[str, int] = {}
        self._completed: set = set()
        #: tasks whose next placement must rent a fresh VM (resubmit)
        self._force_fresh: set = set()
        #: purchase override for a task's next fresh rental (rebids)
        self._force_purchase: Dict[str, object] = {}
        #: seconds of work checkpointed at a reclamation warning
        self._ckpt: Dict[str, float] = {}
        if self.fault_plan is not None:
            # crash recovery goes through the manager so every run with
            # reservations on a crashed shared VM reclaims its own tasks
            self._fleet_mgr.add_crash_listener(self._reclaim_crash_victims)
            if self.market is not None:
                self._fleet_mgr.add_warning_listener(self._checkpoint_victims)

    @property
    def fleet(self) -> List[FleetVM]:
        """The (possibly shared) VM records, in rental order."""
        return self._fleet_mgr.vms

    def _roster_key(self, task_id: str) -> str:
        """VM-roster entry for *task_id*.  On a shared fleet task ids
        from different submissions can collide (two tenants running the
        same DAG shape), so entries are qualified by the run name."""
        return f"{self.run_name}:{task_id}" if self.run_name else task_id

    # ------------------------------------------------------------------
    # fleet queries at current simulation time
    # ------------------------------------------------------------------
    def _reap(self) -> None:
        """Deprovision VMs idle past their BTU horizon."""
        btu = self.platform.btu_seconds
        for vm in self._fleet_mgr.reap(self.sim.now, btu):
            self.events.append(
                TraceEvent(vm.horizon(btu), "vm_stop", "", f"vm{vm.id}")
            )

    def _alive(self) -> List[FleetVM]:
        return self._fleet_mgr.alive()

    def _rent(self, purchase: object | None = None) -> FleetVM:
        # Cold starts: the VM is requested now but cannot execute until
        # it has booted (the paper pre-boots; online cannot).
        plan = self.fault_plan
        nominal = 0.0 if self.platform.prebooted else self.platform.boot_seconds
        boot = nominal
        vm_id = len(self.fleet)
        boot_active = (
            plan is not None
            and not self.platform.prebooted
            and (
                nominal > 0
                or plan.boot_cold_seconds > 0
                or plan.boot_warm_pool > 0
            )
        )
        warm = False
        if boot_active:
            # boot failures re-issue the request; the delays accumulate
            assert self.recovery is not None and self.stats is not None
            warm = self._fleet_mgr.take_warm(self.itype, plan.boot_warm_pool)
            total, attempt = 0.0, 0
            while True:
                attempt += 1
                fails, delay = plan.boot_delay_outcome(
                    f"vm{vm_id}", attempt, nominal, warm=warm
                )
                total += delay
                if not fails:
                    break
                self.stats.boot_failures += 1
                self.events.append(
                    TraceEvent(self.sim.now + total, "vm_boot_fail", "", f"vm{vm_id}")
                )
                if attempt >= self.recovery.max_attempts:
                    raise FaultError(f"vm{vm_id} failed to boot {attempt} times")
            boot = total
        if purchase is None:
            purchase = self._default_purchase
        vm = self._fleet_mgr.rent(
            self.itype,
            started_at=self.sim.now,
            free_at=self.sim.now + boot,
            owner=self.owner,
            purchase=purchase,
        )
        vm.booted_warm = warm
        self.events.append(TraceEvent(self.sim.now, "vm_start", "", f"vm{vm.id}"))
        if self.fault_plan is not None:
            uptime = self.fault_plan.vm_crash_uptime(f"vm{vm.id}")
            if uptime != float("inf"):
                self.sim.after(
                    uptime, lambda v=vm: self._on_vm_crash(v), f"crash:vm{vm.id}"
                )
        if self._spot is not None and vm.purchase is not None:
            warn, kill = self._spot.preemption(
                self.itype, self.region, vm.purchase, self.sim.now
            )
            if kill != float("inf"):
                if warn < kill:  # a zero-grace market kills unwarned
                    self.sim.at(
                        warn,
                        lambda v=vm: self._on_spot_warning(v),
                        f"spot_warn:vm{vm.id}",
                    )
                self.sim.at(
                    kill,
                    lambda v=vm: self._on_vm_crash(v, preempt=True),
                    f"preempt:vm{vm.id}",
                )
        return vm

    def _fits_btu(self, vm: _OnlineVM, duration: float) -> bool:
        """Would the task finish within the VM's already-paid BTUs?"""
        start = max(self.sim.now, vm.free_at)
        return start + duration <= vm.horizon(self.platform.btu_seconds) + 1e-9

    def _select_vm(self, task_id: str, duration: float) -> _OnlineVM:
        """Pick the VM for *task_id* against the fleet state *now*.

        On an indexed manager (the default) every query is served from
        the fleet indexes — heap-peek reap, max-busy peek, idle-pool
        scan — so a placement costs O(log fleet) instead of the
        reference's O(fleet) roster walks.  Decision-identical to
        :meth:`_select_vm_reference` (property-tested)."""
        mgr = self._fleet_mgr
        if not mgr.indexed:
            return self._select_vm_reference(task_id, duration)
        self._reap()
        if self.policy == "OneVMperTask":
            return self._rent()
        if self.policy.startswith("StartPar"):
            if not self.workflow.predecessors(task_id) or not mgr.live_count:
                return self._rent()
            target = mgr.max_busy_alive()
            assert target is not None
            if self.policy.endswith("Exceed") and not self.policy.endswith(
                "NotExceed"
            ):
                return target
            return target if self._fits_btu(target, duration) else self._rent()
        # AllPar* (see _select_vm_reference for the policy reading)
        now = self.sim.now
        fits = None
        if self.policy == "AllParNotExceed":
            fits = lambda vm: self._fits_btu(vm, duration)  # noqa: E731
        pred_vm = self._largest_pred_vm(task_id)
        if self.level_sizes[self.levels[task_id]] > 1:
            # the predecessor's VM wins whenever it qualifies as a
            # candidate (alive, idle now, fits); otherwise the most
            # utilized qualifying idle VM, served from the idle pool
            if (
                pred_vm is not None
                and not pred_vm.dead
                and pred_vm.free_at <= now + 1e-9
                and (fits is None or fits(pred_vm))
            ):
                return pred_vm
            best = mgr.best_idle(now, fits)
            return best if best is not None else self._rent()
        # singleton level: only the predecessor's VM is ever reusable
        if pred_vm is None or pred_vm.dead:
            return self._rent()
        if fits is not None and not fits(pred_vm):
            return self._rent()
        return pred_vm

    def _select_vm_reference(self, task_id: str, duration: float) -> _OnlineVM:
        """The original O(alive)-scan selection — preserved as the
        byte-identity oracle for the indexed path (use a
        ``FleetManager(indexed=False)``)."""
        self._reap()
        alive = self._alive()
        if self.policy == "OneVMperTask":
            return self._rent()
        if self.policy.startswith("StartPar"):
            if not self.workflow.predecessors(task_id) or not alive:
                return self._rent()
            target = max(alive, key=lambda v: (v.busy_seconds, -v.id))
            if self.policy.endswith("Exceed") and not self.policy.endswith(
                "NotExceed"
            ):
                return target
            return target if self._fits_btu(target, duration) else self._rent()
        # AllPar*: "each parallel task to its own VM" reads dynamically
        # as *never queue a parallel task behind running work* — only
        # VMs idle right now are reusable, anything else means renting.
        # (The static scheduler excludes whole levels instead; online,
        # a same-level task that already finished leaves its VM free
        # with no parallelism lost.)
        lvl = self.levels[task_id]
        now = self.sim.now
        if self.level_sizes[lvl] > 1:
            candidates = [vm for vm in alive if vm.free_at <= now + 1e-9]
        else:
            pred_vm = self._largest_pred_vm(task_id)
            candidates = [pred_vm] if pred_vm is not None and not pred_vm.dead else []
        if self.policy == "AllParNotExceed":
            candidates = [vm for vm in candidates if self._fits_btu(vm, duration)]
        if not candidates:
            return self._rent()
        pred_vm = self._largest_pred_vm(task_id)
        if pred_vm is not None and pred_vm in candidates:
            return pred_vm
        return max(candidates, key=lambda v: (v.busy_seconds, -v.id))

    def _largest_pred_vm(self, task_id: str) -> Optional[_OnlineVM]:
        preds = [p for p in self.workflow.predecessors(task_id) if p in self.task_vm]
        if not preds:
            return None
        largest = max(
            preds, key=lambda p: (self.task_finish[p] - self.task_start[p], p)
        )
        return self.fleet[self.task_vm[largest]]

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_ready(self, task_id: str) -> None:
        now = self.sim.now
        planned = self.platform.runtime(self.workflow.task(task_id), self.itype)
        if task_id in self._force_fresh:
            self._force_fresh.discard(task_id)
            vm = self._rent(self._force_purchase.pop(task_id, None))
        else:
            vm = self._select_vm(task_id, planned)
        vm.levels.add(self.levels[task_id])
        # input staging: the largest predecessor transfer, paid after
        # placement (destination only now known)
        transfer = 0.0
        for pred in self.workflow.predecessors(task_id):
            same = self.task_vm[pred] == vm.id
            dt = self.platform.transfer_time(
                self.workflow.data_gb(pred, task_id),
                self.fleet[self.task_vm[pred]].itype,
                vm.itype,
                same_vm=same,
            )
            transfer = max(transfer, dt)
        self._execute(task_id, vm, now + transfer)

    def _execute(self, task_id: str, vm: _OnlineVM, earliest: float) -> None:
        """Reserve and run the next attempt of *task_id* on *vm*."""
        start = max(earliest, vm.free_at)
        duration = self.platform.runtime(self.workflow.task(task_id), vm.itype)
        if self.runtime_fn is not None:
            duration = self.runtime_fn(task_id, duration)
            if duration < 0:
                raise SimulationError("runtime_fn returned a negative duration")
        if self._ckpt:
            # resume from the state checkpointed at a reclamation
            # warning: only the remainder runs, plus the restore cost
            done = self._ckpt.pop(task_id, 0.0)
            if done > 0:
                assert self.recovery is not None
                duration = (
                    max(duration - done, 0.0) + self.recovery.restart_cost_seconds
                )
        finish = start + duration
        vm.free_at = finish
        vm.busy_seconds += duration
        # the reservation moved the VM's free/busy state: re-index it
        # (expiry lower bound, busy rank, free pool) in the manager
        self._fleet_mgr.note_use(vm)
        prev = self.task_vm.get(task_id)
        key = self._roster_key(task_id)
        if prev is not None and prev != vm.id:
            # re-placement after a failure: leave the old VM's roster
            old = self.fleet[prev]
            if key in old.tasks:
                old.tasks.remove(key)
        if key not in vm.tasks:
            vm.tasks.append(key)
        self.task_vm[task_id] = vm.id
        self.task_start[task_id] = start
        self.task_finish[task_id] = finish
        self.events.append(TraceEvent(start, "task_start", task_id, f"vm{vm.id}"))
        attempt = self._attempt.get(task_id, 1)
        frac = (
            self.fault_plan.task_attempt(task_id, attempt)
            if self.fault_plan is not None
            else None
        )
        if frac is None:
            self.sim.at(
                finish, lambda a=attempt: self._on_finish(task_id, a), f"end:{task_id}"
            )
        else:
            # the attempt dies partway; the reservation is held anyway
            # (the slot was committed at placement)
            wasted = frac * duration
            self.sim.at(
                start + wasted,
                lambda a=attempt, w=wasted: self._on_task_fail(task_id, a, w),
                f"fail:{task_id}",
            )

    def _on_finish(self, task_id: str, attempt: int = 0) -> None:
        if attempt and attempt != self._attempt.get(task_id, 1):
            return  # attempt superseded by a VM crash
        vm = self.fleet[self.task_vm[task_id]]
        if vm.crashed:
            return  # the crash already failed this attempt
        self._completed.add(task_id)
        vm.useful_seconds += self.task_finish[task_id] - self.task_start[task_id]
        self.events.append(
            TraceEvent(self.sim.now, "task_end", task_id, f"vm{self.task_vm[task_id]}")
        )
        for succ in self.workflow.successors(task_id):
            self._pending[succ] -= 1
            if self._pending[succ] == 0:
                self.sim.at(self.sim.now, lambda s=succ: self._on_ready(s), f"ready:{succ}")
        if self.on_complete is not None and len(self._completed) == len(self._pending):
            self.on_complete()

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _recover(self, task_id: str, vm: _OnlineVM, reason: str) -> None:
        """Consult the recovery policy for one failed attempt and
        schedule the re-dispatch."""
        assert self.recovery is not None and self.stats is not None
        now = self.sim.now
        attempt = self._attempt.get(task_id, 1)
        failure = FailureEvent(
            task_id=task_id,
            vm_id=vm.id,
            attempt=attempt,
            time=now,
            reason=reason,
            vm_alive=not vm.dead,
            purchase=vm.purchase,
        )
        action = self.recovery.decide(failure)
        line = f"{action.kind}:{task_id}@{now:.3f}"
        if action.tag:
            line += f"[{action.tag}]"
            self.stats.rebids += 1
        self.stats.decisions.append(line)
        if action.kind == "abort":
            raise FaultError(
                f"task {task_id!r} failed {attempt} times; recovery gave up"
            )
        self._attempt[task_id] = attempt + 1
        if action.kind == "retry" and not vm.dead:
            # same VM, inputs staged: wait out the backoff (the slot
            # reservation makes the start no earlier than vm.free_at)
            self.stats.retries += 1
            self.sim.after(
                action.delay,
                lambda t=task_id, v=vm, a=attempt + 1: self._retry(t, v, a),
                f"retry:{task_id}",
            )
            return
        if action.kind == "resubmit" or (action.kind == "retry" and vm.dead):
            self.stats.resubmits += 1
            self._force_fresh.add(task_id)
            if action.purchase is not None:
                # the bidding decision rides to the replacement rental
                self._force_purchase[task_id] = action.purchase
        else:  # replan: the online policy re-places against the fleet
            self.stats.replans += 1
        self.sim.after(
            action.delay, lambda t=task_id: self._on_ready(t), f"ready:{task_id}"
        )

    def _retry(self, task_id: str, vm: _OnlineVM, attempt: int) -> None:
        if attempt != self._attempt.get(task_id, 1):
            return  # a crash re-dispatched the task meanwhile
        if vm.dead:
            return  # likewise: the crash handler owns the re-dispatch
        self._execute(task_id, vm, self.sim.now)

    def _on_task_fail(self, task_id: str, attempt: int, wasted: float) -> None:
        if attempt != self._attempt.get(task_id, 1):
            return
        assert self.stats is not None
        vm = self.fleet[self.task_vm[task_id]]
        if vm.crashed:
            return
        self.stats.task_failures += 1
        self.stats.wasted_task_seconds += wasted
        self.events.append(
            TraceEvent(
                self.sim.now, "task_fail", task_id, f"vm{vm.id}", f"attempt:{attempt}"
            )
        )
        self._recover(task_id, vm, "task")

    def _on_vm_crash(self, vm: _OnlineVM, preempt: bool = False) -> None:
        if vm.dead or vm.crashed:
            return  # released before the crash would have hit
        assert self.stats is not None
        now = self.sim.now
        self._fleet_mgr.mark_crashed(vm, now)
        vm.preempted = preempt
        if preempt:
            self.stats.preemptions += 1
            self.events.append(TraceEvent(now, "vm_preempt", "", f"vm{vm.id}"))
        else:
            self.stats.vm_crashes += 1
            self.events.append(TraceEvent(now, "vm_crash", "", f"vm{vm.id}"))
        self._fleet_mgr.notify_crash(vm)

    def _on_spot_warning(self, vm: _OnlineVM) -> None:
        """The provider's reclamation warning for a VM this run rented:
        count it and fan it out so every run checkpoints its work."""
        if vm.dead or vm.crashed:
            return
        assert self.stats is not None
        self.stats.grace_warnings += 1
        self.events.append(
            TraceEvent(self.sim.now, "spot_warning", "", f"vm{vm.id}")
        )
        self._fleet_mgr.notify_warning(vm)

    def _checkpoint_victims(self, vm: FleetVM) -> None:
        """Checkpoint this run's attempts running on *vm* at a warning
        (when the recovery policy opts in)."""
        assert self.recovery is not None
        if not self.recovery.checkpoint_on_warning:
            return
        now = self.sim.now
        for tid in self._own_reservations(vm):
            started = self.task_start.get(tid)
            if started is None or started > now:
                continue  # reserved but not yet running
            done = min(now, self.task_finish[tid]) - started
            if done > 0:
                self._ckpt[tid] = done

    def _own_reservations(self, vm: FleetVM) -> List[str]:
        """This run's unfinished reservations on *vm*, roster order."""
        prefix = f"{self.run_name}:" if self.run_name else ""
        out = []
        for entry in vm.tasks:
            if prefix:
                if not entry.startswith(prefix):
                    continue
                tid = entry[len(prefix):]
            else:
                tid = entry
            if tid in self._pending and self.task_vm.get(tid) == vm.id:
                if tid not in self._completed:
                    out.append(tid)
        return out

    def _reclaim_crash_victims(self, vm: FleetVM) -> None:
        """Fail and re-dispatch *this run's* unfinished reservations on
        a crashed VM (shared fleets host tasks of many runs — each
        attached executor reclaims only its own roster entries)."""
        assert self.stats is not None
        now = self.sim.now
        reason = "spot_preempt" if vm.preempted else "vm_crash"
        for tid in self._own_reservations(vm):
            started = self.task_start.get(tid, now)
            wasted = max(min(now, self.task_finish[tid]) - started, 0.0)
            if tid in self._ckpt:
                # checkpointed progress is not lost to the reclamation
                wasted = max(wasted - self._ckpt[tid], 0.0)
            self.stats.task_failures += 1
            self.stats.wasted_task_seconds += wasted
            # reclaim the voided reservation from the busy accounting
            vm.busy_seconds -= self.task_finish[tid] - started
            vm.busy_seconds += max(min(now, self.task_finish[tid]) - started, 0.0)
            self.events.append(
                TraceEvent(now, "task_fail", tid, f"vm{vm.id}", reason)
            )
            self._recover(tid, vm, reason)

    # ------------------------------------------------------------------
    # observability (only reached when tracing/metrics were requested)
    # ------------------------------------------------------------------
    def _emit_trace(self) -> None:
        """Sim-time VM rent windows and task spans for the Chrome trace."""
        btu = self.platform.btu_seconds
        run = self.tracer.next_run()
        for vm in self.fleet:
            end = vm.crashed_at if vm.crashed else max(vm.free_at, vm.horizon(btu))
            tid = f"run{run}:vm{vm.id}"
            self.tracer.complete(
                f"rent:vm{vm.id}",
                vm.started_at,
                max(end - vm.started_at, 0.0),
                tid=tid,
                cat="sim.vm",
                itype=vm.itype.name,
            )
            if vm.crashed:
                self.tracer.instant(
                    "vm_crash", ts=vm.crashed_at, tid=tid, cat="sim.fault"
                )
        for task_id, start in self.task_start.items():
            tid = f"run{run}:vm{self.task_vm[task_id]}"
            self.tracer.complete(
                task_id,
                start,
                self.task_finish[task_id] - start,
                tid=tid,
                cat="sim.task",
            )
        for ev in self.events:
            if ev.kind in ("task_fail", "vm_boot_fail", "vm_preempt", "spot_warning"):
                self.tracer.instant(
                    ev.kind,
                    ts=ev.time,
                    tid=f"run{run}:{ev.vm}" if ev.vm else "main",
                    cat="sim.fault",
                    task=ev.task_id,
                )
        self.tracer.counter(
            "sim.makespan_seconds", max(self.task_finish.values(), default=0.0)
        )

    def _emit_metrics(self) -> None:
        assert self.metrics is not None
        billing = self.platform.billing
        btus = 0
        for vm in self.fleet:
            end = vm.crashed_at if vm.crashed else vm.free_at
            btus += billing.btus(max(end - vm.started_at, 0.0))
        self.metrics.inc("online.runs")
        self.metrics.inc("online.vms_rented", len(self.fleet))
        self.metrics.inc("online.btus_billed", btus)
        self.metrics.inc("online.tasks_executed", len(self.task_finish))
        self.metrics.inc("sim.events_processed", self.sim.processed_events)
        self.metrics.inc(
            "sim.simulated_seconds", max(self.task_finish.values(), default=0.0)
        )
        if self.stats is not None:
            self.metrics.inc("faults.task_failures", self.stats.task_failures)
            self.metrics.inc("faults.vm_crashes", self.stats.vm_crashes)
            self.metrics.inc("faults.boot_failures", self.stats.boot_failures)
            self.metrics.inc("recovery.tasks_retried", self.stats.retries)
            self.metrics.inc("recovery.tasks_resubmitted", self.stats.resubmits)
            self.metrics.inc("recovery.replans", self.stats.replans)
            # market counters only when the processes actually fired, so
            # zero-market runs keep their historical counter keys
            if self.stats.preemptions:
                self.metrics.inc("faults.preemptions", self.stats.preemptions)
            if self.stats.grace_warnings:
                self.metrics.inc("faults.grace_warnings", self.stats.grace_warnings)
            if self.stats.rebids:
                self.metrics.inc("recovery.rebids", self.stats.rebids)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the entry-task ready events.  On a shared simulator
        the caller owns the event loop; entry tasks released in the past
        become ready *now* (the clock never rewinds)."""
        for tid in self.workflow.entry_tasks():
            at = max(self.release_times.get(tid, 0.0), self.sim.now)
            self.sim.at(at, lambda t=tid: self._on_ready(t), f"ready:{tid}")

    def run(self) -> OnlineResult:
        self.start()
        with self.tracer.span(
            "online.run", cat="executor", workflow=self.workflow.name, policy=self.policy
        ):
            self.sim.run()
        return self.finish()

    def finish(self) -> OnlineResult:
        """Validate completion and bill the fleet.  Private-fleet only:
        the totals span *every* VM in the manager, so on a shared fleet
        the service loop does the billing instead (per owner)."""
        missing = [t for t in self.workflow.task_ids if t not in self.task_finish]
        if missing:
            raise SimulationError(f"online run never completed: {missing}")
        billing = self.platform.billing
        rent = 0.0
        idle = 0.0
        for vm in self.fleet:
            # a crashed VM stops accruing rent at the crash, but the
            # started BTU is still billed in full (the ceil below)
            end = vm.crashed_at if vm.crashed else vm.free_at
            uptime = end - vm.started_at
            if self.market is not None and vm.purchase is not None:
                assert self.fault_plan is not None
                cost = self.market.vm_cost(
                    billing,
                    self.fault_plan.seed,
                    vm.started_at,
                    uptime,
                    vm.itype,
                    self.region,
                    vm.purchase,
                )
            else:
                cost = billing.vm_cost(uptime, vm.itype, self.region)
            paid = billing.paid_seconds(uptime)
            rent += cost
            idle += paid - vm.busy_seconds
            if self.stats is not None:
                self.stats.paid_seconds += paid
                self.stats.realized_cost += cost
                self.stats.wasted_btu_seconds += paid - vm.useful_seconds
        if self.tracer.enabled:
            self._emit_trace()
        if self.metrics is not None:
            self._emit_metrics()
        return OnlineResult(
            makespan=max(self.task_finish.values()),
            rent_cost=rent,
            idle_seconds=idle,
            vm_count=len(self.fleet),
            task_start=dict(self.task_start),
            task_finish=dict(self.task_finish),
            task_vm=dict(self.task_vm),
            # vm_stop events carry their horizon time but are observed at
            # the next reap; sort so the trace reads chronologically
            events=sorted(self.events, key=lambda e: e.time),
            faults=self.stats,
        )


def online_to_schedule(
    result: OnlineResult,
    workflow: Workflow,
    platform: CloudPlatform,
    itype: InstanceType | None = None,
    region: Region | None = None,
):
    """Rebuild a noise-free online run as a :class:`Schedule`, opening
    up every schedule analysis (Gantt, explain, utilization, bounds) to
    online results.

    Only valid when the run used exact runtimes (no ``runtime_fn``):
    realized durations must equal ``work / speedup`` or the conversion
    raises, because a :class:`Schedule` certifies exactly that.
    """
    from repro.cloud.vm import VM as CloudVM
    from repro.core.schedule import Schedule

    itype = itype or platform.itype("small")
    region = region or platform.default_region
    by_vm: Dict[int, List[str]] = {}
    for tid, vm_id in result.task_vm.items():
        by_vm.setdefault(vm_id, []).append(tid)
    vms = []
    for vm_id in sorted(by_vm):
        vm = CloudVM(id=len(vms), itype=itype, region=region)
        for tid in sorted(by_vm[vm_id], key=lambda t: result.task_start[t]):
            start = result.task_start[tid]
            duration = result.task_finish[tid] - start
            expected = platform.runtime(workflow.task(tid), itype)
            if abs(duration - expected) > 1e-6 * max(1.0, expected):
                raise SimulationError(
                    f"cannot convert noisy online run: {tid!r} ran "
                    f"{duration:.3f}s, nominal {expected:.3f}s"
                )
            vm.place(tid, start, duration)
        vms.append(vm)
    return Schedule(
        workflow=workflow,
        platform=platform,
        vms=vms,
        algorithm="online",
        provisioning="online",
    ).validate()


@removed_kwargs(faults="fault_plan", recovery_policy="recovery")
def run_online(
    workflow: Workflow,
    platform: CloudPlatform,
    policy: str = "StartParNotExceed",
    itype: InstanceType | None = None,
    region: Region | None = None,
    runtime_fn: Callable[[str, float], float] | None = None,
    fault_plan: FaultPlan | None = None,
    recovery: "str | RecoveryPolicy | None" = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> OnlineResult:
    """Convenience wrapper: build and run an online executor."""
    return OnlineCloudExecutor(
        workflow,
        platform,
        policy=policy,
        itype=itype or platform.itype("small"),
        region=region,
        runtime_fn=runtime_fn,
        fault_plan=fault_plan,
        recovery=recovery,
        tracer=tracer,
        metrics=metrics,
    ).run()
