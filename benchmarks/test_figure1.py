"""Figure 1 — the five provisioning policies on the CSTEM sub-workflow
(one entry task + six children): VM count, cost, makespan, idle."""

from benchmarks.conftest import save_artifact
from repro.experiments.figures import figure1_rows, render_figure1


def test_figure1(benchmark, platform, artifact_dir):
    rows = benchmark(figure1_rows, platform)
    by_policy = {r[0]: r for r in rows}
    # paper narrative: OneVMperTask rents the most VMs and wastes the
    # most idle; single entry task => StartParExceed uses exactly one VM
    assert by_policy["OneVMperTask"][1] == 7
    assert by_policy["StartParExceed"][1] == 1
    idle = {name: r[5] for name, r in by_policy.items()}
    assert idle["OneVMperTask"] == max(idle.values())
    assert idle["StartParExceed"] == min(idle.values())
    save_artifact(artifact_dir, "figure1.txt", render_figure1(platform))
