"""Columnar (numpy array) kernels for the scheduling hot paths.

The indexed kernels of DESIGN.md §9 made 50k-task runs *practical*
(~3-4 s/policy); this package makes them *fast* (~1 s) by abandoning
per-object traversal entirely on large DAGs: the workflow becomes a CSR
adjacency + per-task vectors (:mod:`repro.kernels.columnar`), ranking
and level sweeps become vectorized level-synchronous passes, and the
``AllPar*``/``StartPar*``/``OneVMperTask`` placement loops run against
flat per-VM arrays with a fused validation pass
(:mod:`repro.kernels.provision`).  :mod:`repro.kernels.replay` replaces
the discrete-event replay of ``verify`` runs with a recurrence sweep for
the homogeneous no-fault case.

Contract: **trace identity**.  Every columnar kernel must reproduce the
indexed kernels' output byte-for-byte — same VM ids and rent windows,
same task timing, same makespan/cost, same ``MetricsRegistry`` counters
— property-tested in ``tests/core/test_kernel_equivalence.py`` over the
seeded DAG zoo.  Small DAGs never take the columnar path at all: the
size-aware dispatch (:mod:`repro.kernels.dispatch`) keeps them on the
indexed kernels, byte-identical by construction.
"""

from repro.kernels.dispatch import (
    COLUMNAR_MIN_TASKS,
    columnar_disabled,
    columnar_threshold,
    force_columnar,
    use_columnar,
)

__all__ = [
    "COLUMNAR_MIN_TASKS",
    "columnar_disabled",
    "columnar_threshold",
    "force_columnar",
    "use_columnar",
]
