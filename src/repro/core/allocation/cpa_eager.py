"""CPA-Eager (paper Sect. III-B).

Starting from the OneVMperTask-small configuration, the strategy
"systematically increases the speed of VMs allocated to tasks lying on
the critical path", because the makespan is the sum of the execution
times along that path.  Upgrades proceed one catalog rung at a time on
the critical-path task with the longest current execution time, and a
candidate upgrade is committed only when the total rent stays within the
budget — ``budget_factor`` times the HEFT + OneVMperTask-small reference
cost (we read the paper's garbled budget sentence as 2x for CPA-Eager;
see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cloud.instance import SMALL, InstanceType, next_faster
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.upgrade import one_vm_schedule, total_rent_cost
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


@register_algorithm
class CpaEagerScheduler(SchedulingAlgorithm):
    name = "CPA-Eager"
    heterogeneous = True

    def __init__(self, budget_factor: float = 2.0) -> None:
        if budget_factor < 1.0:
            raise SchedulingError(
                f"budget_factor must be >= 1 (got {budget_factor}): the "
                "starting configuration already costs 1x the reference"
            )
        self.budget_factor = budget_factor

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        start_type = itype
        task_types: Dict[str, InstanceType] = {
            tid: start_type for tid in workflow.task_ids
        }
        budget = self.budget_factor * total_rent_cost(
            workflow, platform, task_types, region
        )
        blocked: Set[str] = set()

        while True:
            current = one_vm_schedule(workflow, platform, task_types, region)
            cp, _length = workflow.critical_path(
                exec_time=lambda t: platform.runtime(
                    workflow.task(t), task_types[t]
                ),
                transfer_time=lambda u, v: platform.transfer_time(
                    workflow.data_gb(u, v), task_types[u], task_types[v]
                ),
            )
            candidates = [
                t
                for t in cp
                if t not in blocked and next_faster(task_types[t]) is not None
            ]
            if not candidates:
                break
            target = max(
                candidates,
                key=lambda t: (platform.runtime(workflow.task(t), task_types[t]), t),
            )
            upgraded = next_faster(task_types[target])
            assert upgraded is not None
            trial = dict(task_types)
            trial[target] = upgraded
            if total_rent_cost(workflow, platform, trial, region) <= budget + 1e-9:
                task_types = trial
            else:
                # Costs are additive per task under OneVMperTask and other
                # upgrades only spend more, so an unaffordable task stays
                # unaffordable: block it permanently.
                blocked.add(target)
            del current  # rebuilt next iteration

        return one_vm_schedule(
            workflow, platform, task_types, region, algorithm=self.name
        ).validate()
