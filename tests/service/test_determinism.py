"""Cross-backend determinism and sweep-hardening guarantees.

A seeded service cell is a pure function of its fields, so the sweep
rollup must be byte-identical (as sorted JSON) no matter which
execution backend ran the cells — and a cell that exceeds
``cell_timeout`` must land in ``failure_summary()`` instead of hanging
the sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.service import (
    ServiceCell,
    build_requests,
    run_service_cell,
    run_service_sweep,
)

SWEEP_KWARGS = dict(
    policies=("StartParNotExceed",),
    admissions=("fifo", "fair"),
    seeds=2,
    count=10,
    tenants=3,
    mean_interarrival=600.0,
    max_concurrent=4,
)


def _bytes(sweep):
    return json.dumps(sweep.rollups(), sort_keys=True)


def test_rollup_is_byte_identical_across_backends(platform):
    reference = None
    for backend in ("serial", "thread", "process"):
        sweep = run_service_sweep(
            platform=platform, backend=backend, jobs=2, **SWEEP_KWARGS
        )
        assert sweep.complete, sweep.failure_summary()
        assert len(sweep.cells) == 4
        payload = _bytes(sweep)
        if reference is None:
            reference = payload
        else:
            assert payload == reference, f"{backend} diverged from serial"


def test_same_cell_twice_is_identical(platform):
    cell = ServiceCell(
        platform=platform,
        policy="AllParExceed",
        admission="fair",
        count=12,
        tenants=4,
        mean_interarrival=300.0,
        seed=42,
        max_concurrent=4,
    )
    first = run_service_cell(cell)
    second = run_service_cell(cell)
    assert json.dumps(first.rollup, sort_keys=True) == json.dumps(
        second.rollup, sort_keys=True
    )
    # the arrival stream itself replays identically
    a = build_requests(cell)
    b = build_requests(cell)
    assert [(r.tenant, r.name, r.arrival) for r in a] == [
        (r.tenant, r.name, r.arrival) for r in b
    ]


def test_timed_out_cell_reports_into_failure_summary(platform):
    # a cell far too large for a 1 ms budget: the guarded map must
    # convert the hang into a CellFailure, not block the sweep
    sweep = run_service_sweep(
        platform=platform,
        policies=("StartParNotExceed",),
        admissions=("fifo",),
        seeds=1,
        count=400,
        tenants=10,
        mean_interarrival=30.0,
        backend="serial",
        cell_timeout=0.001,
    )
    assert not sweep.complete
    assert sweep.cells == []
    summary = sweep.failure_summary()
    assert "StartParNotExceed/fifo#s0" in summary
    assert "TimeoutError" in summary


def test_sweep_rejects_empty_axes(platform):
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="at least one"):
        run_service_sweep(platform=platform, policies=())
