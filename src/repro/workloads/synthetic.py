"""Additional workload models for the future-work sweeps: per-category
scaling (keep a generator's relative task weights but stretch them) and
explicit lookup tables."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.workloads.base import ExecutionTimeModel
from repro.workflows.dag import Workflow


class CategoryScaledModel(ExecutionTimeModel):
    """Scale each task's built-in work by a per-category factor.

    Unknown categories fall back to *default_scale*; useful for "make the
    mappers 10x heavier" style what-if studies while preserving shape.
    """

    name = "category-scaled"

    def __init__(self, scales: Mapping[str, float], default_scale: float = 1.0) -> None:
        for cat, s in scales.items():
            if s <= 0:
                raise ValueError(f"scale for category {cat!r} must be positive")
        if default_scale <= 0:
            raise ValueError("default_scale must be positive")
        self.scales = dict(scales)
        self.default_scale = default_scale

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        return {
            t.id: t.work * self.scales.get(t.category, self.default_scale)
            for t in wf.tasks
        }


class TableModel(ExecutionTimeModel):
    """Explicit per-task runtimes, e.g. replayed from a trace."""

    name = "table"

    def __init__(self, table: Mapping[str, float], default: float | None = None) -> None:
        for tid, w in table.items():
            if w <= 0:
                raise ValueError(f"runtime for {tid!r} must be positive")
        if default is not None and default <= 0:
            raise ValueError("default runtime must be positive")
        self.table = dict(table)
        self.default = default

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for tid in wf.task_ids:
            if tid in self.table:
                out[tid] = self.table[tid]
            elif self.default is not None:
                out[tid] = self.default
            else:
                raise KeyError(f"no runtime for task {tid!r} and no default")
        return out
