"""Tests for the paper's workflow generators (Fig. 2 shapes)."""

import pytest

from repro.errors import WorkflowError
from repro.workflows.generators import (
    cstem,
    fork_join,
    mapreduce,
    montage,
    random_layered,
    sequential,
)


class TestMontage:
    def test_default_is_papers_24_tasks(self):
        assert len(montage()) == 24

    def test_size_formula(self):
        for p in (2, 4, 6, 10):
            assert len(montage(p)) == 3 * p + 6

    def test_entry_tasks_are_projections(self):
        wf = montage(6)
        assert wf.entry_tasks() == [f"mProject_{i}" for i in range(6)]

    def test_single_exit(self):
        assert montage().exit_tasks() == ["mJPEG"]

    def test_cross_level_dependencies_exist(self):
        # mProject -> mBackground skips the diff/concat/bgmodel levels:
        # the "intermingled" structure the paper highlights.
        wf = montage()
        levels = wf.level_of()
        skips = [
            (u, v) for u, v, _ in wf.edges() if levels[v] - levels[u] > 1
        ]
        assert skips, "montage must have level-skipping edges"

    def test_diffs_overlap_adjacent_projections(self):
        wf = montage(4)
        assert wf.predecessors("mDiffFit_0") == ["mProject_0", "mProject_1"]
        # cyclic wrap-around on the last diff
        assert wf.predecessors("mDiffFit_3") == ["mProject_0", "mProject_3"]

    def test_max_parallelism_equals_projections(self):
        assert montage(6).max_parallelism() == 6

    def test_too_few_projections(self):
        with pytest.raises(WorkflowError):
            montage(1)

    def test_edges_carry_data(self):
        wf = montage()
        assert wf.data_gb("mAdd", "mShrink") > 0


class TestCstem:
    def test_single_entry(self):
        assert cstem().entry_tasks() == ["init"]

    def test_several_final_tasks(self):
        wf = cstem(finals=3)
        assert len(wf.exit_tasks()) == 3

    def test_mostly_sequential(self):
        wf = cstem()
        # "relative sequential nature": most levels are singletons
        singleton_levels = sum(1 for lvl in wf.levels() if len(lvl) == 1)
        assert singleton_levels >= len(wf.levels()) / 2

    def test_widest_stage_is_fanout(self):
        assert cstem(fanout=6).max_parallelism() == 6

    def test_parameter_validation(self):
        with pytest.raises(WorkflowError):
            cstem(fanout=0)
        with pytest.raises(WorkflowError):
            cstem(backbone=0)
        with pytest.raises(WorkflowError):
            cstem(finals=0)


class TestMapReduce:
    def test_default_size(self):
        assert len(mapreduce()) == 24  # 1 + 10 + 10 + 2 + 1

    def test_two_sequential_map_phases(self):
        wf = mapreduce(mappers=4, reducers=1)
        assert wf.predecessors("map2_2") == ["map1_2"]

    def test_shuffle_is_complete_bipartite(self):
        wf = mapreduce(mappers=3, reducers=2)
        for j in range(2):
            assert wf.predecessors(f"reduce_{j}") == [f"map2_{i}" for i in range(3)]

    def test_single_entry_and_exit(self):
        wf = mapreduce()
        assert wf.entry_tasks() == ["split"]
        assert wf.exit_tasks() == ["merge"]

    def test_parallelism_is_mapper_count(self):
        assert mapreduce(mappers=7).max_parallelism() == 7

    def test_parameter_validation(self):
        with pytest.raises(WorkflowError):
            mapreduce(mappers=0)
        with pytest.raises(WorkflowError):
            mapreduce(reducers=0)


class TestSequential:
    def test_length(self):
        assert len(sequential(5)) == 5

    def test_pure_chain(self):
        wf = sequential(6)
        assert wf.max_parallelism() == 1
        assert len(wf.levels()) == 6

    def test_single_task_chain(self):
        wf = sequential(1)
        assert wf.entry_tasks() == wf.exit_tasks() == ["step_000"]

    def test_zero_length_rejected(self):
        with pytest.raises(WorkflowError):
            sequential(0)


class TestForkJoin:
    def test_task_count(self):
        # source + stages*(width + join)
        assert len(fork_join(width=4, stages=2)) == 1 + 2 * 5

    def test_width(self):
        assert fork_join(width=8, stages=1).max_parallelism() == 8

    def test_joins_serialize_stages(self):
        wf = fork_join(width=2, stages=2)
        assert wf.predecessors("stage1_task0") == ["join_0"]

    def test_validation(self):
        with pytest.raises(WorkflowError):
            fork_join(width=0)


class TestRandomLayered:
    def test_reproducible(self):
        a = random_layered(seed=5)
        b = random_layered(seed=5)
        assert a.task_ids == b.task_ids
        assert a.edges() == b.edges()
        assert [t.work for t in a.tasks] == [t.work for t in b.tasks]

    def test_different_seeds_differ(self):
        a = random_layered(seed=1)
        b = random_layered(seed=2)
        assert a.edges() != b.edges() or [t.work for t in a.tasks] != [
            t.work for t in b.tasks
        ]

    def test_is_dag_and_connected_layers(self):
        wf = random_layered(layers=6, seed=3)
        wf.validate()
        # every non-entry task has at least one predecessor
        for tid in wf.task_ids:
            if tid not in wf.entry_tasks():
                assert wf.predecessors(tid)

    def test_layer_count(self):
        wf = random_layered(layers=4, width_range=(2, 2), seed=0)
        assert len(wf.levels()) == 4

    def test_validation(self):
        with pytest.raises(WorkflowError):
            random_layered(layers=0)
        with pytest.raises(WorkflowError):
            random_layered(width_range=(3, 1))
        with pytest.raises(WorkflowError):
            random_layered(edge_density=1.5)
