"""Bag-of-tasks generator.

The paper positions workflows against the already-studied bag-of-tasks
(BoT) case, where provisioning effects were first demonstrated ([3]-[5]).
A BoT is simply an edgeless workflow; having it as a first-class shape
lets the same five policies be compared on the workload class the prior
work used — every task is an *initial* task, so StartPar\\* degenerate to
OneVMperTask and only the AllPar policies can pack.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def bag_of_tasks(n: int = 20, work: float = 1000.0, name: str = "bag_of_tasks") -> Workflow:
    """*n* independent tasks of *work* reference seconds each."""
    if n < 1:
        raise WorkflowError("bag_of_tasks needs n >= 1")
    if work <= 0:
        raise WorkflowError("work must be positive")
    wf = Workflow(name)
    for i in range(n):
        wf.add_task(Task(f"job_{i:03d}", work, "job"))
    return wf.validate()
