"""Minimal deterministic discrete-event engine.

The engine advances a clock through an :class:`~repro.simulator.events.
EventQueue`; actions scheduled during processing land back in the same
queue.  Time never moves backwards, simultaneous events fire in
scheduling order, and a configurable event budget guards against
accidental infinite loops in user actions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.obs.tracer import Tracer, ensure_tracer
from repro.simulator.events import EventQueue


class Simulator:
    """The clock + queue core shared by all simulations.

    *tracer*, when given, receives an ``engine.run`` wall-clock span and
    a ``sim.events_processed`` counter sample per :meth:`run` call; the
    default :data:`~repro.obs.tracer.NULL_TRACER` keeps the event loop
    untouched (the emission happens outside it either way).
    """

    def __init__(
        self, max_events: int = 10_000_000, tracer: Optional[Tracer] = None
    ) -> None:
        if max_events <= 0:
            raise SimulationError("max_events must be positive")
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = max_events
        self._processed = 0
        self._running = False
        self.tracer = ensure_tracer(tracer)

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events still queued — the service loop's liveness probe."""
        return len(self._queue)

    def at(self, time: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule *action* at absolute *time* (>= now)."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"event {label!r} scheduled at {time} but clock is at {self._now}"
            )
        self._queue.push(max(time, self._now), action, label)

    def after(self, delay: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule *action* *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        self.at(self._now + delay, action, label)

    def run(self, until: float | None = None) -> float:
        """Process events (up to *until*, inclusive); returns final time."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        span = (
            self.tracer.span("engine.run", cat="engine")
            if self.tracer.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    break
                ev = self._queue.pop()
                self._now = ev.time
                self._processed += 1
                if self._processed > self._max_events:
                    raise SimulationError(
                        f"event budget exhausted after {self._max_events} events "
                        f"(runaway simulation?); last event {ev.label!r} "
                        f"at t={ev.time:.6f}"
                    )
                ev.action()
        finally:
            self._running = False
            if span is not None:
                span.__exit__(None, None, None)
                self.tracer.counter("sim.events_processed", self._processed)
        if until is not None:
            self._now = max(self._now, until)
        return self._now
