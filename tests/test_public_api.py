"""Smoke tests for the package's public surface."""

import repro


class TestPublicApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing symbol {name!r}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_exception_hierarchy(self):
        assert issubclass(repro.WorkflowError, repro.ReproError)
        assert issubclass(repro.WorkflowParseError, repro.WorkflowError)
        assert issubclass(repro.BillingError, repro.PlatformError)
        assert issubclass(repro.InvalidScheduleError, repro.SchedulingError)
        assert issubclass(repro.BudgetExceededError, repro.SchedulingError)
        for exc in (
            repro.PlatformError,
            repro.SchedulingError,
            repro.SimulationError,
            repro.ExperimentError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_quickstart_docstring_flow(self):
        """The module docstring's example must actually run."""
        wf = repro.montage()
        platform = repro.CloudPlatform.ec2()
        sched = repro.HeftScheduler("StartParNotExceed").schedule(
            wf, platform, itype=platform.itype("medium")
        )
        assert sched.makespan > 0 and sched.total_cost > 0
        repro.simulate_schedule(sched)

    def test_registries_complete(self):
        from repro.core.allocation.base import SCHEDULING_ALGORITHMS
        from repro.core.provisioning.base import PROVISIONING_POLICIES

        assert len(PROVISIONING_POLICIES) == 5
        expected = {
            "HEFT",
            "AllPar",
            "CPA-Eager",
            "GAIN",
            "AllPar1LnS",
            "AllPar1LnSDyn",
            "RoundRobin",
            "LeastLoad",
            "SHEFT-Deadline",
            "HEFT-Classic",
        }
        assert expected <= set(SCHEDULING_ALGORITHMS)
