"""Comparison bench: the paper's elastic provisioning policies vs the
fixed-pool baselines commercial clouds used (Sect. II: Round Robin on
EC2, Least-Load).  Elastic AllParExceed should dominate a fixed pool of
the same *average* size on makespan at comparable cost."""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.allocation.baselines import LeastLoadScheduler, RoundRobinScheduler
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.experiments.scenarios import scenario
from repro.util.tables import format_table
from repro.workflows.generators import mapreduce


def _study(platform):
    wf = scenario("pareto", platform).apply(mapreduce(), SWEEP_SEED)
    strategies = {
        "RoundRobin(4)": RoundRobinScheduler(pool_size=4),
        "LeastLoad(4)": LeastLoadScheduler(pool_size=4),
        "StartParExceed": HeftScheduler("StartParExceed"),
        "AllParExceed": AllParScheduler(exceed=True),
        "OneVMperTask": HeftScheduler("OneVMperTask"),
    }
    return {
        name: algo.schedule(wf, platform)
        for name, algo in strategies.items()
    }


def test_elastic_vs_fixed_pool(benchmark, platform, artifact_dir):
    scheds = benchmark(_study, platform)

    # elastic parallel provisioning beats both fixed pools on makespan
    for pool in ("RoundRobin(4)", "LeastLoad(4)"):
        assert scheds["AllParExceed"].makespan < scheds[pool].makespan

    # least-load is never worse than blind round-robin on makespan here
    assert (
        scheds["LeastLoad(4)"].makespan <= scheds["RoundRobin(4)"].makespan * 1.2
    )

    save_artifact(
        artifact_dir,
        "baseline_comparison.txt",
        format_table(
            ["strategy", "makespan s", "cost $", "idle s", "VMs"],
            [
                (n, s.makespan, s.total_cost, s.total_idle_seconds, s.vm_count)
                for n, s in scheds.items()
            ],
            title="Elastic policies vs fixed-pool baselines (MapReduce, Pareto)",
        ),
    )
