"""Tests for the HCOC-style hybrid-cloud scheduler."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.cloud.region import private_region
from repro.core.allocation.hcoc import HcocScheduler
from repro.errors import SchedulingError
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import mapreduce, montage


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def workflow():
    return apply_model(mapreduce(mappers=6, reducers=2), ParetoModel(), seed=3)


class TestPrivateRegion:
    def test_zero_prices_allowed(self):
        r = private_region()
        assert r.price("small") == 0.0
        assert r.transfer_out_per_gb == 0.0


class TestHcoc:
    def test_loose_deadline_stays_private_and_free(self, workflow, platform):
        sched = HcocScheduler(deadline=float("inf"), private_pool=2).schedule(
            workflow, platform
        )
        assert sched.total_cost == 0.0
        assert {vm.region.name for vm in sched.vms} == {"private"}
        assert sched.vm_count <= 2
        simulate_schedule(sched, check=True)

    def test_tight_deadline_bursts_to_public(self, workflow, platform):
        free = HcocScheduler(deadline=float("inf"), private_pool=2).schedule(
            workflow, platform
        )
        deadline = free.makespan * 0.55
        sched = HcocScheduler(
            deadline=deadline, private_pool=2, best_effort=True
        ).schedule(workflow, platform)
        regions = {vm.region.name for vm in sched.vms}
        assert "us-east-virginia" in regions  # rented public capacity
        assert sched.makespan < free.makespan
        assert sched.total_cost > 0  # only public VMs are billed
        simulate_schedule(sched, check=True)

    def test_tighter_deadlines_cost_more(self, workflow, platform):
        free = HcocScheduler(deadline=float("inf"), private_pool=2).schedule(
            workflow, platform
        )
        costs = []
        for factor in (1.0, 0.8, 0.6):
            sched = HcocScheduler(
                deadline=free.makespan * factor, private_pool=2, best_effort=True
            ).schedule(workflow, platform)
            costs.append(sched.total_cost)
        assert costs[0] <= costs[1] <= costs[2]

    def test_infeasible_raises_unless_best_effort(self, workflow, platform):
        with pytest.raises(SchedulingError, match="deadline"):
            HcocScheduler(deadline=1.0, private_pool=1).schedule(workflow, platform)
        sched = HcocScheduler(
            deadline=1.0, private_pool=1, best_effort=True
        ).schedule(workflow, platform)
        # fully public fallback
        assert all(vm.region.name != "private" for vm in sched.vms)

    def test_deadline_met_when_feasible(self, workflow, platform):
        free = HcocScheduler(deadline=float("inf"), private_pool=2).schedule(
            workflow, platform
        )
        deadline = free.makespan * 0.7
        sched = HcocScheduler(deadline=deadline, private_pool=2).schedule(
            workflow, platform
        )
        assert sched.makespan <= deadline + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(SchedulingError):
            HcocScheduler(deadline=0.0)
        with pytest.raises(SchedulingError):
            HcocScheduler(private_pool=0)

    def test_montage_works_too(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=5)
        sched = HcocScheduler(
            deadline=float("inf"), private_pool=3
        ).schedule(wf, platform)
        sched.validate()
        simulate_schedule(sched, check=True)
