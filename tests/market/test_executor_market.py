"""Market behavior through the executors: preemption, grace warnings,
bidding-aware recovery, checkpointing, cold starts, and metrics."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.recovery import recovery_policy
from repro.experiments.config import strategy
from repro.market import (
    ConstantPrice,
    FallbackOnDemand,
    Market,
    RebidHigher,
    StepTracePrice,
    spot,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulator.executor import ScheduleExecutor, run_with_faults
from repro.simulator.faults import FaultPlan
from repro.simulator.online import run_online
from repro.workflows.generators import montage

PLATFORM = CloudPlatform.ec2()
#: one spike above a 0.5x bid between t=600 and t=4200
SPIKE = Market(
    StepTracePrice((0.0, 600.0, 4200.0), (0.3, 1.2, 0.3)), purchase=spot(0.5)
)


def spike_plan(seed=3):
    return FaultPlan(seed=seed, market=SPIKE)


def spike_sched(label="StartParNotExceed-s"):
    return strategy(label).run(montage(25), PLATFORM.with_market(SPIKE))


class TestStaticPreemption:
    def test_preemptions_fire_and_account(self):
        res = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        assert res.faults.preemptions > 0
        assert res.faults.grace_warnings == res.faults.preemptions
        assert res.faults.rebids > 0
        kinds = {e.kind for e in res.events}
        assert "vm_preempt" in kinds
        assert "spot_warning" in kinds
        assert "vm_crash" not in kinds  # price kills, not random crashes

    def test_rebid_decisions_tagged(self):
        res = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        tagged = [d for d in res.faults.decisions if "[rebid." in d]
        assert tagged and len(tagged) == res.faults.rebids

    def test_deterministic_across_runs(self):
        a = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        b = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        assert a.events == b.events
        assert a.faults.decisions == b.faults.decisions
        assert a.realized_cost == b.realized_cost

    def test_every_spot_rental_progresses_at_least_grace(self):
        # grace floor: even an underwater bid runs >= grace_seconds, so
        # the run terminates instead of thrashing
        res = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        assert all(t in res.task_finish for t in spike_sched().workflow.task_ids)

    def test_fallback_stops_the_bleeding(self):
        rebid = run_with_faults(spike_sched(), spike_plan(), recovery="rebid")
        fb = run_with_faults(spike_sched(), spike_plan(), recovery="fallback")
        # falling back to on-demand immediately caps preemptions at the
        # initial co-reclaimed fleet; re-bidding under the spike rebids
        # its replacements into the same spike at least as often
        assert fb.faults.preemptions <= rebid.faults.preemptions
        assert all("[rebid.fallback]" in d for d in fb.faults.decisions)


class TestBiddingRecoveryPolicies:
    @staticmethod
    def _preempt(purchase, attempt=1):
        from repro.core.recovery import FailureEvent

        return FailureEvent(
            task_id="t", vm_id=0, attempt=attempt, time=0.0,
            reason="spot_preempt", vm_alive=False, purchase=purchase,
        )

    def test_rebid_escalates_then_falls_back(self):
        pol = RebidHigher(step=2.0, max_bid=1.0)
        a1 = pol.on_task_failure(self._preempt(spot(0.4)))
        assert a1.purchase.bid_multiplier == pytest.approx(0.8)
        assert a1.tag == "rebid.higher"
        a2 = pol.on_task_failure(self._preempt(a1.purchase, attempt=2))
        assert not a2.purchase.is_spot
        assert a2.tag == "rebid.fallback"

    def test_fallback_always_on_demand(self):
        act = FallbackOnDemand().on_task_failure(self._preempt(spot(0.9)))
        assert not act.purchase.is_spot
        assert act.tag == "rebid.fallback"

    def test_non_preemption_delegates_to_base(self):
        from repro.core.recovery import FailureEvent

        pol = RebidHigher(base="retry")
        act = pol.on_task_failure(
            FailureEvent(
                task_id="t", vm_id=0, attempt=1, time=0.0,
                reason="task", vm_alive=True, purchase=spot(0.4),
            )
        )
        assert act.kind == "retry"
        assert act.tag == ""

    def test_policies_registered_lazily(self):
        assert recovery_policy("rebid").name == "rebid"
        assert recovery_policy("fallback").name == "fallback"

    def test_rebid_validation(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            RebidHigher(step=1.0)
        with pytest.raises(SchedulingError):
            RebidHigher(max_bid=0.0)


class TestCheckpointOnWarning:
    def test_checkpoint_reduces_waste(self):
        plain = run_with_faults(
            spike_sched(), spike_plan(), recovery=RebidHigher()
        )
        ckpt = run_with_faults(
            spike_sched(),
            spike_plan(),
            recovery=RebidHigher(
                checkpoint_on_warning=True, restart_cost_seconds=10.0
            ),
        )
        assert ckpt.faults.preemptions == plain.faults.preemptions
        assert (
            ckpt.faults.wasted_task_seconds < plain.faults.wasted_task_seconds
        )

    def test_checkpoint_online_too(self):
        wf = montage(25)
        plain = run_online(
            wf,
            PLATFORM.with_market(SPIKE),
            policy="StartParNotExceed",
            recovery=RebidHigher(),
            fault_plan=spike_plan(),
        )
        ckpt = run_online(
            wf,
            PLATFORM.with_market(SPIKE),
            policy="StartParNotExceed",
            recovery=RebidHigher(
                checkpoint_on_warning=True, restart_cost_seconds=10.0
            ),
            fault_plan=spike_plan(),
        )
        assert ckpt.faults.wasted_task_seconds < plain.faults.wasted_task_seconds


class TestOnlinePreemption:
    def test_preemptions_and_rebids_online(self):
        res = run_online(
            montage(25),
            PLATFORM.with_market(SPIKE),
            policy="StartParNotExceed",
            recovery="rebid",
            fault_plan=spike_plan(),
        )
        assert res.faults.preemptions > 0
        assert res.faults.grace_warnings == res.faults.preemptions
        assert res.faults.rebids > 0
        kinds = {e.kind for e in res.events}
        assert "vm_preempt" in kinds and "spot_warning" in kinds

    def test_online_deterministic(self):
        def run():
            return run_online(
                montage(25),
                PLATFORM.with_market(SPIKE),
                policy="StartParNotExceed",
                recovery="rebid",
                fault_plan=spike_plan(),
            )

        a, b = run(), run()
        assert a.events == b.events
        assert a.rent_cost == b.rent_cost
        assert a.faults.decisions == b.faults.decisions


class TestColdStarts:
    COLD = FaultPlan(
        seed=5,
        boot_cold_seconds=90.0,
        boot_delay_dist="deterministic",
    )

    def test_cold_start_delays_online_makespan(self):
        plat = CloudPlatform.ec2(boot_seconds=30.0, prebooted=False)
        base = run_online(montage(25), plat, policy="StartParNotExceed")
        cold = run_online(
            montage(25), plat, policy="StartParNotExceed", fault_plan=self.COLD
        )
        assert cold.makespan > base.makespan

    def test_warm_pool_softens_the_cold(self):
        plat = CloudPlatform.ec2(boot_seconds=30.0, prebooted=False)
        cold = run_online(
            montage(25), plat, policy="StartParNotExceed", fault_plan=self.COLD
        )
        import dataclasses

        warm_plan = dataclasses.replace(
            self.COLD, boot_warm_pool=8, boot_warm_seconds=2.0
        )
        warm = run_online(
            montage(25), plat, policy="StartParNotExceed", fault_plan=warm_plan
        )
        assert warm.makespan <= cold.makespan

    def test_cold_start_static_executor(self):
        plat = CloudPlatform.ec2(boot_seconds=30.0, prebooted=False)
        sched = strategy("StartParNotExceed-s").run(montage(25), plat)
        base = ScheduleExecutor(sched).run()
        cold = ScheduleExecutor(sched, fault_plan=self.COLD).run()
        assert cold.makespan > base.makespan
        cold2 = ScheduleExecutor(sched, fault_plan=self.COLD).run()
        assert cold.events == cold2.events


class TestMarketMetrics:
    def test_counters_emitted_on_market_runs(self):
        reg = MetricsRegistry()
        with reg.activate():  # decision counters use the ambient registry
            ScheduleExecutor(
                spike_sched(), fault_plan=spike_plan(), recovery="rebid",
                metrics=reg,
            ).run()
        d = reg.as_dict()
        counters = d.get("counters", d)
        flat = {str(k): v for k, v in counters.items()}
        assert flat.get("faults.preemptions", 0) > 0
        assert flat.get("faults.grace_warnings", 0) > 0
        assert flat.get("recovery.rebids", 0) > 0
        assert any(k.startswith("recovery.decision.rebid") for k in flat)

    def test_counters_identical_across_reruns(self):
        def counters():
            reg = MetricsRegistry()
            ScheduleExecutor(
                spike_sched(), fault_plan=spike_plan(), recovery="rebid",
                metrics=reg,
            ).run()
            return reg.as_dict()

        assert counters() == counters()
