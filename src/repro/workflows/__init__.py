"""Workflow (DAG) model, generators for the paper's four shapes, and
Pegasus-DAX / DOT interchange."""

from repro.workflows.task import Task
from repro.workflows.dag import Workflow
from repro.workflows.generators import (
    montage,
    cstem,
    mapreduce,
    sequential,
    fork_join,
    random_layered,
    epigenomics,
    cybershake,
    ligo,
    sipht,
    bag_of_tasks,
)
from repro.workflows.dax import parse_dax, parse_dax_string, to_dax
from repro.workflows.dot import to_dot
from repro.workflows.analysis import WorkflowProfile, profile, compare_profiles
from repro.workflows.transform import (
    chain_decomposition,
    merge_chains,
    transitive_reduction,
)

__all__ = [
    "Task",
    "Workflow",
    "montage",
    "cstem",
    "mapreduce",
    "sequential",
    "fork_join",
    "random_layered",
    "epigenomics",
    "cybershake",
    "ligo",
    "sipht",
    "bag_of_tasks",
    "parse_dax",
    "parse_dax_string",
    "to_dax",
    "to_dot",
    "WorkflowProfile",
    "profile",
    "compare_profiles",
    "chain_decomposition",
    "merge_chains",
    "transitive_reduction",
]
