"""Tests for utilization and parallelism profiles."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.utilization import parallelism_profile, utilization
from repro.workflows.generators import mapreduce, montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestParallelismProfile:
    def test_chain_profile_is_flat_one(self, platform):
        sched = HeftScheduler("StartParExceed").schedule(sequential(4), platform)
        profile = parallelism_profile(sched)
        counts = {c for _, c in profile[:-1]}
        assert counts == {1}
        assert profile[-1][1] == 0  # closes at zero

    def test_fan_profile_peaks_at_width(self, platform, fan7):
        sched = HeftScheduler("OneVMperTask").schedule(fan7, platform)
        profile = parallelism_profile(sched)
        assert max(c for _, c in profile) == 6

    def test_profile_times_monotone(self, platform):
        sched = AllParScheduler(exceed=True).schedule(mapreduce(), platform)
        profile = parallelism_profile(sched)
        times = [t for t, _ in profile]
        assert times == sorted(times)

    def test_counts_never_negative(self, platform, paper_workflow):
        sched = AllParScheduler(exceed=False).schedule(paper_workflow, platform)
        assert all(c >= 0 for _, c in parallelism_profile(sched))


class TestUtilization:
    def test_bounds(self, platform, paper_workflow):
        for policy in ("OneVMperTask", "StartParExceed"):
            rep = utilization(HeftScheduler(policy).schedule(paper_workflow, platform))
            assert 0 < rep.utilization <= 1.0
            assert all(0 < u <= 1.0 for u in rep.per_vm)
            assert rep.min_vm_utilization <= rep.max_vm_utilization

    def test_packing_beats_spreading(self, platform):
        wf = montage()
        packed = utilization(HeftScheduler("StartParExceed").schedule(wf, platform))
        spread = utilization(HeftScheduler("OneVMperTask").schedule(wf, platform))
        assert packed.utilization > spread.utilization

    def test_known_values_single_vm(self, platform):
        """3 x 1000 s back-to-back on one small VM: 3000/3600 busy."""
        sched = HeftScheduler("StartParExceed").schedule(sequential(3), platform)
        rep = utilization(sched)
        assert rep.utilization == pytest.approx(3000.0 / 3600.0)
        assert rep.peak_parallelism == 1
        assert rep.mean_parallelism == pytest.approx(1.0)

    def test_peak_matches_vm_demand(self, platform):
        wf = mapreduce(mappers=6, reducers=2)
        rep = utilization(HeftScheduler("OneVMperTask").schedule(wf, platform))
        assert rep.peak_parallelism == 6

    def test_idle_consistency_with_schedule(self, platform, paper_workflow):
        """1 - utilization recomputes the schedule's idle fraction."""
        sched = AllParScheduler(exceed=True).schedule(paper_workflow, platform)
        rep = utilization(sched)
        billing = platform.billing
        paid = sum(vm.paid_seconds(billing) for vm in sched.vms)
        assert (1 - rep.utilization) * paid == pytest.approx(
            sched.total_idle_seconds
        )
