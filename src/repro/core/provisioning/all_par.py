"""AllPar[Not]Exceed: full task-level parallelism (paper Sect. III-A).

Every *parallel* task — a task whose DAG level holds more than one task
— runs on its own VM: an existing VM not already claimed by a task of
the same level when one is free, a new rental otherwise.  *Sequential*
tasks (singleton levels) run on the VM of their largest predecessor,
keeping chains on one machine and costs down.  The *NotExceed* variant
additionally rents a new VM whenever the candidate's remaining BTU
cannot absorb the task; *Exceed* never rents for that reason.

Per the paper, renting one single-core VM per parallel task instead of a
multi-core VM is cost-neutral under EC2's cost-per-core pricing; only
global idle time differs.

Implementation: the historical kernel rescanned every VM's full task
list per placement (O(V·tasks) — see
:class:`~repro.core.provisioning.reference.AllParExceedReference`, the
preserved oracle).  This version runs against the
:class:`~repro.core.builder.ScheduleBuilder` indexes — the per-level
candidate pool and per-VM level sets — for O(log V) amortized
placements; the property tests assert the schedules are byte-identical.
"""

from __future__ import annotations

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy, register_policy


class _AllParBase(ProvisioningPolicy):
    exceed_btu: bool = True

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        require_fit = not self.exceed_btu
        metrics = builder.metrics
        if builder.level_size(task_id) > 1:
            # Parallel task: prefer the largest predecessor's VM when it
            # is a candidate, else the busiest candidate from the
            # level pool, else rent.
            pred_vm = builder.vm_of_largest_predecessor(task_id)
            if pred_vm is not None and builder.qualifies_for_level(
                task_id, pred_vm, require_fit
            ):
                if metrics is not None:
                    metrics.inc("provision.reuse_pred")
                return pred_vm
            chosen = builder.best_level_candidate(task_id, require_fit)
            if chosen is not None:
                if metrics is not None:
                    metrics.inc("provision.reuse_pool")
                return chosen
            if metrics is not None:
                metrics.inc("provision.rent")
            return builder.new_vm()
        # Sequential task: its largest predecessor's VM or a rental.
        pred_vm = builder.vm_of_largest_predecessor(task_id)
        if (
            pred_vm is not None
            and builder.is_reusable(task_id, pred_vm)
            and (not require_fit or builder.fits_in_btu(task_id, pred_vm))
        ):
            if metrics is not None:
                metrics.inc("provision.reuse_pred")
            return pred_vm
        if metrics is not None:
            metrics.inc("provision.rent")
        return builder.new_vm()


@register_policy
class AllParNotExceed(_AllParBase):
    name = "AllParNotExceed"
    exceed_btu = False


@register_policy
class AllParExceed(_AllParBase):
    name = "AllParExceed"
    exceed_btu = True
