"""Standard Workload Format (SWF) trace support.

The paper's Pareto runtime model comes from Feitelson's workload
modeling work; the same archive distributes real traces in SWF — one
job per line, 18 whitespace-separated fields, ``;`` comment headers.
This module reads the fields relevant here (job id, run time, requested
processors/time, status) and turns a trace into execution-time models:

* :func:`runtimes_from_swf` — the positive runtimes of completed jobs;
* :class:`SwfTraceModel` — an :class:`~repro.workloads.base.
  ExecutionTimeModel` that samples task runtimes from a trace's
  empirical distribution (with replacement, seeded);
* :func:`bag_from_swf` — the first *n* jobs as a bag-of-tasks workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.errors import WorkflowParseError
from repro.util.rng import ensure_rng
from repro.workloads.base import ExecutionTimeModel
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

#: SWF field indices (0-based) per the archive's definition
_JOB_ID = 0
_RUN_TIME = 3
_STATUS = 10

_MIN_FIELDS = 11


@dataclass(frozen=True)
class SwfJob:
    """One parsed SWF record (the fields this library uses)."""

    job_id: int
    runtime: float
    status: int

    @property
    def completed(self) -> bool:
        # status 1 = completed; -1 = unknown (kept, like most tools do)
        return self.status in (1, -1)


def parse_swf(text: str) -> List[SwfJob]:
    """Parse SWF text into job records; raises on malformed lines."""
    jobs: List[SwfJob] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < _MIN_FIELDS:
            raise WorkflowParseError(
                f"SWF line {lineno}: expected >= {_MIN_FIELDS} fields, "
                f"got {len(fields)}"
            )
        try:
            jobs.append(
                SwfJob(
                    job_id=int(fields[_JOB_ID]),
                    runtime=float(fields[_RUN_TIME]),
                    status=int(fields[_STATUS]),
                )
            )
        except ValueError as exc:
            raise WorkflowParseError(f"SWF line {lineno}: {exc}") from exc
    return jobs


def parse_swf_file(path: str | Path) -> List[SwfJob]:
    p = Path(path)
    try:
        return parse_swf(p.read_text())
    except OSError as exc:
        raise WorkflowParseError(f"cannot read {p}: {exc}") from exc


def runtimes_from_swf(jobs: List[SwfJob]) -> List[float]:
    """Positive runtimes of completed jobs, in trace order."""
    return [j.runtime for j in jobs if j.completed and j.runtime > 0]


class SwfTraceModel(ExecutionTimeModel):
    """Sample task runtimes from an SWF trace's empirical distribution."""

    name = "swf-trace"

    def __init__(self, jobs: List[SwfJob]) -> None:
        runtimes = runtimes_from_swf(jobs)
        if not runtimes:
            raise WorkflowParseError(
                "SWF trace has no completed jobs with positive runtimes"
            )
        self._runtimes = np.asarray(runtimes, dtype=float)

    @classmethod
    def from_file(cls, path: str | Path) -> "SwfTraceModel":
        return cls(parse_swf_file(path))

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        rng = ensure_rng(seed)
        draws = rng.choice(self._runtimes, size=len(wf), replace=True)
        return dict(zip(wf.task_ids, map(float, draws)))


def bag_from_swf(jobs: List[SwfJob], n: int | None = None, name: str = "swf-bag") -> Workflow:
    """The first *n* completed jobs as an independent-task workflow."""
    wf = Workflow(name)
    count = 0
    for job in jobs:
        if not job.completed or job.runtime <= 0:
            continue
        wf.add_task(Task(f"swf_{job.job_id}", job.runtime, "swf-job"))
        count += 1
        if n is not None and count >= n:
            break
    if count == 0:
        raise WorkflowParseError("SWF trace yielded no usable jobs")
    return wf.validate()
