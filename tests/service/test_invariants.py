"""Property/invariant tests of the multi-tenant service loop.

Seeded random DAGs stream through a :class:`WorkflowService` under
every online provisioning policy; the per-run executors are captured so
the structural invariants can be checked at two levels:

* per submission — :func:`tests.conftest.assert_schedule_invariants`
  (finish >= start, precedence, no VM overlap within a run);
* fleet-global — no VM ever runs two tasks at once *across*
  submissions, realized intervals sit inside rental windows, billing
  equals per-VM uptime rounded up to whole BTUs, admission arithmetic
  is conserved, and the budget guard never lets a tenant's committed
  estimates exceed its budget.
"""

from __future__ import annotations

import math

import pytest

from repro.service import loop as service_loop
from repro.service.admission import default_estimator
from repro.service.arrivals import WorkflowRequest, poisson_arrivals
from repro.service.loop import WorkflowService
from repro.simulator.online import OnlineCloudExecutor
from repro.workflows.generators import random_layered
from tests.conftest import assert_schedule_invariants

POLICIES = (
    "OneVMperTask",
    "StartParNotExceed",
    "StartParExceed",
    "AllParNotExceed",
    "AllParExceed",
)

_TOL = 1e-6


@pytest.fixture
def captured(monkeypatch):
    """Capture every executor the service spawns, in start order.

    Returns a *filter*: ``captured(service)`` yields only that
    service's executors — a timed-out sweep cell from another test may
    still be running in an abandoned helper thread and creating
    executors of its own while this test runs.
    """
    store = []

    def factory(*args, **kwargs):
        executor = OnlineCloudExecutor(*args, **kwargs)
        store.append(executor)
        return executor

    monkeypatch.setattr(service_loop, "OnlineCloudExecutor", factory)

    def of_service(service):
        return [ex for ex in store if ex.sim is service.sim]

    return of_service


def _stream(seed, count=12, tenants=3, mean_interarrival=900.0):
    """A deterministic multi-tenant stream of random layered DAGs."""
    shapes = [
        random_layered(
            layers=3, width_range=(1, 3), seed=seed + k, name=f"rand{k}"
        )
        for k in range(3)
    ]
    return poisson_arrivals(
        shapes,
        count=count,
        tenants=tenants,
        mean_interarrival=mean_interarrival,
        seed=seed,
    )


def _intervals_by_vm(executors):
    """vm id -> sorted [(start, finish, run:task)] across all runs."""
    by_vm = {}
    for ex in executors:
        for tid, vid in ex.task_vm.items():
            by_vm.setdefault(vid, []).append(
                (ex.task_start[tid], ex.task_finish[tid], f"{ex.run_name}:{tid}")
            )
    for intervals in by_vm.values():
        intervals.sort()
    return by_vm


@pytest.mark.parametrize("seed", (0, 7))
@pytest.mark.parametrize("policy", POLICIES)
def test_service_run_invariants(platform, policy, seed, captured):
    service = WorkflowService(
        platform, policy=policy, admission="fair", max_concurrent=4
    )
    result = service.run(_stream(seed))
    executors = captured(service)

    # every admitted workflow ran to completion through one executor
    assert len(executors) == result.admitted == result.completed
    for ex in executors:
        assert_schedule_invariants(ex, ex.workflow)

    # fleet-global mutual exclusion: realized intervals on one VM are
    # disjoint even when they belong to different tenants' submissions
    by_vm = _intervals_by_vm(executors)
    for vid, intervals in by_vm.items():
        for (_, f1, a), (s2, _, b) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - _TOL, f"vm{vid} runs {b} before {a} ends"

    # every interval sits inside its VM's rental window
    for vid, intervals in by_vm.items():
        vm = service.fleet.vms[vid]
        assert min(s for s, _, _ in intervals) >= vm.started_at - _TOL
        assert max(f for _, f, _ in intervals) <= vm.free_at + _TOL

    service.fleet.check_conservation()


@pytest.mark.parametrize("policy", ("StartParNotExceed", "AllParExceed"))
def test_billing_is_uptime_rounded_to_btu(platform, policy):
    service = WorkflowService(
        platform, policy=policy, admission="fifo", max_concurrent=4
    )
    result = service.run(_stream(3))

    billing = platform.billing
    region = service.region
    btu = platform.btu_seconds
    expect_btus = 0
    expect_cost = 0.0
    for vm in service.fleet.vms:
        end = vm.crashed_at if vm.crashed else vm.free_at
        uptime = max(end - vm.started_at, 0.0)
        vm_btus = max(1, math.ceil(uptime / btu - 1e-9))
        assert vm_btus == billing.btus(uptime)
        expect_btus += vm_btus
        expect_cost += vm_btus * region.price(vm.itype)
    assert result.btus == expect_btus
    assert result.rent_cost == pytest.approx(expect_cost)

    # the per-owner bills partition the fleet totals exactly
    bills = service.fleet.bill(billing, region)
    assert sum(b.vm_count for b in bills.values()) == len(service.fleet.vms)
    assert sum(b.btus for b in bills.values()) == expect_btus
    assert sum(b.rent_cost for b in bills.values()) == pytest.approx(expect_cost)
    for owner, bill in bills.items():
        owned = [vm for vm in service.fleet.vms if vm.owner == owner]
        assert bill.vm_count == len(owned)


def test_admission_arithmetic_is_conserved(platform):
    result = WorkflowService(
        platform, admission="fair", max_concurrent=2
    ).run(_stream(11, count=15, tenants=4))

    assert result.admitted + result.rejected == result.submitted
    assert result.admitted <= result.submitted
    assert result.completed == result.admitted  # admitted work never killed
    per_tenant = result.tenants.values()
    assert sum(t.submitted for t in per_tenant) == result.submitted
    for t in per_tenant:
        assert t.admitted + t.rejected == t.submitted
        assert t.completed == t.admitted


def test_budget_guard_never_exceeds_tenant_budget(platform, diamond):
    # price one submission, then grant each tenant ~2.5 workflows' worth
    probe = WorkflowService(platform, admission="budget")
    one = default_estimator(
        WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0), probe
    )
    assert one > 0
    budget = 2.5 * one

    requests = poisson_arrivals(
        diamond,
        count=20,
        tenants=4,
        mean_interarrival=200.0,
        seed=9,
        budget=budget,
    )
    service = WorkflowService(
        platform, admission="budget", max_concurrent=2
    )
    result = service.run(requests)

    assert result.rejected > 0 and result.completed > 0
    for t in result.tenants.values():
        # the admission ledger never overshoots, even while requests of
        # one tenant sit queued together (commitment at admit)
        assert t.spent_estimate <= budget + 1e-9
        if t.submitted >= 3:
            assert t.admitted == 2  # identical estimates => floor(2.5)
    service.fleet.check_conservation()


def test_fleet_owners_are_tenants(platform, captured):
    service = WorkflowService(platform, max_concurrent=4)
    result = service.run(_stream(5, count=10, tenants=3))
    tenants = set(result.tenants)
    assert {vm.owner for vm in service.fleet.vms} <= tenants
    # attribution: each VM's owner is the tenant whose run rented it
    rented_by = {}
    for ex in captured(service):
        for vid in set(ex.task_vm.values()):
            rented_by.setdefault(vid, ex.owner)
    for vm in service.fleet.vms:
        if vm.id in rented_by and len(vm.tasks) == 1:
            assert vm.owner == rented_by[vm.id]
