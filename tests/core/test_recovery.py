"""Unit tests for the recovery-policy decision layer."""

import pytest

from repro.core.recovery import (
    RECOVERY_POLICIES,
    FailureEvent,
    RecoveryAction,
    ReplanRemaining,
    ResubmitFresh,
    RetrySameVM,
    recovery_policy,
)
from repro.errors import SchedulingError


def _failure(attempt=1, reason="task", vm_alive=True):
    return FailureEvent(
        task_id="t1",
        vm_id=0,
        attempt=attempt,
        time=100.0,
        reason=reason,
        vm_alive=vm_alive,
    )


class TestRecoveryAction:
    def test_kind_validated(self):
        with pytest.raises(SchedulingError):
            RecoveryAction("panic")

    def test_delay_validated(self):
        with pytest.raises(SchedulingError):
            RecoveryAction("retry", delay=-1.0)


class TestBackoff:
    def test_capped_exponential(self):
        p = RetrySameVM(backoff_base=30.0, backoff_factor=2.0, backoff_cap=600.0)
        assert p.backoff(1) == 30.0
        assert p.backoff(2) == 60.0
        assert p.backoff(3) == 120.0
        assert p.backoff(6) == 600.0  # 30 * 2^5 = 960 hits the cap
        assert p.backoff(50) == 600.0

    def test_parameters_validated(self):
        with pytest.raises(SchedulingError):
            RetrySameVM(max_attempts=0)
        with pytest.raises(SchedulingError):
            RetrySameVM(backoff_factor=0.5)
        with pytest.raises(SchedulingError):
            RetrySameVM(backoff_base=-1.0)


class TestRetrySameVM:
    def test_retries_on_alive_vm(self):
        action = RetrySameVM().on_task_failure(_failure(attempt=1))
        assert action.kind == "retry"
        assert action.delay == 30.0

    def test_falls_back_to_resubmit_when_vm_dead(self):
        action = RetrySameVM().on_task_failure(
            _failure(reason="vm_crash", vm_alive=False)
        )
        assert action.kind == "resubmit"

    def test_aborts_at_attempt_budget(self):
        p = RetrySameVM(max_attempts=3)
        assert p.on_task_failure(_failure(attempt=2)).kind == "retry"
        assert p.on_task_failure(_failure(attempt=3)).kind == "abort"


class TestResubmitFresh:
    def test_always_resubmits(self):
        p = ResubmitFresh()
        assert p.on_task_failure(_failure()).kind == "resubmit"
        assert (
            p.on_task_failure(_failure(reason="vm_crash", vm_alive=False)).kind
            == "resubmit"
        )

    def test_zero_default_backoff(self):
        assert ResubmitFresh().on_task_failure(_failure()).delay == 0.0

    def test_aborts_at_budget(self):
        assert ResubmitFresh(max_attempts=2).on_task_failure(
            _failure(attempt=2)
        ).kind == "abort"


class TestReplanRemaining:
    def test_replans(self):
        action = ReplanRemaining().on_task_failure(_failure())
        assert action.kind == "replan"

    def test_queue_strategy(self):
        assert ReplanRemaining.queue_strategy == "replan"
        assert RetrySameVM.queue_strategy == "replacement"

    def test_provisioning_override(self):
        assert ReplanRemaining().provisioning is None
        assert (
            ReplanRemaining(provisioning="AllParExceed").provisioning
            == "AllParExceed"
        )


class TestRegistry:
    def test_names(self):
        # the market policies register lazily on first import, so the
        # registry holds the core three plus (at most) the bidding pair
        assert {"retry", "resubmit", "replan"} <= set(RECOVERY_POLICIES)
        assert set(RECOVERY_POLICIES) <= {
            "retry", "resubmit", "replan", "rebid", "fallback"
        }

    def test_resolver(self):
        assert isinstance(recovery_policy(None), RetrySameVM)
        assert isinstance(recovery_policy("REPLAN"), ReplanRemaining)
        custom = ResubmitFresh(max_attempts=2)
        assert recovery_policy(custom) is custom
        with pytest.raises(SchedulingError):
            recovery_policy("nope")
