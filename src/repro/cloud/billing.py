"""BTU billing and transfer pricing.

A VM is billed in whole Billing Time Units (BTU = 3600 s on EC2): any
started BTU is paid in full, and a VM that runs at all pays at least one.
Out-of-region transfers are billed per GB, but only for the slice of the
*monthly cumulative* egress volume that falls inside the EC2 band
``(1 GB, 10 TB]`` (paper Sect. IV-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.instance import InstanceType
from repro.cloud.region import Region
from repro.errors import BillingError

#: default EC2 billing quantum, seconds
BTU_SECONDS = 3600.0

#: free-tier threshold and band ceiling for egress billing, GB
TRANSFER_FREE_GB = 1.0
TRANSFER_BAND_CEILING_GB = 10_240.0  # 10 TB


@dataclass(frozen=True)
class BillingModel:
    """Pure billing arithmetic, shared by scheduler and simulator."""

    btu_seconds: float = BTU_SECONDS
    transfer_free_gb: float = TRANSFER_FREE_GB
    transfer_band_ceiling_gb: float = TRANSFER_BAND_CEILING_GB

    def __post_init__(self) -> None:
        if self.btu_seconds <= 0:
            raise BillingError(f"BTU must be positive, got {self.btu_seconds}")
        if not (0 <= self.transfer_free_gb <= self.transfer_band_ceiling_gb):
            raise BillingError("invalid transfer band bounds")

    # ------------------------------------------------------------------
    # VM rent
    # ------------------------------------------------------------------
    def btus(self, uptime_seconds: float) -> int:
        """Whole BTUs paid for an uptime; a VM that ran at all pays >= 1."""
        if uptime_seconds < 0:
            raise BillingError(f"negative uptime {uptime_seconds}")
        if uptime_seconds == 0:
            return 0
        return max(1, math.ceil(uptime_seconds / self.btu_seconds - 1e-9))

    def paid_seconds(self, uptime_seconds: float) -> float:
        """Uptime rounded up to the BTU grid — the denominator of the
        paper's idle-time metric."""
        return self.btus(uptime_seconds) * self.btu_seconds

    def vm_cost(
        self, uptime_seconds: float, itype: InstanceType, region: Region
    ) -> float:
        """USD rent for a VM of *itype* in *region* up for *uptime*."""
        return self.btus(uptime_seconds) * region.price(itype)

    def paid_window(self, start: float, uptime_seconds: float) -> tuple:
        """The absolute time window actually billed for a rental that
        opened at *start* and ran *uptime* — the integration range for
        time-varying (spot) pricing, where cost is the price integral
        over the paid window rather than ``price × BTUs``."""
        return (start, start + self.paid_seconds(uptime_seconds))

    def remaining_in_btu(self, uptime_seconds: float) -> float:
        """Seconds left before the *next* BTU boundary after ``uptime``.

        This is what the NotExceed policies compare a candidate task
        against: 0 uptime means a full fresh BTU; an exact multiple of
        the BTU also yields a full BTU (the boundary has not been
        crossed into yet).
        """
        if uptime_seconds < 0:
            raise BillingError(f"negative uptime {uptime_seconds}")
        used = math.fmod(uptime_seconds, self.btu_seconds)
        if used < 1e-9 or self.btu_seconds - used < 1e-9:
            return self.btu_seconds
        return self.btu_seconds - used

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer_cost(
        self,
        volume_gb: float,
        src: Region,
        dst: Region,
        monthly_total_gb: float = 0.0,
    ) -> float:
        """Egress cost for shipping *volume_gb* from *src* to *dst*.

        Intra-region transfers are free.  *monthly_total_gb* is the
        volume already billed this month; only the portion of the new
        cumulative total inside ``(free, ceiling]`` is charged, at the
        source region's per-GB price.
        """
        if volume_gb < 0 or monthly_total_gb < 0:
            raise BillingError("transfer volumes must be >= 0")
        if src.name == dst.name or volume_gb == 0:
            return 0.0
        lo = max(monthly_total_gb, self.transfer_free_gb)
        hi = min(monthly_total_gb + volume_gb, self.transfer_band_ceiling_gb)
        billable = max(0.0, hi - lo)
        return billable * src.transfer_out_per_gb
