"""AllPar1LnS and AllPar1LnSDyn (paper Sect. III-B).

*AllPar1LnS* ("all parallel, one level and sequentialize") reduces task
parallelism inside each DAG level: tasks are ranked by execution time
descending, the longest task defines a bin capacity, and shorter tasks
are first-fit packed into bins whose total length stays within that
capacity.  Each bin runs sequentially on a single VM; the longest task
always keeps a VM to itself, so the level's makespan is unchanged while
its rent drops.

*AllPar1LnSDyn* additionally buys speed inside a per-level budget — the
cost the level would incur under AllParNotExceed provisioning (every
parallel task on its own small VM, the worst case).  It upgrades the
longest task's VM rung by rung; when the level makespan shifts to some
other bin it tries to push that bin back below the longest task, rolling
back to the last valid configuration (within budget *and* makespan
dictated by the longest task) when it cannot.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.cloud.instance import SMALL, InstanceType, next_faster
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.ranking import level_order
from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow

_EPS = 1e-9


def pack_level(tasks: Sequence[str], exec_time: Callable[[str], float]) -> List[List[str]]:
    """First-fit-decreasing packing of a level into sequential bins.

    Bin capacity is the longest task's execution time; bin 0 holds that
    task alone (it consumes the whole capacity).  Returns the bins in
    creation order, each a list of task ids to run sequentially.
    """
    if not tasks:
        return []
    ordered = sorted(tasks, key=lambda t: (-exec_time(t), t))
    capacity = exec_time(ordered[0])
    bins: List[List[str]] = [[ordered[0]]]
    used: List[float] = [capacity]
    for tid in ordered[1:]:
        e = exec_time(tid)
        for b, load in enumerate(used):
            if load + e <= capacity + _EPS:
                bins[b].append(tid)
                used[b] += e
                break
        else:
            bins.append([tid])
            used.append(e)
    return bins


class AllPar1LnSBase(SchedulingAlgorithm):
    """Shared placement loop; subclasses pick the per-bin VM flavors."""

    def _bin_types(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        region: Region,
        bins: List[List[str]],
        base: InstanceType,
    ) -> List[InstanceType]:
        return [base] * len(bins)

    # ------------------------------------------------------------------
    def _choose_vm(
        self,
        builder: ScheduleBuilder,
        bin_tasks: List[str],
        itype: InstanceType,
        level: int,
        used_this_level: List[BuilderVM],
    ) -> BuilderVM:
        """Pick a VM for a whole bin, AllParNotExceed style: reuse an
        idle VM of the right flavor not already claimed by this level and
        whose remaining BTU absorbs the full bin, else rent."""
        bin_exec = sum(builder.exec_time(t, itype) for t in bin_tasks)
        candidates = [
            vm
            for vm in builder.vms
            if not vm.empty
            and vm.itype is itype
            and vm not in used_this_level
            and all(builder.level_of(t) != level for t in vm.order)
            and builder.is_reusable(bin_tasks[0], vm)
        ]
        billing = builder.platform.billing
        fitting = []
        for vm in candidates:
            start = builder.earliest_start(bin_tasks[0], vm)
            horizon = vm.start_time + billing.paid_seconds(vm.uptime_seconds)
            if start + bin_exec <= horizon + _EPS:
                fitting.append(vm)
        pred_vm = builder.vm_of_largest_predecessor(bin_tasks[0])
        if pred_vm is not None and pred_vm in fitting:
            return pred_vm
        if fitting:
            return max(fitting, key=lambda vm: (vm.busy_seconds, -vm.id))
        return builder.new_vm(itype)

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        reg = region or platform.default_region
        builder = ScheduleBuilder(workflow, platform, itype, reg)
        levels = level_order(workflow, platform, itype, descending_exec=True)
        for level_idx, level_tasks in enumerate(levels):
            bins = pack_level(
                level_tasks, lambda t: platform.runtime(workflow.task(t), itype)
            )
            types = self._bin_types(workflow, platform, reg, bins, itype)
            used: List[BuilderVM] = []
            for bin_tasks, bin_type in zip(bins, types):
                vm = self._choose_vm(builder, bin_tasks, bin_type, level_idx, used)
                used.append(vm)
                for tid in bin_tasks:
                    # A later bin member can become ready only after the
                    # VM's BTU horizon expired (its own predecessors run
                    # late); the VM is gone by then, so the bin splits
                    # onto a fresh VM of the same flavor.
                    if not vm.empty and not builder.is_reusable(tid, vm):
                        vm = builder.new_vm(bin_type)
                        used.append(vm)
                    builder.place(tid, vm)
        return builder.build(
            algorithm=self.name, provisioning="AllParNotExceed"
        ).validate()


@register_algorithm
class AllPar1LnSScheduler(AllPar1LnSBase):
    name = "AllPar1LnS"


@register_algorithm
class AllPar1LnSDynScheduler(AllPar1LnSBase):
    name = "AllPar1LnSDyn"
    heterogeneous = True

    def __init__(self, budget_slack: float = 1.0) -> None:
        if budget_slack <= 0:
            raise SchedulingError("budget_slack must be positive")
        #: multiplier on the per-level AllParNotExceed budget (1.0 = paper)
        self.budget_slack = budget_slack

    def _bin_types(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        region: Region,
        bins: List[List[str]],
        base: InstanceType,
    ) -> List[InstanceType]:
        billing = platform.billing

        def duration(b: int, types: List[InstanceType]) -> float:
            return sum(
                platform.runtime(workflow.task(t), types[b]) for t in bins[b]
            )

        def level_cost(types: List[InstanceType]) -> float:
            return sum(
                billing.vm_cost(duration(b, types), types[b], region)
                for b in range(len(bins))
            )

        # Worst-case budget: every parallel task of the level on its own
        # base-flavor VM (AllParNotExceed provisioning).
        budget = self.budget_slack * sum(
            billing.vm_cost(platform.runtime(workflow.task(t), base), base, region)
            for level in bins
            for t in level
        )

        types = [base] * len(bins)
        if len(bins) == 0:
            return types

        def longest_dominates(ts: List[InstanceType]) -> bool:
            d0 = duration(0, ts)
            return all(duration(b, ts) <= d0 + _EPS for b in range(1, len(bins)))

        last_valid = list(types)  # all-small is within budget and dominated
        while True:
            nt = next_faster(types[0])
            if nt is None:
                break
            trial = list(types)
            trial[0] = nt
            if level_cost(trial) > budget + _EPS:
                break  # current committed state remains the result
            types = trial
            if longest_dominates(types):
                last_valid = list(types)
                continue
            # Makespan shifted off the longest task: speed the offending
            # bins up until they drop back below it, within budget.
            repaired = True
            d0 = duration(0, types)
            for b in range(1, len(bins)):
                while duration(b, types) > d0 + _EPS:
                    nb = next_faster(types[b])
                    if nb is None:
                        repaired = False
                        break
                    trial = list(types)
                    trial[b] = nb
                    if level_cost(trial) > budget + _EPS:
                        repaired = False
                        break
                    types = trial
                if not repaired:
                    break
            if repaired and longest_dominates(types):
                last_valid = list(types)
            else:
                types = list(last_valid)
                break
        return types
