#!/usr/bin/env python
"""Diagnosing a schedule: where does the time go, where does the money
go, and what would actually help?

Walks one Montage schedule through the library's analysis toolkit:
the cost breakdown (per-VM BTUs, gaps, final-BTU tails), fleet
utilization, the *realized* critical path with its blocking reasons
(machine contention vs. data dependencies), and the distance from the
physical makespan/cost optima.

Run:  python examples/diagnose_schedule.py
"""

from repro import (
    CloudPlatform,
    HeftScheduler,
    ParetoModel,
    apply_model,
    efficiency,
    explain,
    montage,
    realized_critical_path,
    render_explanation,
    utilization,
)
from repro.experiments.gantt import gantt


def main() -> None:
    platform = CloudPlatform.ec2()
    workflow = apply_model(montage(), ParetoModel(), seed=2013)
    schedule = HeftScheduler("StartParNotExceed").schedule(workflow, platform)

    print(gantt(schedule))
    print()
    print(render_explanation(explain(schedule)))

    use = utilization(schedule)
    print(
        f"\nfleet utilization {use.utilization:.0%} "
        f"(worst VM {use.min_vm_utilization:.0%}); peak parallelism "
        f"{use.peak_parallelism}, mean {use.mean_parallelism:.2f}"
    )

    report = realized_critical_path(schedule)
    chain = " -> ".join(report.path)
    print(f"\nrealized critical path ({len(report.path)} tasks): {chain}")
    print(
        f"blocking: {report.bottleneck_fraction_vm:.0%} machine contention, "
        f"{1 - report.bottleneck_fraction_vm:.0%} data dependencies"
    )
    slackers = sorted(report.slack.items(), key=lambda kv: -kv[1])[:3]
    print("most slack (could run much later):")
    for tid, s in slackers:
        print(f"  {tid:20s} {s:8.0f} s")

    eff = efficiency(schedule)
    print(
        f"\nvs physical optima: makespan {eff.makespan_ratio:.2f}x the "
        f"critical-path bound, cost {eff.cost_ratio:.2f}x the perfect-"
        f"packing bound"
    )
    print(
        "\nReading: if blocking is mostly 'vm', rent more parallel capacity "
        "(the paper's AllPar policies);\nif mostly 'dependency', only faster "
        "instances on the chain help (CPA-Eager's move)."
    )


if __name__ == "__main__":
    main()
