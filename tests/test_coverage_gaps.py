"""Directed tests for branches the structured suites don't reach:
registry error paths, trace divergence variants, renderer options, and
defensive guards."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.base import (
    SchedulingAlgorithm,
    register_algorithm,
    scheduling_algorithm,
)
from repro.core.allocation.heft import HeftScheduler
from repro.core.provisioning.base import ProvisioningPolicy, register_policy
from repro.errors import SchedulingError, SimulationError
from repro.simulator.executor import simulate_schedule
from repro.util.tables import format_table
from repro.workflows.generators import sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestRegistryErrorPaths:
    def test_duplicate_policy_rejected(self):
        class Dup(ProvisioningPolicy):
            name = "OneVMperTask"  # already registered

            def select_vm(self, task_id, builder):  # pragma: no cover
                raise AssertionError

        with pytest.raises(SchedulingError, match="duplicate"):
            register_policy(Dup)

    def test_unnamed_policy_rejected(self):
        class NoName(ProvisioningPolicy):
            def select_vm(self, task_id, builder):  # pragma: no cover
                raise AssertionError

        with pytest.raises(SchedulingError, match="unique name"):
            register_policy(NoName)

    def test_duplicate_algorithm_rejected(self):
        class DupAlgo(SchedulingAlgorithm):
            name = "HEFT"

            def schedule(self, *a, **k):  # pragma: no cover
                raise AssertionError

        with pytest.raises(SchedulingError, match="duplicate"):
            register_algorithm(DupAlgo)

    def test_algorithm_params_forwarded(self):
        algo = scheduling_algorithm("HEFT", provisioning="StartParExceed")
        assert algo.provisioning.name == "StartParExceed"


class TestTraceDivergenceVariants:
    def test_finish_mismatch_detected(self, platform, chain3):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        result = simulate_schedule(sched, check=False)
        result.task_finish["Z"] += 50.0
        with pytest.raises(SimulationError, match="finish"):
            result.check_against(sched)


class TestTableRendererOptions:
    def test_align_right_false(self):
        out = format_table(
            ["k", "v"], [("a", "x"), ("b", "yy")], align_right=False
        )
        data_rows = out.splitlines()[2:]
        assert data_rows[0].startswith("a  x")

    def test_title_underline_width(self):
        out = format_table(["k"], [("v",)], title="T")
        lines = out.splitlines()
        assert lines[1] == "="


class TestPlatformExtras:
    def test_cheapest_region_per_itype(self, platform):
        xl = platform.itype("xlarge")
        assert platform.cheapest_region(xl).name == "us-east-virginia"

    def test_vm_repr_and_schedule_repr(self, platform):
        sched = HeftScheduler("StartParExceed").schedule(sequential(2), platform)
        assert "vm0-s" in repr(sched.vms[0])
        assert "makespan" in repr(sched)


class TestDeadlineGuards:
    def test_best_effort_never_raises_on_feasible(self, platform):
        from repro.core.allocation.deadline import DeadlineScheduler

        wf = sequential(3)
        sched = DeadlineScheduler(
            deadline=wf.total_work() * 2, best_effort=True
        ).schedule(wf, platform)
        assert sched.makespan <= wf.total_work() * 2


class TestOnlineReap:
    def test_vm_stop_events_emitted(self, platform):
        from repro.simulator.online import run_online
        from repro.workflows.dag import Workflow
        from repro.workflows.task import Task

        # two sequential phases separated by > 1 BTU of work elsewhere:
        # the first VM dies and a vm_stop event is recorded
        wf = Workflow("w")
        wf.add_task(Task("a", 500.0))
        wf.add_task(Task("b", 4000.0))
        wf.add_task(Task("c", 500.0))
        wf.add_dependency("a", "c")
        wf.add_dependency("b", "c")
        wf.validate()
        result = run_online(wf, platform, policy="AllParExceed")
        kinds = [e.kind for e in result.events]
        assert "vm_stop" in kinds


class TestProvisioningRepr:
    def test_reprs(self):
        from repro.core.provisioning.one_vm_per_task import OneVMperTask

        assert "OneVMperTask" in repr(OneVMperTask())
        assert "HeftScheduler" in repr(HeftScheduler())
