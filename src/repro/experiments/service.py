"""WaaS service experiment: seeded multi-tenant runs + a policy sweep.

The experiment layer around :mod:`repro.service`: one seeded service
run (the ``service`` CLI artifact) renders a throughput/latency/billing
report, and :func:`run_service_sweep` fans a (policy × admission ×
seed) grid over an :class:`~repro.experiments.parallel.ExecutionBackend`
through the same guarded map the other sweeps use — each cell is
self-contained and picklable, so serial, thread and process backends
produce byte-identical rollups (a property the test suite hashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    CellFailure,
    ExecutionBackend,
    make_backend,
    map_guarded,
)
from repro.experiments.result import ResultBase
from repro.service.arrivals import poisson_arrivals
from repro.service.loop import ServiceResult, run_service
from repro.util.tables import format_table

#: workflow shapes a service cell draws from by default — the three
#: paper DAGs with distinct structure (fan-heavy, hybrid, map-reduce)
DEFAULT_SHAPES = ("montage", "cstem", "mapreduce")


@dataclass(frozen=True)
class ServiceCell:
    """One self-contained (policy, admission, seed) service run.

    Workflow shapes travel by *name* and are rebuilt inside the worker
    from :func:`~repro.experiments.config.paper_workflows`, which is
    deterministic — so the cell pickles small and every backend sees
    identical inputs.
    """

    platform: CloudPlatform
    policy: str
    admission: str
    count: int
    tenants: int
    mean_interarrival: float
    seed: int
    shapes: Tuple[str, ...] = DEFAULT_SHAPES
    budget: float = float("inf")
    max_concurrent: Optional[int] = None


@dataclass(frozen=True)
class ServiceCellResult:
    """Rollup of one service cell (JSON-stable dict, see
    :meth:`repro.service.loop.ServiceResult.rollup`)."""

    policy: str
    admission: str
    seed: int
    rollup: dict


def build_requests(cell: ServiceCell):
    """The cell's arrival stream (deterministic in the cell fields)."""
    from repro.experiments.config import paper_workflows

    catalog = paper_workflows()
    try:
        shapes = [catalog[name] for name in cell.shapes]
    except KeyError as exc:
        known = ", ".join(sorted(catalog))
        raise ExperimentError(
            f"unknown workflow shape {exc.args[0]!r} (known: {known})"
        ) from None
    return poisson_arrivals(
        shapes,
        count=cell.count,
        tenants=cell.tenants,
        mean_interarrival=cell.mean_interarrival,
        seed=cell.seed,
        budget=cell.budget,
    )


def run_service_cell(cell: ServiceCell) -> ServiceCellResult:
    """Worker entry point: generate the stream, run the service."""
    result = run_service(
        build_requests(cell),
        cell.platform,
        policy=cell.policy,
        admission=cell.admission,
        max_concurrent=cell.max_concurrent,
    )
    return ServiceCellResult(
        policy=cell.policy,
        admission=cell.admission,
        seed=cell.seed,
        rollup=result.rollup(),
    )


def service_cell_label(cell: ServiceCell) -> str:
    return f"{cell.policy}/{cell.admission}#s{cell.seed}"


@dataclass
class ServiceSweepResult(ResultBase):
    """All cells of one service sweep, plus captured failures."""

    cells: List[ServiceCellResult] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def failure_summary(self) -> str:
        """One line per failed cell; "" when the sweep is complete."""
        return "\n".join(str(f) for f in self.failures)

    def rollups(self) -> Dict[str, dict]:
        """Label → rollup, sorted — the cross-backend identity surface."""
        return {
            f"{c.policy}/{c.admission}#s{c.seed}": c.rollup
            for c in sorted(
                self.cells, key=lambda c: (c.policy, c.admission, c.seed)
            )
        }

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One row per cell of the (policy × admission × seed) grid."""
        return render_service_sweep(self)

    def to_json(self) -> dict:
        return {
            "cells": self.rollups(),
            "failures": [str(f) for f in self.failures],
        }


def run_service_sweep(
    platform: CloudPlatform | None = None,
    policies: Sequence[str] = ("StartParNotExceed", "AllParExceed"),
    admissions: Sequence[str] = ("fifo", "fair"),
    seeds: "Sequence[int] | int" = 1,
    count: int = 50,
    tenants: int = 5,
    mean_interarrival: float = 600.0,
    shapes: Sequence[str] = DEFAULT_SHAPES,
    budget: float = float("inf"),
    max_concurrent: Optional[int] = None,
    jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    retries: int = 0,
    cell_timeout: float | None = None,
) -> ServiceSweepResult:
    """Run the (policy × admission × seed) service grid."""
    platform = platform or CloudPlatform.ec2()
    if isinstance(seeds, int):
        seeds = range(seeds)
    seeds = [int(s) for s in seeds]
    if not policies or not admissions or not seeds:
        raise ExperimentError("service sweep needs at least one of each axis")
    cells = [
        ServiceCell(
            platform=platform,
            policy=policy,
            admission=admission,
            count=count,
            tenants=tenants,
            mean_interarrival=mean_interarrival,
            seed=seed,
            shapes=tuple(shapes),
            budget=budget,
            max_concurrent=max_concurrent,
        )
        for policy in policies
        for admission in admissions
        for seed in seeds
    ]
    exec_backend = make_backend(backend, jobs)
    results, failures = map_guarded(
        exec_backend,
        run_service_cell,
        cells,
        label_fn=service_cell_label,
        retries=retries,
        timeout=cell_timeout,
    )
    return ServiceSweepResult(
        cells=[r for r in results if r is not None],
        failures=failures,
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def render_service(result: ServiceResult, title: str = "WaaS service run") -> str:
    """Headline + per-tenant tables for one service run."""
    headline = format_table(
        ["metric", "value"],
        [
            ("workflows submitted", result.submitted),
            ("admitted", result.admitted),
            ("rejected", result.rejected),
            ("completed", result.completed),
            ("makespan s", result.makespan),
            ("throughput wf/h", result.throughput_per_hour),
            ("latency p50 s", result.latency_p50),
            ("latency p99 s", result.latency_p99),
            ("fleet utilization", result.utilization),
            ("VMs rented", result.vm_count),
            ("BTUs billed", result.btus),
            ("total rent $", result.rent_cost),
        ],
        float_fmt=".3f",
        title=title,
    )
    rows = []
    for name, t in sorted(result.tenants.items()):
        rows.append(
            (
                name,
                t.submitted,
                t.admitted,
                t.rejected,
                t.completed,
                t.bill.vm_count if t.bill else 0,
                t.bill.rent_cost if t.bill else 0.0,
            )
        )
    # a 50-tenant table would drown the headline: keep the biggest
    # spenders and say how many rows were folded away
    shown = sorted(rows, key=lambda r: (-r[6], r[0]))[:10]
    tenant_table = format_table(
        ["tenant", "submitted", "admitted", "rejected", "completed", "vms", "rent $"],
        shown,
        float_fmt=".3f",
        title=f"Top tenants by spend ({len(shown)} of {len(rows)})",
    )
    return headline + "\n" + tenant_table


def render_service_sweep(sweep: ServiceSweepResult) -> str:
    """One row per cell of the (policy × admission × seed) grid."""
    rows = []
    for label, roll in sweep.rollups().items():
        rows.append(
            (
                label,
                roll["completed"],
                roll["rejected"],
                roll["throughput_per_hour"],
                roll["latency_p50"],
                roll["latency_p99"],
                roll["utilization"],
                roll["rent_cost"],
            )
        )
    text = format_table(
        [
            "cell",
            "done",
            "rejected",
            "wf/h",
            "p50 s",
            "p99 s",
            "util",
            "rent $",
        ],
        rows,
        float_fmt=".3f",
        title="WaaS service sweep",
    )
    if sweep.failures:
        lost = "\n".join(f"  {f}" for f in sweep.failures)
        text += f"\nfailed cells ({len(sweep.failures)}):\n{lost}"
    return text
