"""Purchase options, the market bundle, and spot interruption times.

A :class:`PurchaseOption` says *how* a VM is bought: on-demand at the
fixed list price (the paper's only mode), or spot with a bid expressed
as a multiplier of the list price.  A :class:`Market` bundles a
:class:`~repro.market.prices.PriceProcess` with a default purchase
option and the provider's termination-grace window, and owns the two
derived quantities the simulator needs:

* **cost** — a spot VM pays the integral of the realized price over its
  *paid* window (uptime ceiled to the BTU grid), instead of
  ``list price × BTUs``;
* **interruption** — a spot VM is reclaimed when the realized price
  first exceeds its bid.  :class:`SpotInterruptionPlan` turns that
  price-crossing event into ``(warning, kill)`` times with the same
  keyed-hash determinism contract as
  :class:`~repro.simulator.faults.FaultPlan`: both are pure functions of
  ``(seed, flavor, region, bid, rent time)``, so interruptions correlate
  across all spot VMs of one flavor in one region — the defining hazard
  of spot markets that independent-crash fault models miss.

Grace semantics: the provider issues a reclamation *warning* at the
price-crossing instant and kills the VM ``grace_seconds`` later (EC2's
two-minute warning).  A bid already under water at rent time still gets
the full grace window, so every spot rental makes at least
``grace_seconds`` of progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.errors import SimulationError
from repro.market.prices import PriceProcess, PricePath, price_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.billing import BillingModel
    from repro.cloud.instance import InstanceType
    from repro.cloud.region import Region


@dataclass(frozen=True)
class PurchaseOption:
    """How one VM is bought: ``"on_demand"`` or ``"spot"`` with a bid.

    ``bid_multiplier`` is the bid as a multiple of the list price; an
    infinite bid never loses the capacity (but still pays the spot
    price).  On-demand ignores the bid entirely.
    """

    kind: str = "on_demand"
    bid_multiplier: float = math.inf

    def __post_init__(self) -> None:
        if self.kind not in ("on_demand", "spot"):
            raise SimulationError(f"unknown purchase kind {self.kind!r}")
        if not self.bid_multiplier > 0:
            raise SimulationError(
                f"bid_multiplier must be > 0, got {self.bid_multiplier}"
            )

    @property
    def is_spot(self) -> bool:
        return self.kind == "spot"

    def label(self) -> str:
        if not self.is_spot:
            return "on_demand"
        if math.isinf(self.bid_multiplier):
            return "spot(inf)"
        return f"spot({self.bid_multiplier:g})"


#: the paper's (and the default) purchase mode
ON_DEMAND = PurchaseOption()


def spot(bid_multiplier: float = math.inf) -> PurchaseOption:
    """A spot purchase bidding *bid_multiplier* × list price."""
    return PurchaseOption("spot", bid_multiplier)


@dataclass(frozen=True)
class Market:
    """A price environment: process + default purchase + grace window.

    Frozen and hashable so it can ride inside a frozen
    :class:`~repro.simulator.faults.FaultPlan` and key caches; the
    realized paths live in the :func:`~repro.market.prices.price_path`
    cache, seeded by the fault plan's seed.
    """

    process: PriceProcess
    #: purchase option for VMs that do not choose one explicitly
    purchase: PurchaseOption = ON_DEMAND
    #: seconds between the reclamation warning and the kill (EC2: 120)
    grace_seconds: float = 120.0
    #: how far ahead of a rent to scan for a price crossing; beyond it a
    #: bid is treated as never out-bid
    horizon_seconds: float = 30 * 86400.0

    def __post_init__(self) -> None:
        if self.grace_seconds < 0:
            raise SimulationError("grace_seconds must be >= 0")
        if self.horizon_seconds <= 0:
            raise SimulationError("horizon_seconds must be > 0")

    # ------------------------------------------------------------------
    def path(self, seed: int, itype: "InstanceType", region: "Region") -> PricePath:
        """The realized price path for one (flavor, region) identity."""
        return price_path(self.process, seed, itype.name, region.name)

    def vm_cost(
        self,
        billing: "BillingModel",
        seed: int,
        start: float,
        uptime: float,
        itype: "InstanceType",
        region: "Region",
        purchase: PurchaseOption,
    ) -> float:
        """USD rent for one VM under this market.

        On-demand VMs pay the fixed list price — exactly
        ``billing.vm_cost`` — whatever the spot market does.  Spot VMs
        pay the price integral over their paid window ``[start,
        start + paid_seconds]``; under a constant multiplier the cost is
        computed as ``list price × BTUs × multiplier`` so a multiplier
        of 1.0 reproduces the on-demand arithmetic bit-for-bit.
        """
        if not purchase.is_spot:
            return billing.vm_cost(uptime, itype, region)
        btus = billing.btus(uptime)
        if btus == 0:
            return 0.0
        price = region.price(itype)
        path = self.path(seed, itype, region)
        if path.is_constant:
            return price * btus * path.multiplier_at(start)
        lo, hi = billing.paid_window(start, uptime)
        return price * path.integral(lo, hi) / billing.btu_seconds


@dataclass(frozen=True)
class SpotInterruptionPlan:
    """Derives spot reclamation times from the market's price stream.

    The analogue of :meth:`FaultPlan.vm_crash_uptime` for the
    price-correlated crash process: :meth:`preemption` is a pure
    function of its arguments (no mutable state, no draw ordering), so
    identical seeds reproduce identical interruption times across
    execution backends.
    """

    market: Market
    seed: int = 0

    def preemption(
        self,
        itype: "InstanceType",
        region: "Region",
        purchase: PurchaseOption,
        rent_time: float,
    ) -> Tuple[float, float]:
        """``(warning_time, kill_time)`` for a VM rented at *rent_time*.

        ``(inf, inf)`` when the VM is on-demand, its bid is infinite, or
        the price never exceeds the bid within the market horizon.  The
        warning fires at the price-crossing instant (clamped to the rent
        time) and the kill follows ``grace_seconds`` later.
        """
        if not purchase.is_spot or math.isinf(purchase.bid_multiplier):
            return math.inf, math.inf
        path = self.market.path(self.seed, itype, region)
        cross = path.next_crossing_above(
            purchase.bid_multiplier,
            rent_time,
            rent_time + self.market.horizon_seconds,
        )
        if math.isinf(cross):
            return math.inf, math.inf
        warn = max(cross, rent_time)
        return warn, warn + self.market.grace_seconds
