"""Ablation: CPU-intensive vs data-intensive workloads.

The paper evaluates CPU-intensive tasks and only argues qualitatively
about the data-intensive case.  This bench runs the same Montage shape
with (a) the paper's Pareto runtimes and negligible data, and (b) the
same runtimes plus Pareto(1.3) data volumes on every edge (the paper's
task-size distribution, in the 0.5-10 GB range): as the
communication-to-computation ratio rises, policies that spread tasks
over many VMs pay transfer time that same-VM packing avoids, so the
makespan advantage of OneVMperTask over StartParExceed shrinks.
"""

import pytest

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.allocation.heft import HeftScheduler
from repro.util.tables import format_table
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoDataModel, ParetoModel
from repro.workflows.generators import montage


def _study(platform):
    cpu_wf = apply_model(montage(), ParetoModel(), seed=SWEEP_SEED)
    # heavy data variant: Pareto(1.3) edge volumes, scale 5 GB
    data_wf = apply_model(
        montage(),
        ParetoDataModel(size_scale_mb=5 * 1024.0),
        seed=SWEEP_SEED,
    )
    out = {}
    for name, wf in (("cpu", cpu_wf), ("data", data_wf)):
        spread = HeftScheduler("OneVMperTask").schedule(wf, platform)
        packed = HeftScheduler("StartParExceed").schedule(wf, platform)
        out[name] = {
            "spread_ms": spread.makespan,
            "packed_ms": packed.makespan,
            "advantage": packed.makespan / spread.makespan,
        }
    return out


def test_data_intensity_ablation(benchmark, platform, artifact_dir):
    out = benchmark(_study, platform)

    # sanity: parallel spreading wins makespan in both regimes
    for regime in out.values():
        assert regime["spread_ms"] <= regime["packed_ms"]

    # data gravity: the packing penalty shrinks when transfers dominate,
    # because same-VM hand-offs are free
    assert out["data"]["advantage"] < out["cpu"]["advantage"]

    # transfers must actually hurt the spread policy in the data regime
    assert out["data"]["spread_ms"] > out["cpu"]["spread_ms"] * 1.05

    save_artifact(
        artifact_dir,
        "ablation_data_intensive.txt",
        format_table(
            ["regime", "OneVMperTask ms", "StartParExceed ms", "packed/spread"],
            [
                (name, r["spread_ms"], r["packed_ms"], r["advantage"])
                for name, r in out.items()
            ],
            float_fmt=".2f",
            title="CPU- vs data-intensive Montage: packing penalty vs data gravity",
        ),
    )
