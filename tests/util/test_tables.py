"""Tests for the monospace table renderer."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "v"], [("a", 1.0), ("bb", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.00" in text and "22.50" in text
        # all rows share the header width
        assert len(set(len(l) for l in lines[:2])) <= 2

    def test_title(self):
        text = format_table(["x"], [("y",)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_none_renders_empty(self):
        text = format_table(["a", "b"], [("x", None)])
        assert "None" not in text

    def test_float_format(self):
        text = format_table(["a", "b"], [("x", 1.23456)], float_fmt=".4f")
        assert "1.2346" in text

    def test_int_not_float_formatted(self):
        text = format_table(["a", "n"], [("x", 7)])
        assert "7" in text and "7.00" not in text

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_first_column_left_aligned(self):
        text = format_table(["name", "v"], [("x", 1.0), ("longer", 2.0)])
        row = text.splitlines()[2]
        assert row.startswith("x ")

    def test_numbers_right_aligned(self):
        text = format_table(["name", "v"], [("a", 1.0), ("b", 100.0)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1.00")
        assert rows[1].endswith("100.00")
