"""Time-ordered event queue.

Events fire in (time, insertion sequence) order, so simultaneous events
are processed deterministically in the order they were scheduled —
essential for bit-for-bit reproducible experiments.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """An action queued at a simulation time."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` with stable ordering."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        if time < 0 or time != time:
            raise SimulationError(f"cannot schedule event at time {time}")
        ev = ScheduledEvent(time, next(self._counter), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> ScheduledEvent:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
