"""HEFT with pluggable provisioning (paper Sect. III-B, Table I).

Classic HEFT orders tasks by decreasing upward rank; here the *where*
half of the algorithm is delegated to a provisioning policy —
OneVMperTask, StartParNotExceed or StartParExceed in the paper's
experiments (the policies that need no knowledge of task parallelism).
"""

from __future__ import annotations

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.ranking import heft_order
from repro.core.builder import ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy, provisioning_policy
from repro.core.provisioning.one_vm_per_task import OneVMperTask
from repro.core.provisioning.start_par import StartParExceed, StartParNotExceed
from repro.core.schedule import Schedule
from repro.kernels.dispatch import columnar_active, platform_eligible
from repro.workflows.dag import Workflow


@register_algorithm
class HeftScheduler(SchedulingAlgorithm):
    """Rank-ordered list scheduling over a provisioning policy."""

    name = "HEFT"

    def __init__(
        self,
        provisioning: ProvisioningPolicy | str = "OneVMperTask",
        include_transfers: bool = True,
    ) -> None:
        if isinstance(provisioning, str):
            provisioning = provisioning_policy(provisioning)
        self.provisioning = provisioning
        self.include_transfers = include_transfers

    def _make_builder(self, workflow, platform, itype, region) -> ScheduleBuilder:
        """Hook for subclasses that attach region choosers etc."""
        return ScheduleBuilder(workflow, platform, itype, region)

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        # Large stock-model runs take the fused columnar kernel (see
        # LevelScheduler.schedule).  Exact-type checks keep subclasses
        # (e.g. LocalityHeftScheduler's region chooser) and the
        # ``try_all_vms`` StartPar variant on the indexed kernels.
        policy = self.provisioning
        fused_policy = (
            "onevm"
            if type(policy) is OneVMperTask
            else "startpar"
            if type(policy) is StartParExceed
            or (type(policy) is StartParNotExceed and not policy.try_all_vms)
            else None
        )
        if (
            type(self) is HeftScheduler
            and fused_policy is not None
            and columnar_active(len(workflow))
            and platform_eligible(platform, itype)
        ):
            from repro.kernels.provision import fused_heft_schedule

            return fused_heft_schedule(
                workflow,
                platform,
                itype,
                region,
                policy=fused_policy,
                exceed=getattr(policy, "exceed_btu", True),
                include_transfers=self.include_transfers,
                algorithm=self.name,
                provisioning=policy.name,
            )
        builder = self._make_builder(workflow, platform, itype, region)
        for tid in heft_order(workflow, platform, itype, self.include_transfers):
            builder.begin_task(tid)
            vm = self.provisioning.select_vm(tid, builder)
            builder.place(tid, vm)
        return builder.build(
            algorithm=self.name, provisioning=self.provisioning.name
        ).validate()
