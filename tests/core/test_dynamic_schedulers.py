"""Tests for CPA-Eager and Gain: budget respect, makespan improvement,
and the OneVMperTask starting structure."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.cpa_eager import CpaEagerScheduler
from repro.core.allocation.gain import GainScheduler
from repro.core.allocation.upgrade import one_vm_schedule, total_rent_cost
from repro.core.baseline import reference_schedule
from repro.errors import SchedulingError
from repro.workflows.generators import montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestOneVmHelpers:
    def test_one_vm_schedule_structure(self, diamond, platform):
        small = platform.itype("small")
        sched = one_vm_schedule(
            diamond, platform, {t: small for t in diamond.task_ids}
        )
        assert sched.vm_count == 4
        sched.validate()

    def test_cost_additivity(self, diamond, platform):
        """total_rent_cost equals the built schedule's rent."""
        small = platform.itype("small")
        types = {t: small for t in diamond.task_ids}
        types["B"] = platform.itype("xlarge")
        sched = one_vm_schedule(diamond, platform, types)
        assert total_rent_cost(diamond, platform, types) == pytest.approx(
            sched.rent_cost
        )

    def test_mixed_types_apply(self, diamond, platform):
        types = {t: platform.itype("small") for t in diamond.task_ids}
        types["B"] = platform.itype("large")
        sched = one_vm_schedule(diamond, platform, types)
        assert sched.vm_of("B").itype.name == "large"
        assert sched.finish("B") - sched.start("B") == pytest.approx(1200.0 / 2.1)


@pytest.mark.parametrize("scheduler_cls", [CpaEagerScheduler, GainScheduler])
class TestDynamicCommon:
    def test_budget_respected(self, scheduler_cls, platform, paper_workflow):
        ref = reference_schedule(paper_workflow, platform)
        sched = scheduler_cls(budget_factor=2.0).schedule(paper_workflow, platform)
        assert sched.total_cost <= 2.0 * ref.total_cost + 1e-9

    def test_never_slower_than_reference(self, scheduler_cls, platform, paper_workflow):
        ref = reference_schedule(paper_workflow, platform)
        sched = scheduler_cls().schedule(paper_workflow, platform)
        assert sched.makespan <= ref.makespan + 1e-6

    def test_keeps_one_vm_per_task(self, scheduler_cls, platform):
        wf = montage()
        sched = scheduler_cls().schedule(wf, platform)
        assert sched.vm_count == len(wf)
        assert all(len(vm.placements) == 1 for vm in sched.vms)

    def test_budget_one_means_no_upgrades(self, scheduler_cls, platform):
        wf = montage()
        sched = scheduler_cls(budget_factor=1.0).schedule(wf, platform)
        assert all(vm.itype.name == "small" for vm in sched.vms)

    def test_invalid_budget(self, scheduler_cls, platform):
        with pytest.raises(SchedulingError):
            scheduler_cls(budget_factor=0.5)

    def test_validates(self, scheduler_cls, platform, paper_workflow):
        scheduler_cls().schedule(paper_workflow, platform).validate()


class TestCpaEager:
    def test_upgrades_critical_path_first(self, platform):
        """On a chain, every task is critical: CPA upgrades the chain."""
        wf = sequential(4)
        # xlarge costs 8x small, so budget 8x upgrades the whole chain
        sched = CpaEagerScheduler(budget_factor=8.0).schedule(wf, platform)
        assert all(vm.itype.name == "xlarge" for vm in sched.vms)

    def test_large_budget_caps_at_catalog_top(self, platform):
        wf = sequential(3)
        sched = CpaEagerScheduler(budget_factor=100.0).schedule(wf, platform)
        assert sched.makespan == pytest.approx(3 * 1000.0 / 2.7, rel=1e-3)

    def test_off_critical_tasks_stay_small(self, platform, diamond):
        """C (the short branch) is never critical, so never upgraded,
        while budget is spent on the A-B-D path first."""
        sched = CpaEagerScheduler(budget_factor=2.0).schedule(diamond, platform)
        b_speed = sched.vm_of("B").itype.speedup
        c_speed = sched.vm_of("C").itype.speedup
        assert b_speed >= c_speed


class TestGain:
    def test_monotone_budget_use(self, platform):
        """More budget never yields a slower schedule."""
        wf = montage()
        ms = [
            GainScheduler(budget_factor=f).schedule(wf, platform).makespan
            for f in (1.0, 1.5, 2.0, 4.0)
        ]
        assert all(a >= b - 1e-6 for a, b in zip(ms, ms[1:]))

    def test_prefers_free_upgrades(self, platform):
        """An upgrade that costs nothing extra (same BTU count in a
        cheaper bracket) is infinite-gain and must be taken."""
        # 3600 s task: small = 1 BTU * 0.08; medium = 2250 s = 1 BTU * 0.16
        # -> not free. Use 7200 s: small 2 BTU (0.16), medium 4500 s ->
        # 2 BTU (0.32). Large: 3428 s -> 1 BTU (0.32). xlarge: 2666 -> 0.64.
        # No free lunch on this grid; instead check best-gain choice:
        wf = sequential(1).with_works({"step_000": 7200.0})
        sched = GainScheduler(budget_factor=2.0).schedule(wf, platform)
        # budget = 2 * 0.16 = 0.32: large fits exactly and is fastest per $
        assert sched.vms[0].itype.name == "large"

    def test_saturates_budget_or_catalog(self, platform):
        wf = montage()
        ref = reference_schedule(wf, platform)
        sched = GainScheduler(budget_factor=2.0).schedule(wf, platform)
        # greedy upgrading: the next upgrade would overflow the budget for
        # every task, so cost is close below the cap
        assert sched.total_cost >= 1.2 * ref.total_cost
