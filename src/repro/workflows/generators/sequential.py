"""Strictly sequential workflow (paper Fig. 2d) — a makefile-style chain
used to expose the limits of the parallel provisioning policies."""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_DATA_GB = 0.05


def sequential(length: int = 12, name: str = "sequential") -> Workflow:
    """Build a chain of *length* tasks, each depending on the previous."""
    if length < 1:
        raise WorkflowError("sequential workflow needs length >= 1")
    wf = Workflow(name)
    prev = wf.add_task(Task("step_000", 1000.0, "step"))
    for i in range(1, length):
        nxt = wf.add_task(Task(f"step_{i:03d}", 1000.0, "step"))
        wf.add_dependency(prev.id, nxt.id, _DATA_GB)
        prev = nxt
    return wf.validate()
