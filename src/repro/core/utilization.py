"""Fleet utilization and parallelism profiles of schedules.

Beyond the paper's scalar idle-time metric (Fig. 5), these tools expose
*where* the waste sits: per-VM utilization, the schedule-wide busy
fraction, and the parallelism profile — a step function of how many VMs
execute concurrently over time, whose peak is the fleet size a provider
must stand up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.schedule import Schedule


@dataclass(frozen=True)
class UtilizationReport:
    """Aggregate fleet statistics for one schedule."""

    label: str
    #: busy seconds / paid seconds over the whole fleet
    utilization: float
    #: per-VM busy/paid fractions, in VM order
    per_vm: Tuple[float, ...]
    #: maximum number of concurrently executing tasks
    peak_parallelism: int
    #: time-weighted average of concurrently executing tasks
    mean_parallelism: float

    @property
    def min_vm_utilization(self) -> float:
        return min(self.per_vm)

    @property
    def max_vm_utilization(self) -> float:
        return max(self.per_vm)


def parallelism_profile(schedule: Schedule) -> List[Tuple[float, int]]:
    """Step function of concurrent executions: ``[(time, count), ...]``.

    Each entry gives the concurrency from that time until the next
    entry's time; the profile starts at the first task start and ends
    with a ``(makespan, 0)`` sentinel.
    """
    deltas: List[Tuple[float, int]] = []
    for vm in schedule.vms:
        for p in vm.placements:
            deltas.append((p.start, +1))
            deltas.append((p.end, -1))
    deltas.sort()
    profile: List[Tuple[float, int]] = []
    count = 0
    for t, d in deltas:
        count += d
        if profile and profile[-1][0] == t:
            profile[-1] = (t, count)
        else:
            profile.append((t, count))
    return profile


def utilization(schedule: Schedule) -> UtilizationReport:
    """Compute the :class:`UtilizationReport` of *schedule*."""
    billing = schedule.platform.billing
    busy = sum(vm.busy_seconds for vm in schedule.vms)
    paid = sum(vm.paid_seconds(billing) for vm in schedule.vms)
    per_vm = tuple(
        vm.busy_seconds / vm.paid_seconds(billing) for vm in schedule.vms
    )
    profile = parallelism_profile(schedule)
    peak = max((c for _, c in profile), default=0)
    weighted = 0.0
    for (t0, c), (t1, _) in zip(profile, profile[1:]):
        weighted += c * (t1 - t0)
    span = profile[-1][0] - profile[0][0] if len(profile) > 1 else 0.0
    return UtilizationReport(
        label=schedule.label,
        utilization=busy / paid if paid > 0 else 0.0,
        per_vm=per_vm,
        peak_parallelism=peak,
        mean_parallelism=weighted / span if span > 0 else 0.0,
    )
