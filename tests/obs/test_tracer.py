"""Tests for repro.obs.tracer: spans, merging, serialization, the
null tracer's no-op contract, and the Chrome-trace structural check."""

import json

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    SIM_US,
    NullTracer,
    Tracer,
    ensure_tracer,
    validate_chrome_trace,
)


class TestSpans:
    def test_span_records_complete_event(self):
        t = Tracer()
        with t.span("work", cat="test", tid="main", detail=3):
            pass
        (ev,) = t.events
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["dur"] >= 0
        assert ev["args"] == {"detail": 3}

    def test_span_records_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert [e["name"] for e in t.events] == ["boom"]

    def test_nested_spans_nest_in_time(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.events
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        validate_chrome_trace(t.to_chrome())

    def test_complete_uses_sim_time_scale(self):
        t = Tracer()
        t.complete("task", ts=2.0, dur=3.0, tid="vm0", cat="sim.task")
        (ev,) = t.events
        assert ev["ts"] == 2.0 * SIM_US and ev["dur"] == 3.0 * SIM_US

    def test_instant_and_counter(self):
        t = Tracer()
        t.instant("fail", ts=1.0, tid="vm0")
        t.counter("vms", 4, ts=1.0)
        kinds = [e["ph"] for e in t.events]
        assert kinds == ["i", "C"]
        assert t.events[1]["args"] == {"value": 4}

    def test_next_run_increments(self):
        t = Tracer()
        assert [t.next_run(), t.next_run(), t.next_run()] == [1, 2, 3]


class TestAdopt:
    def test_adopt_rehomes_pid_and_names_process(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("cell-work"):
            pass
        n = parent.adopt(worker.events, label="cell:best/montage")
        assert n == 1
        meta = [e for e in parent.events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "cell:best/montage"
        adopted = [e for e in parent.events if e["ph"] == "X"]
        assert adopted[0]["pid"] != worker.pid
        # the worker's own event list is untouched
        assert worker.events[0]["pid"] == worker.pid

    def test_adopt_assigns_distinct_pids(self):
        parent = Tracer()
        w1, w2 = Tracer(), Tracer()
        with w1.span("a"):
            pass
        with w2.span("b"):
            pass
        parent.adopt(w1.events, label="one")
        parent.adopt(w2.events, label="two")
        pids = {e["pid"] for e in parent.events if e["ph"] == "X"}
        assert len(pids) == 2
        validate_chrome_trace(parent.to_chrome())


class TestSerialization:
    def test_write_chrome_roundtrip(self, tmp_path):
        t = Tracer()
        with t.span("work"):
            t.instant("mark")
        path = t.write_chrome(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(validate_chrome_trace(data)) == 2

    def test_write_jsonl_one_event_per_line(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            pass
        t.instant("b")
        path = t.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] in ("a", "b") for line in lines)


class TestNullTracer:
    def test_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_emission_is_noop(self):
        with NULL_TRACER.span("x", cat="y", tid="z", arg=1):
            pass
        NULL_TRACER.complete("a", ts=0, dur=1)
        NULL_TRACER.instant("b")
        NULL_TRACER.counter("c", 1)
        NULL_TRACER.gauge("d", 2)
        assert NULL_TRACER.adopt([{"name": "e"}], label="w") == 0
        assert NULL_TRACER.next_run() == 0
        assert len(NULL_TRACER) == 0

    def test_span_is_reusable_context_manager(self):
        cm = NULL_TRACER.span("x")
        with cm:
            pass
        with cm:  # the same object is handed out every time
            pass
        assert NULL_TRACER.events == []

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        t = Tracer()
        assert ensure_tracer(t) is t


class TestValidateChromeTrace:
    def test_rejects_non_envelope(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_missing_fields(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0}]}
        with pytest.raises(ValueError, match="lacks 'tid'"):
            validate_chrome_trace(bad)

    def test_rejects_missing_dur_on_complete(self):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": "m"}
            ]
        }
        with pytest.raises(ValueError, match="non-negative 'dur'"):
            validate_chrome_trace(bad)

    def test_rejects_partial_overlap_on_one_track(self):
        def span(name, ts, dur):
            return {
                "name": name, "ph": "X", "ts": ts, "dur": dur,
                "pid": 0, "tid": "vm0",
            }

        bad = {"traceEvents": [span("a", 0, 10), span("b", 5, 10)]}
        with pytest.raises(ValueError, match="partially overlaps"):
            validate_chrome_trace(bad)

    def test_accepts_nesting_and_disjoint(self):
        def span(name, ts, dur, tid="vm0"):
            return {
                "name": name, "ph": "X", "ts": ts, "dur": dur,
                "pid": 0, "tid": tid,
            }

        good = {
            "traceEvents": [
                span("outer", 0, 10),
                span("inner", 2, 3),
                span("later", 12, 5),
                span("other-track", 5, 100, tid="vm1"),
            ]
        }
        assert len(validate_chrome_trace(good)) == 4

    def test_overlap_on_distinct_tracks_is_fine(self):
        ok = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": "x"},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": "x"},
            ]
        }
        validate_chrome_trace(ok)
