"""Workflow graph transformations.

Preprocessing steps the clustering literature (PCH, HCOC — the paper's
related work) applies before scheduling:

* :func:`transitive_reduction` — drop dependencies implied by longer
  paths; they never change timing but inflate rank/transfer bookkeeping;
* :func:`merge_chains` — collapse maximal linear chains into single
  tasks (sum of works, inherited boundary edges), the degenerate
  clustering that is always makespan-safe on one VM;
* :func:`chain_decomposition` — the maximal chains themselves, for
  callers that want the clusters without rewriting the graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def _graph(wf: Workflow) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(wf.task_ids)
    for u, v, gb in wf.edges():
        g.add_edge(u, v, data_gb=gb)
    return g


def transitive_reduction(wf: Workflow) -> Workflow:
    """Copy of *wf* without edges implied by longer paths.

    The data volume of a removed edge is *not* rerouted: a transitive
    edge's payload still has to travel, so removal is only safe when the
    redundant edges carry no data — otherwise the edge is kept.
    """
    wf.validate()
    g = _graph(wf)
    reduced = nx.transitive_reduction(g)
    out = Workflow(wf.name)
    for task in wf.tasks:
        out.add_task(task)
    for u, v, gb in wf.edges():
        if reduced.has_edge(u, v) or gb > 0:
            out.add_dependency(u, v, gb)
    return out.validate()


def chain_decomposition(wf: Workflow) -> List[List[str]]:
    """Maximal linear chains: runs of tasks where each interior link is
    the sole successor of its predecessor and the sole predecessor of
    its successor.  Every task appears in exactly one chain (possibly a
    singleton); chains are reported in topological order of their heads.
    """
    wf.validate()
    in_chain: Dict[str, bool] = {}
    chains: List[List[str]] = []
    for tid in wf.topological_order():
        if in_chain.get(tid):
            continue
        chain = [tid]
        in_chain[tid] = True
        current = tid
        while True:
            succs = wf.successors(current)
            if len(succs) != 1:
                break
            nxt = succs[0]
            if len(wf.predecessors(nxt)) != 1 or in_chain.get(nxt):
                break
            chain.append(nxt)
            in_chain[nxt] = True
            current = nxt
        chains.append(chain)
    return chains


def merge_chains(wf: Workflow, separator: str = "+") -> Workflow:
    """Collapse each maximal chain into one task.

    The merged task's work is the chain's total work; its id joins the
    member ids with *separator*; boundary edges keep their volumes
    (intra-chain edges disappear — their data never leaves the VM).
    """
    wf.validate()
    chains = chain_decomposition(wf)
    owner: Dict[str, str] = {}
    merged_ids: Dict[str, List[str]] = {}
    for chain in chains:
        mid = separator.join(chain)
        merged_ids[mid] = chain
        for tid in chain:
            owner[tid] = mid

    out = Workflow(wf.name)
    for mid, members in merged_ids.items():
        total = sum(wf.task(t).work for t in members)
        category = wf.task(members[0]).category
        out.add_task(Task(mid, total, category, {"members": tuple(members)}))
    edges: Dict[Tuple[str, str], float] = {}
    for u, v, gb in wf.edges():
        mu, mv = owner[u], owner[v]
        if mu == mv:
            continue  # intra-chain hand-off: same VM, free
        edges[(mu, mv)] = edges.get((mu, mv), 0.0) + gb
    for (mu, mv), gb in sorted(edges.items()):
        out.add_dependency(mu, mv, gb)
    return out.validate()


def expand_merged_schedule_order(workflow: Workflow, merged_task_id: str) -> List[str]:
    """Member task ids of a merged task, in execution order."""
    members = workflow.task(merged_task_id).attrs.get("members")
    if members is None:
        raise WorkflowError(
            f"{merged_task_id!r} is not a merged task (no 'members' attr)"
        )
    return list(members)
