"""Dependency-free SVG scatter and bar charts.

The ASCII renderers serve the terminal; these emit standalone ``.svg``
files for the paper's Figure 4 (gain/loss scatter) and Figure 5 (idle
bars) so results can be viewed in a browser.  Pure string assembly — no
plotting library.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple
from xml.sax.saxutils import escape

# a qualitative palette with decent contrast, cycled over series
_PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
    "#aa3377", "#bbbbbb", "#000000", "#e69f00", "#56b4e9",
    "#009e73", "#f0e442", "#0072b2", "#d55e00", "#cc79a7",
    "#999933", "#882255", "#44aa99", "#117733",
]


def _bounds(values: List[float], pad: float = 0.08) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        lo, hi = lo - 1.0, hi + 1.0
    span = hi - lo
    return lo - pad * span, hi + pad * span


def svg_scatter(
    points: Mapping[str, Tuple[float, float]],
    *,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 720,
    height: int = 480,
    mark_origin: bool = True,
) -> str:
    """Render labelled points as an SVG scatter with legend.

    The y axis follows the paper's Figure 4 (loss grows upward); the
    origin cross marks the reference strategy.
    """
    if not points:
        raise ValueError("svg_scatter needs at least one point")
    margin_l, margin_r, margin_t, margin_b = 60, 230, 40, 50
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    xs = [p[0] for p in points.values()] + ([0.0] if mark_origin else [])
    ys = [p[1] for p in points.values()] + ([0.0] if mark_origin else [])
    xlo, xhi = _bounds(xs)
    ylo, yhi = _bounds(ys)

    def px(x: float) -> float:
        return margin_l + (x - xlo) / (xhi - xlo) * plot_w

    def py(y: float) -> float:
        return margin_t + (yhi - y) / (yhi - ylo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="15">{escape(title)}</text>'
        )
    parts.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 12}" '
        f'text-anchor="middle">{escape(xlabel)}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_t + plot_h / 2:.0f})">'
        f"{escape(ylabel)}</text>"
    )
    if mark_origin and xlo < 0 < xhi:
        parts.append(
            f'<line x1="{px(0):.1f}" y1="{margin_t}" x2="{px(0):.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#999" stroke-dasharray="4 3"/>'
        )
    if mark_origin and ylo < 0 < yhi:
        parts.append(
            f'<line x1="{margin_l}" y1="{py(0):.1f}" '
            f'x2="{margin_l + plot_w}" y2="{py(0):.1f}" stroke="#999" '
            f'stroke-dasharray="4 3"/>'
        )
    # axis extremity labels
    for x in (xlo, xhi):
        parts.append(
            f'<text x="{px(x):.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle" fill="#555">{x:.0f}</text>'
        )
    for y in (ylo, yhi):
        parts.append(
            f'<text x="{margin_l - 6}" y="{py(y) + 4:.1f}" '
            f'text-anchor="end" fill="#555">{y:.0f}</text>'
        )
    for i, (name, (x, y)) in enumerate(points.items()):
        color = _PALETTE[i % len(_PALETTE)]
        parts.append(
            f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="5" '
            f'fill="{color}" fill-opacity="0.85"><title>'
            f"{escape(name)} ({x:.1f}, {y:.1f})</title></circle>"
        )
        ly = margin_t + 14 * i
        parts.append(
            f'<circle cx="{width - margin_r + 14}" cy="{ly:.0f}" r="5" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width - margin_r + 24}" y="{ly + 4:.0f}">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bars(
    values: Mapping[str, float],
    *,
    title: str = "",
    unit: str = "",
    width: int = 720,
    bar_height: int = 18,
) -> str:
    """Render a horizontal bar chart as SVG."""
    if not values:
        raise ValueError("svg_bars needs at least one bar")
    margin_l, margin_r, margin_t = 200, 90, 44
    vmax = max(values.values()) or 1.0
    height = margin_t + bar_height * len(values) + 20
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">'
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="15">{escape(title)}</text>'
        )
    plot_w = width - margin_l - margin_r
    for i, (name, v) in enumerate(values.items()):
        y = margin_t + i * bar_height
        w = max(0.0, v / vmax * plot_w)
        color = _PALETTE[i % len(_PALETTE)]
        parts.append(
            f'<text x="{margin_l - 8}" y="{y + bar_height - 6}" '
            f'text-anchor="end">{escape(name)}</text>'
        )
        parts.append(
            f'<rect x="{margin_l}" y="{y + 2}" width="{w:.1f}" '
            f'height="{bar_height - 6}" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{margin_l + w + 6:.1f}" y="{y + bar_height - 6}" '
            f'fill="#555">{v:,.0f}{escape(unit)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
