"""The paper's three execution-time scenarios (Sect. IV-B).

``pareto`` draws Feitelson Pareto runtimes; ``best`` makes all tasks
equal with the workflow fitting one BTU sequentially; ``worst`` makes
every task overrun a BTU even on the fastest instance.  A scenario is a
pure function of ``(workflow shape, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow
from repro.workloads.base import ExecutionTimeModel, apply_model
from repro.workloads.pareto import ParetoModel
from repro.workloads.uniform import BestCaseModel, WorstCaseModel


@dataclass(frozen=True)
class Scenario:
    """A named execution-time regime applied to workflow shapes."""

    name: str
    model_factory: Callable[[], ExecutionTimeModel]
    #: stochastic scenarios consume the sweep seed; deterministic ones don't
    stochastic: bool = False

    def apply(self, workflow: Workflow, seed=None) -> Workflow:
        model = self.model_factory()
        return apply_model(workflow, model, seed if self.stochastic else None)


def paper_scenarios(platform: CloudPlatform | None = None) -> List[Scenario]:
    """Pareto / best / worst, parameterized by the platform's BTU and
    top speed-up so the boundary properties hold by construction."""
    platform = platform or CloudPlatform.ec2()
    btu = platform.btu_seconds
    max_speedup = max(t.speedup for t in platform.catalog.values())
    # functools.partial instead of lambdas so a Scenario pickles across
    # process-pool workers (repro.experiments.parallel).
    return [
        Scenario("pareto", ParetoModel, stochastic=True),
        Scenario("best", partial(BestCaseModel, btu_seconds=btu)),
        Scenario(
            "worst",
            partial(
                WorstCaseModel,
                btu_seconds=btu,
                max_speedup=max_speedup,
                factor=max_speedup + 0.1,
            ),
        ),
    ]


def scenario(name: str, platform: CloudPlatform | None = None) -> Scenario:
    """Look up one of the paper's scenarios by name."""
    scenarios = paper_scenarios(platform)
    for s in scenarios:
        if s.name == name.lower():
            return s
    raise ExperimentError(
        unknown_name_message("scenario", name, (s.name for s in scenarios))
    )


def scenario_map(platform: CloudPlatform | None = None) -> Dict[str, Scenario]:
    return {s.name: s for s in paper_scenarios(platform)}


# ----------------------------------------------------------------------
# price scenarios (the market axis orthogonal to execution times)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PriceScenario:
    """A named price environment + the recovery policy that fits it.

    Orthogonal to the runtime :class:`Scenario` axis: a price scenario
    changes what VMs *cost* and when spot capacity is reclaimed, never
    how long tasks run.  ``on_demand`` is the control — the paper's
    fixed-price market, byte-identical to running without a market.
    """

    name: str
    market: object  # a repro.market.Market (typed loosely: lazy import)
    recovery: str = "rebid"


def price_scenarios() -> List["PriceScenario"]:
    """The default pricing family: a fixed-price control plus three
    spot regimes of increasing hostility.

    * ``on_demand`` — constant multiplier 1.0, on-demand purchases; the
      zero-market control (identical schedules, identical bills).
    * ``spot_calm`` — mean-reverting walk around 0.35x list price with
      a comfortable 0.8x bid; interruptions are rare, savings large.
    * ``spot_spike`` — a step trace with periodic spikes above a 0.5x
      bid: correlated reclamations hit all spot VMs of a flavor at
      once; recovery re-bids higher.
    * ``spot_volatile`` — a high-variance walk against a 0.6x bid;
      recovery falls back to on-demand after the first loss.
    """
    from repro.market import (
        ConstantPrice,
        Market,
        MeanRevertingPrice,
        StepTracePrice,
        spot,
    )

    spike_times = tuple(float(t) for t in range(0, 7 * 3600, 3600))
    spike_mults = tuple(1.2 if i % 2 else 0.3 for i in range(len(spike_times)))
    return [
        PriceScenario("on_demand", Market(ConstantPrice(1.0)), recovery="retry"),
        PriceScenario(
            "spot_calm",
            Market(MeanRevertingPrice(), purchase=spot(0.8)),
        ),
        PriceScenario(
            "spot_spike",
            Market(StepTracePrice(spike_times, spike_mults), purchase=spot(0.5)),
        ),
        PriceScenario(
            "spot_volatile",
            Market(
                MeanRevertingPrice(mean=0.45, sigma=0.2), purchase=spot(0.6)
            ),
            recovery="fallback",
        ),
    ]


def price_scenario(name: str) -> "PriceScenario":
    """Look up one pricing scenario by name."""
    family = price_scenarios()
    for s in family:
        if s.name == name.lower():
            return s
    raise ExperimentError(
        unknown_name_message("price scenario", name, (s.name for s in family))
    )
