"""Ablation: co-renting idle time (paper Sect. V).

"Given the large idle times their best use could be in a co-rent
scenario where idle time is leased to other users and the user is
partially reimbursed."  This bench quantifies it: reimbursement shrinks
the cost gap between the heavy-idle policies (OneVMperTask, GAIN,
CPA-Eager) and the packing policies, and ranks policies by wasted energy
— where the heavy-idle policies' "negative impact [is] even more
obvious" (the paper's energy-aware remark).
"""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.baseline import reference_schedule
from repro.core.economics import CoRentModel, EnergyModel
from repro.experiments.config import paper_strategies
from repro.experiments.scenarios import scenario
from repro.util.tables import format_table
from repro.workflows.generators import montage


def _study(platform):
    wf = scenario("pareto", platform).apply(montage(), SWEEP_SEED)
    corent = CoRentModel(reimbursement_rate=0.5)
    energy = EnergyModel()
    rows = {}
    for spec in paper_strategies():
        sched = spec.run(wf, platform)
        rows[spec.label] = (
            sched.total_cost,
            corent.effective_cost(sched),
            sched.total_idle_seconds,
            energy.wasted_kwh(sched),
        )
    return rows


def test_corent_and_energy_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    # co-rent reduces every strategy's cost (nothing has zero idle)
    for label, (plain, effective, idle, wasted) in rows.items():
        assert effective <= plain
        assert idle > 0 and wasted > 0

    # the heavy-idle policies recover the most money...
    recovered = {l: plain - eff for l, (plain, eff, _, _) in rows.items()}
    assert recovered["OneVMperTask-s"] > recovered["StartParExceed-s"]
    assert recovered["GAIN"] > recovered["AllPar1LnS"]

    # ...and burn the most energy for nothing
    wasted = {l: w for l, (_, _, _, w) in rows.items()}
    top3 = sorted(wasted, key=wasted.get, reverse=True)[:3]
    heavy = {"OneVMperTask-s", "OneVMperTask-m", "OneVMperTask-l", "GAIN", "CPA-Eager"}
    assert set(top3) <= heavy

    table_rows = [
        (l, plain, eff, idle, kwh)
        for l, (plain, eff, idle, kwh) in sorted(rows.items())
    ]
    save_artifact(
        artifact_dir,
        "ablation_corent.txt",
        format_table(
            ["strategy", "cost $", "co-rent $", "idle s", "wasted kWh"],
            table_rows,
            title="Co-rent (50% reimbursement) and wasted energy, Montage/Pareto",
        ),
    )
