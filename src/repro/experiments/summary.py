"""Cross-cell strategy summaries.

The paper's narrative keeps referring to *stability* — "any strategy
which might provide stable results in terms of cost and makespan
throughout the tests", "Gain and CPA-Eager ... produce stable results
throughout the three cases", Table IV's "stable gain".  This module
computes that: per strategy, the gain/loss distribution over every
(scenario, workflow) cell of a sweep, plus how often it lands in the
target square.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.runner import SweepResult
from repro.util.tables import format_table


@dataclass(frozen=True)
class StrategySummary:
    """Aggregate behaviour of one strategy across a sweep."""

    label: str
    cells: int
    mean_gain_pct: float
    gain_spread_pct: float  # max - min
    mean_loss_pct: float
    loss_spread_pct: float
    in_square_fraction: float

    @property
    def stable_gain(self) -> bool:
        """Gain varies by under 5 points across all cells — Table IV's
        "stable gain" notion."""
        return self.gain_spread_pct < 5.0

    @property
    def stable_loss(self) -> bool:
        return self.loss_spread_pct < 5.0


def summarize(sweep: SweepResult) -> Dict[str, StrategySummary]:
    """Per-strategy summary over every cell of *sweep*."""
    by_label: Dict[str, List] = {}
    for _sc, _wf, label, m in sweep.rows():
        by_label.setdefault(label, []).append(m)
    out: Dict[str, StrategySummary] = {}
    for label, ms in by_label.items():
        gains = [m.gain_pct for m in ms]
        losses = [m.loss_pct for m in ms]
        out[label] = StrategySummary(
            label=label,
            cells=len(ms),
            mean_gain_pct=statistics.fmean(gains),
            gain_spread_pct=max(gains) - min(gains),
            mean_loss_pct=statistics.fmean(losses),
            loss_spread_pct=max(losses) - min(losses),
            in_square_fraction=sum(m.in_target_square for m in ms) / len(ms),
        )
    return out


def most_stable(sweep: SweepResult, top: int = 5) -> List[StrategySummary]:
    """Strategies ranked by combined gain+loss spread, most stable first."""
    ranked = sorted(
        summarize(sweep).values(),
        key=lambda s: (s.gain_spread_pct + s.loss_spread_pct, s.label),
    )
    return ranked[:top]


def render_run_counters(sweep: SweepResult) -> str:
    """The sweep's rolled-up run counters as a table; "" without them.

    Counters come from ``run_sweep(metrics=...)`` and hold simulation
    facts only, so this rendering is byte-identical for the same seed no
    matter which execution backend produced the cells.
    """
    if not sweep.counters:
        return ""
    rows = []
    for kind in ("counters", "gauges"):
        for name, value in sweep.counters.get(kind, {}).items():
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            rows.append((name, kind[:-1], value))
    if not rows:
        return ""
    return format_table(
        ["metric", "kind", "value"],
        rows,
        title="Run counters (rolled up across cells)",
    )


def render_summary(sweep: SweepResult) -> str:
    rows = [
        (
            s.label,
            s.cells,
            s.mean_gain_pct,
            s.gain_spread_pct,
            s.mean_loss_pct,
            s.loss_spread_pct,
            s.in_square_fraction * 100,
        )
        for s in sorted(
            summarize(sweep).values(), key=lambda s: -s.in_square_fraction
        )
    ]
    return format_table(
        [
            "strategy",
            "cells",
            "mean gain %",
            "gain spread",
            "mean loss %",
            "loss spread",
            "in square %",
        ],
        rows,
        float_fmt=".1f",
        title="Strategy stability across the sweep",
    )
