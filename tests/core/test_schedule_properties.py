"""Hypothesis property tests over complete schedules: independent
recomputation of cost/idle, the VM-liveness (deprovision-at-BTU-
boundary) invariant, and DES equivalence — across random shapes, random
runtimes and every strategy family."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.allpar1lns import AllPar1LnSScheduler
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.experiments.config import paper_strategies
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import random_layered

_PLATFORM = CloudPlatform.ec2()

_STRATEGIES = [
    lambda: HeftScheduler("OneVMperTask"),
    lambda: HeftScheduler("StartParNotExceed"),
    lambda: HeftScheduler("StartParExceed"),
    lambda: AllParScheduler(exceed=True),
    lambda: AllParScheduler(exceed=False),
    lambda: AllPar1LnSScheduler(),
]


def _random_schedules(seed):
    wf = apply_model(
        random_layered(layers=4, seed=seed), ParetoModel(), seed=seed
    )
    for factory in _STRATEGIES:
        yield factory().schedule(wf, _PLATFORM)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_cost_recomputes_from_first_principles(seed):
    """Schedule.total_cost == sum over VMs of ceil(uptime/BTU) * price,
    recomputed here without the billing module."""
    for sched in _random_schedules(seed):
        expected = 0.0
        for vm in sched.vms:
            uptime = vm.rent_end - vm.rent_start
            btus = max(1, math.ceil(uptime / 3600.0 - 1e-9))
            expected += btus * vm.region.prices[vm.itype.name]
        assert sched.rent_cost == pytest.approx(expected)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_idle_recomputes_from_first_principles(seed):
    for sched in _random_schedules(seed):
        expected = 0.0
        for vm in sched.vms:
            uptime = vm.rent_end - vm.rent_start
            paid = max(1, math.ceil(uptime / 3600.0 - 1e-9)) * 3600.0
            expected += paid - sum(p.duration for p in vm.placements)
        assert sched.total_idle_seconds == pytest.approx(expected)
        assert sched.total_idle_seconds >= -1e-9


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_vm_liveness_invariant(seed):
    """No placement may start after the VM's BTU horizon had expired:
    an idle VM is deprovisioned at the end of its last started BTU, so
    every next placement must begin before that boundary."""
    for sched in _random_schedules(seed):
        for vm in sched.vms:
            ordered = sorted(vm.placements, key=lambda p: p.start)
            start0 = ordered[0].start
            for i in range(1, len(ordered)):
                uptime_so_far = ordered[i - 1].end - start0
                horizon = start0 + math.ceil(uptime_so_far / 3600.0 - 1e-9) * 3600.0
                assert ordered[i].start <= horizon + 1e-6, (
                    f"{sched.label}/{vm.name}: {ordered[i].task_id} starts "
                    f"at {ordered[i].start:.1f} past horizon {horizon:.1f}"
                )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_des_equivalence_on_random_inputs(seed):
    for sched in _random_schedules(seed):
        simulate_schedule(sched, check=True)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_makespan_bounds(seed):
    """Every schedule's makespan sits between the critical path (on its
    fastest used type) and the fully-serialized total work plus
    transfer slack."""
    wf = apply_model(
        random_layered(layers=4, seed=seed), ParetoModel(), seed=seed
    )
    _, cp = wf.critical_path()
    for factory in _STRATEGIES:
        sched = factory().schedule(wf, _PLATFORM)
        fastest = max(vm.itype.speedup for vm in sched.vms)
        assert sched.makespan >= cp / fastest - 1e-6
        # loose upper bound: serialize everything + a transfer per edge
        slack = sum(
            _PLATFORM.transfer_time(gb, _PLATFORM.itype("small"), _PLATFORM.itype("small"))
            for _, _, gb in wf.edges()
        )
        assert sched.makespan <= wf.total_work() + slack + 1e-6
