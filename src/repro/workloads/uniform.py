"""The paper's boundary scenarios (Sect. IV-B).

*Best case*: all tasks equal and short enough that the whole workflow
fits one BTU sequentially (``n * e <= BTU``) — a sequential provisioning
then costs exactly 1 BTU while a fully parallel one costs n BTUs.

*Worst case*: all tasks equal and so long that even the fastest instance
cannot fit one inside a BTU (``BTU < e / 2.7``) — every NotExceed policy
degenerates to OneVMperTask.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import ExecutionTimeModel
from repro.workflows.dag import Workflow


class ConstantModel(ExecutionTimeModel):
    """Every task takes exactly *runtime* reference seconds."""

    name = "constant"

    def __init__(self, runtime: float) -> None:
        if runtime <= 0:
            raise ValueError(f"runtime must be positive, got {runtime}")
        self.runtime = float(runtime)

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        return {tid: self.runtime for tid in wf.task_ids}


class BestCaseModel(ConstantModel):
    """Equal tasks with ``n * e <= BTU`` (paper's best case).

    The runtime is derived from the workflow size at application time,
    so :meth:`runtimes` — not the constructor — fixes ``e = slack *
    BTU / n``.
    """

    name = "best"

    def __init__(self, btu_seconds: float = 3600.0, slack: float = 1.0) -> None:
        if btu_seconds <= 0:
            raise ValueError("btu_seconds must be positive")
        if not (0 < slack <= 1.0):
            raise ValueError("slack must be in (0, 1]")
        self.btu_seconds = btu_seconds
        self.slack = slack
        super().__init__(runtime=btu_seconds)  # placeholder, replaced per-workflow

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        e = self.slack * self.btu_seconds / len(wf)
        return {tid: e for tid in wf.task_ids}


class WorstCaseModel(ConstantModel):
    """Equal tasks with ``e > max_speedup * BTU`` (paper's worst case).

    With ``factor`` > ``max_speedup`` (2.7 for xlarge) the task overruns
    a BTU even on the fastest instance.
    """

    name = "worst"

    def __init__(
        self,
        btu_seconds: float = 3600.0,
        max_speedup: float = 2.7,
        factor: float = 2.8,
    ) -> None:
        if btu_seconds <= 0:
            raise ValueError("btu_seconds must be positive")
        if factor <= max_speedup:
            raise ValueError(
                f"factor ({factor}) must exceed max_speedup ({max_speedup}) "
                "for the worst-case property to hold"
            )
        super().__init__(runtime=factor * btu_seconds)
        self.btu_seconds = btu_seconds
        self.max_speedup = max_speedup
        self.factor = factor
