"""Straightforward (pre-indexed) provisioning kernels, kept as oracles.

These classes are the original full-scan implementations of the paper's
five policies, before the production versions in ``all_par.py`` /
``start_par.py`` were rewritten against the :class:`ScheduleBuilder`
indexes: ``AllPar*Reference`` walks every VM's complete task list per
placement (O(V·tasks)), ``StartPar*Reference`` re-filters and re-sorts
the whole fleet per task.  Obviously correct, hopelessly quadratic.

They are deliberately **not** registered in ``PROVISIONING_POLICIES``
(the registry is pinned to the paper's five names); instantiate them
directly.  The kernel-equivalence property tests and
``benchmarks/bench_scaling.py`` assert the optimized policies produce
byte-identical schedules (same VM windows, task order, timing and cost)
and measure the speedup (see DESIGN.md §9).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy


class _AllParReferenceBase(ProvisioningPolicy):
    """AllPar[Not]Exceed via the full candidate rescan."""

    exceed_btu: bool = True

    def _free_vms_for_level(
        self, task_id: str, builder: ScheduleBuilder
    ) -> List[BuilderVM]:
        """Existing VMs not already hosting a task of *task_id*'s level
        and still alive when the task could start on them."""
        lvl = builder.level_of(task_id)
        return [
            vm
            for vm in builder.vms
            if not vm.empty
            and all(builder.level_of(t) != lvl for t in vm.order)
            and builder.is_reusable(task_id, vm)
        ]

    def _pick(
        self, task_id: str, builder: ScheduleBuilder, candidates: List[BuilderVM]
    ) -> Optional[BuilderVM]:
        if not candidates:
            return None
        pred_vm = builder.vm_of_largest_predecessor(task_id)
        if pred_vm is not None and pred_vm in candidates:
            return pred_vm
        return max(candidates, key=lambda vm: (vm.busy_seconds, -vm.id))

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        if builder.level_size(task_id) > 1:
            candidates = self._free_vms_for_level(task_id, builder)
        else:
            pred_vm = builder.vm_of_largest_predecessor(task_id)
            candidates = (
                [pred_vm]
                if pred_vm is not None and builder.is_reusable(task_id, pred_vm)
                else []
            )
        if not self.exceed_btu:
            candidates = [
                vm for vm in candidates if builder.fits_in_btu(task_id, vm)
            ]
        chosen = self._pick(task_id, builder, candidates)
        return chosen if chosen is not None else builder.new_vm()


class AllParNotExceedReference(_AllParReferenceBase):
    name = "AllParNotExceedReference"
    exceed_btu = False


class AllParExceedReference(_AllParReferenceBase):
    name = "AllParExceedReference"
    exceed_btu = True


class _StartParReferenceBase(ProvisioningPolicy):
    """StartPar[Not]Exceed via the full fleet refilter/resort."""

    exceed_btu: bool = True
    try_all_vms: bool = False

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        if builder.is_entry(task_id):
            return builder.new_vm()
        alive = [
            vm
            for vm in builder.vms
            if not vm.empty and builder.is_reusable(task_id, vm)
        ]
        target = builder.busiest_vm(alive)
        if target is None:
            return builder.new_vm()
        if self.exceed_btu or builder.fits_in_btu(task_id, target):
            return target
        if self.try_all_vms:
            others = sorted(
                (vm for vm in alive if vm is not target),
                key=lambda vm: (-vm.busy_seconds, vm.id),
            )
            for vm in others:
                if builder.fits_in_btu(task_id, vm):
                    return vm
        return builder.new_vm()


class StartParNotExceedReference(_StartParReferenceBase):
    name = "StartParNotExceedReference"
    exceed_btu = False

    def __init__(self, try_all_vms: bool = False) -> None:
        self.try_all_vms = try_all_vms


class StartParExceedReference(_StartParReferenceBase):
    name = "StartParExceedReference"
    exceed_btu = True


class OneVMperTaskReference(ProvisioningPolicy):
    """OneVMperTask is already O(1) per placement; the alias exists so
    every optimized policy has a same-shaped oracle."""

    name = "OneVMperTaskReference"

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        return builder.new_vm()


#: optimized registry name -> reference class, for the equivalence tests
REFERENCE_POLICIES = {
    "OneVMperTask": OneVMperTaskReference,
    "StartParNotExceed": StartParNotExceedReference,
    "StartParExceed": StartParExceedReference,
    "AllParNotExceed": AllParNotExceedReference,
    "AllParExceed": AllParExceedReference,
}
