"""Virtual machine lifecycle and accounting.

A :class:`VM` records the tasks placed on it as timed
:class:`Placement` rows.  The VM is rented from its first task's start
to its last task's finish (the paper ignores boot time via pre-booting;
an optional boot time extends the rent window at the front).  Billing
and idle accounting follow the paper: paid time is the uptime rounded up
to whole BTUs; idle time is paid time minus busy time — i.e. it includes
both gaps in the schedule and the unused tail of the last BTU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cloud.billing import BillingModel
from repro.cloud.instance import InstanceType
from repro.cloud.region import Region
from repro.errors import InvalidScheduleError
from repro.util.intervals import Interval, IntervalSet


@dataclass(frozen=True)
class Placement:
    """One task execution on one VM."""

    task_id: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise InvalidScheduleError(
                f"bad placement for {self.task_id!r}: [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)


@dataclass
class VM:
    """A rented virtual machine and the executions it hosted."""

    id: int
    itype: InstanceType
    region: Region
    boot_seconds: float = 0.0
    placements: List[Placement] = field(default_factory=list)
    #: how the VM was bought (a market ``PurchaseOption``); ``None``
    #: outside market runs — plain fixed-price on-demand billing
    purchase: object | None = None

    def __post_init__(self) -> None:
        if self.boot_seconds < 0:
            raise InvalidScheduleError("boot_seconds must be >= 0")
        #: running max placement end — lets ``place`` prove in O(1) that
        #: an in-order append cannot overlap anything (not a dataclass
        #: field: derived state, excluded from eq/repr)
        self._max_end = max((p.end for p in self.placements), default=float("-inf"))

    @property
    def name(self) -> str:
        return f"vm{self.id}-{self.itype.short}"

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, task_id: str, start: float, duration: float) -> Placement:
        """Record a task execution; executions on one VM must not overlap.

        Every production caller (the builder freeze, the executors)
        places in execution order, so the common case — the new start is
        at or past every recorded end — appends in O(1).  Out-of-order
        inserts fall back to the historical full overlap scan + re-sort,
        keeping behavior identical for arbitrary callers.
        """
        p = Placement(task_id, start, start + duration)
        ps = self.placements
        if not ps or (
            p.start >= self._max_end
            and (p.start, p.task_id) >= (ps[-1].start, ps[-1].task_id)
        ):
            ps.append(p)
        else:
            for existing in ps:
                if existing.interval.overlaps(p.interval):
                    raise InvalidScheduleError(
                        f"{self.name}: {task_id!r} {p.interval} overlaps "
                        f"{existing.task_id!r} {existing.interval}"
                    )
            ps.append(p)
            ps.sort(key=lambda q: (q.start, q.task_id))
        if p.end > self._max_end:
            self._max_end = p.end
        return p

    @property
    def task_ids(self) -> List[str]:
        return [p.task_id for p in self.placements]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def busy_seconds(self) -> float:
        return sum(p.duration for p in self.placements)

    def busy_intervals(self) -> IntervalSet:
        return IntervalSet(p.interval for p in self.placements)

    @property
    def rent_start(self) -> float:
        if not self.placements:
            raise InvalidScheduleError(f"{self.name} hosted no task")
        return self.placements[0].start - self.boot_seconds

    @property
    def rent_end(self) -> float:
        if not self.placements:
            raise InvalidScheduleError(f"{self.name} hosted no task")
        return self.placements[-1].end

    @property
    def uptime_seconds(self) -> float:
        return self.rent_end - self.rent_start

    def paid_seconds(self, billing: BillingModel) -> float:
        return billing.paid_seconds(self.uptime_seconds)

    def idle_seconds(self, billing: BillingModel) -> float:
        """Paid-but-unused time: schedule gaps + the last BTU's tail."""
        return self.paid_seconds(billing) - self.busy_seconds

    def cost(
        self,
        billing: BillingModel,
        market: object | None = None,
        seed: int = 0,
    ) -> float:
        """Rent in USD.  With a *market* and a recorded purchase option
        the VM is priced at the realized price integral over its paid
        window under *seed*; otherwise the paper's fixed-price BTU
        arithmetic applies."""
        if market is not None and self.purchase is not None:
            return market.vm_cost(
                billing,
                seed,
                self.rent_start,
                self.uptime_seconds,
                self.itype,
                self.region,
                self.purchase,
            )
        return billing.vm_cost(self.uptime_seconds, self.itype, self.region)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VM({self.name}, tasks={self.task_ids})"
