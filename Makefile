# Development entry points for the repro library.

PYTHON ?= python

.PHONY: install test bench report artifacts examples faults-smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Refreshes BENCH_sweep.json (serial vs parallel sweep baseline) so
# future PRs have a perf trajectory to compare against.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_scheduler_performance.py --benchmark-only
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep.py

bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.experiments.cli all

artifacts:
	$(PYTHON) -m repro.experiments.cli export --out-dir artifacts

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# Fast end-to-end check of the fault-injection pipeline: the five
# provisioning policies under a reduced fault grid, through the CLI.
faults-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli faults --quick \
	  --workflow montage --recovery retry

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis \
	  benchmarks/artifacts artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
