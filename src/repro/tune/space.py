"""The autotuner's configuration space.

A :class:`Candidate` is one complete way to run a workflow on the
cloud: a provisioning policy, an instance flavor, an optional
parallelism-reducing graph transform, a fault-recovery policy, and a
purchase option (price scenario).  A :class:`TuneSpace` is the cross
product of per-axis choices the search samples from.

Every axis is validated against the registry that owns it — the five
provisioning policies, the platform flavors, the reduction transforms
below, :data:`~repro.core.recovery.RECOVERY_POLICIES`, and the price
scenario family — so a typo fails at construction time with a
did-you-mean hint, exactly like the CLI registries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.provisioning import PROVISIONING_POLICIES
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, strategy
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow
from repro.workflows.transform import merge_chains

#: flavor name -> Figure-4 label suffix
FLAVOR_SUFFIX = {"small": "s", "medium": "m", "large": "l"}
#: accepted short spellings, normalized at validation time
_FLAVOR_ALIASES = {"s": "small", "m": "medium", "l": "large"}

#: parallelism-reduction transforms: name -> Workflow -> Workflow
REDUCTIONS: Dict[str, Optional[Callable[[Workflow], Workflow]]] = {
    "none": None,
    "chains": merge_chains,
}

#: default recovery axis — the paper's market-free policies; ``rebid``
#: and ``fallback`` can be added explicitly for spot-heavy spaces
DEFAULT_RECOVERIES = ("retry", "resubmit", "replan")
#: default purchase axis — the full price-scenario family
DEFAULT_PURCHASES = ("on_demand", "spot_calm", "spot_spike", "spot_volatile")


def _validate_flavor(name: str) -> str:
    key = str(name).lower()
    key = _FLAVOR_ALIASES.get(key, key)
    if key not in FLAVOR_SUFFIX:
        raise ExperimentError(unknown_name_message("flavor", name, FLAVOR_SUFFIX))
    return key


def _validate_policy(name: str) -> str:
    for known in PROVISIONING_POLICIES:
        if known.lower() == str(name).lower():
            return known
    raise ExperimentError(
        unknown_name_message("provisioning policy", name, PROVISIONING_POLICIES)
    )


def _validate_reduction(name: str) -> str:
    key = str(name).lower()
    if key not in REDUCTIONS:
        raise ExperimentError(unknown_name_message("reduction", name, REDUCTIONS))
    return key


def _validate_recovery(name: str) -> str:
    # the registry lookup raises SchedulingError with its own
    # did-you-mean; validating here keeps the error at space build time
    from repro.core.recovery import recovery_policy

    return recovery_policy(str(name)).name


def _validate_purchase(name: str) -> str:
    from repro.experiments.scenarios import price_scenario

    return price_scenario(str(name)).name


@dataclass(frozen=True)
class Candidate:
    """One point of the tune space: a complete run configuration."""

    policy: str
    flavor: str
    reduction: str
    recovery: str
    purchase: str

    def __post_init__(self) -> None:
        # normalize + validate every axis with a did-you-mean error, so
        # hand-built candidates fail exactly like space-built ones
        object.__setattr__(self, "policy", _validate_policy(self.policy))
        object.__setattr__(self, "flavor", _validate_flavor(self.flavor))
        object.__setattr__(self, "reduction", _validate_reduction(self.reduction))
        object.__setattr__(self, "recovery", _validate_recovery(self.recovery))
        object.__setattr__(self, "purchase", _validate_purchase(self.purchase))

    @property
    def label(self) -> str:
        """Stable human/report key, e.g.
        ``AllParExceed-m/chains/resubmit@spot_calm``."""
        return (
            f"{self.policy}-{FLAVOR_SUFFIX[self.flavor]}"
            f"/{self.reduction}/{self.recovery}@{self.purchase}"
        )

    @property
    def sort_key(self) -> Tuple[str, str, str, str, str]:
        """Deterministic tie-break order, independent of sampling order."""
        return (self.policy, self.flavor, self.reduction, self.recovery, self.purchase)

    def spec(self) -> StrategySpec:
        """The Figure-4 strategy this candidate schedules with."""
        return strategy(f"{self.policy}-{FLAVOR_SUFFIX[self.flavor]}")

    def reduce(self, workflow: Workflow) -> Workflow:
        """Apply the candidate's parallelism reduction (identity for
        ``"none"``)."""
        transform = REDUCTIONS[self.reduction]
        return workflow if transform is None else transform(workflow)

    def to_json(self) -> dict:
        return {
            "policy": self.policy,
            "flavor": self.flavor,
            "reduction": self.reduction,
            "recovery": self.recovery,
            "purchase": self.purchase,
        }


@dataclass(frozen=True)
class TuneSpace:
    """The cross product of per-axis choices the search draws from.

    Defaults cover the paper's five provisioning policies at all three
    flavors, both reduction settings, the three market-free recovery
    policies, and the full purchase-option family — 360 configurations.
    """

    policies: Tuple[str, ...] = tuple(PROVISIONING_POLICIES)
    flavors: Tuple[str, ...] = ("small", "medium", "large")
    reductions: Tuple[str, ...] = ("none", "chains")
    recoveries: Tuple[str, ...] = DEFAULT_RECOVERIES
    purchases: Tuple[str, ...] = DEFAULT_PURCHASES

    def __post_init__(self) -> None:
        axes = {
            "policies": (self.policies, _validate_policy),
            "flavors": (self.flavors, _validate_flavor),
            "reductions": (self.reductions, _validate_reduction),
            "recoveries": (self.recoveries, _validate_recovery),
            "purchases": (self.purchases, _validate_purchase),
        }
        for axis, (values, validate) in axes.items():
            if not values:
                raise ExperimentError(f"tune space axis {axis!r} is empty")
            normalized = tuple(validate(v) for v in values)
            if len(set(normalized)) != len(normalized):
                raise ExperimentError(
                    f"tune space axis {axis!r} has duplicates: {normalized}"
                )
            object.__setattr__(self, axis, normalized)

    @property
    def size(self) -> int:
        return (
            len(self.policies)
            * len(self.flavors)
            * len(self.reductions)
            * len(self.recoveries)
            * len(self.purchases)
        )

    def all_candidates(self) -> Tuple[Candidate, ...]:
        """Every configuration, in deterministic axis-nested order."""
        return tuple(
            Candidate(p, f, red, rec, pur)
            for p in self.policies
            for f in self.flavors
            for red in self.reductions
            for rec in self.recoveries
            for pur in self.purchases
        )

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[Candidate, ...]:
        """Draw *n* distinct candidates, seed-deterministically.

        Draws are without replacement over the enumerated space; asking
        for more than :attr:`size` returns the whole space.  The draw
        depends only on the generator state, never on hashing or
        interpreter details, so a fixed seed yields the same sample on
        every backend and platform.
        """
        if n < 1:
            raise ExperimentError(f"sample size must be >= 1, got {n}")
        pool = self.all_candidates()
        if n >= len(pool):
            return pool
        idx = rng.choice(len(pool), size=n, replace=False)
        return tuple(pool[int(i)] for i in sorted(idx))

    def to_json(self) -> dict:
        return {
            "policies": list(self.policies),
            "flavors": list(self.flavors),
            "reductions": list(self.reductions),
            "recoveries": list(self.recoveries),
            "purchases": list(self.purchases),
        }

    @classmethod
    def from_json(cls, data: dict) -> "TuneSpace":
        known = ("policies", "flavors", "reductions", "recoveries", "purchases")
        unknown = set(data) - set(known)
        if unknown:
            raise ExperimentError(
                unknown_name_message("tune space axis", sorted(unknown)[0], known)
            )
        kwargs = {k: tuple(v) for k, v in data.items()}
        return cls(**kwargs)
