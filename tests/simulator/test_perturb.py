"""Tests for the runtime-jitter robustness machinery."""

import numpy as np
import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.errors import SimulationError
from repro.simulator.executor import ScheduleExecutor
from repro.simulator.perturb import (
    lognormal_jitter,
    robustness_study,
)
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import montage


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def workflow():
    return apply_model(montage(), ParetoModel(), seed=5)


class TestLognormalJitter:
    def test_mean_is_one(self):
        fn = lognormal_jitter(0.3, seed=0)
        draws = np.array([fn("t", 1.0) for _ in range(20_000)])
        assert draws.mean() == pytest.approx(1.0, abs=0.02)
        assert draws.std() == pytest.approx(0.3, abs=0.02)

    def test_positive(self):
        fn = lognormal_jitter(1.0, seed=1)
        assert all(fn("t", 5.0) > 0 for _ in range(1000))

    def test_zero_noise_is_identity(self):
        fn = lognormal_jitter(0.0, seed=2)
        assert fn("t", 123.0) == pytest.approx(123.0)

    def test_negative_std_rejected(self):
        with pytest.raises(SimulationError):
            lognormal_jitter(-0.1)


class TestPerturbedExecution:
    def test_execution_stays_feasible(self, workflow, platform):
        """Dependencies and per-VM serialization hold under any noise."""
        sched = HeftScheduler("StartParNotExceed").schedule(workflow, platform)
        result = ScheduleExecutor(
            sched, runtime_fn=lognormal_jitter(0.5, seed=3)
        ).run()
        wf = sched.workflow
        for u, v, _ in wf.edges():
            assert result.task_start[v] >= result.task_finish[u] - 1e-6
        for vm in sched.vms:
            spans = sorted(
                (result.task_start[t], result.task_finish[t]) for t in vm.task_ids
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-6

    def test_negative_runtime_rejected(self, workflow, platform):
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        with pytest.raises(SimulationError, match="negative"):
            ScheduleExecutor(sched, runtime_fn=lambda t, d: -1.0).run()

    def test_zero_noise_matches_plan(self, workflow, platform):
        sched = HeftScheduler("StartParExceed").schedule(workflow, platform)
        result = ScheduleExecutor(
            sched, runtime_fn=lognormal_jitter(0.0)
        ).run()
        result.check_against(sched)


class TestRobustnessStudy:
    def test_report_shape(self, workflow, platform):
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        report = robustness_study(sched, rel_std=0.2, trials=10, seed=0)
        assert len(report.realized_makespans) == 10
        assert report.planned_makespan == pytest.approx(sched.makespan)
        assert report.worst_stretch >= report.p95_stretch >= 0
        assert report.mean_stretch > 0

    def test_reproducible(self, workflow, platform):
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        a = robustness_study(sched, trials=5, seed=7)
        b = robustness_study(sched, trials=5, seed=7)
        assert a.realized_makespans == b.realized_makespans

    def test_noise_stretches_makespan_on_average(self, workflow, platform):
        """max() over noisy parallel branches exceeds max() over means."""
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        report = robustness_study(sched, rel_std=0.4, trials=20, seed=1)
        assert report.mean_stretch > 1.0

    def test_trials_validated(self, workflow, platform):
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        with pytest.raises(SimulationError):
            robustness_study(sched, trials=0)


class TestPerturbEdgeCases:
    def test_zero_rel_std_is_exact_identity_replay(self, workflow, platform):
        """rel_std=0 must replay the schedule *exactly*: the jitter factor
        is exp(0) = 1.0 precisely, not merely approximately."""
        fn = lognormal_jitter(0.0, seed=11)
        assert all(fn("t", d) == d for d in (1.0, 3600.0, 0.125))
        sched = HeftScheduler("StartParNotExceed").schedule(workflow, platform)
        noisy = ScheduleExecutor(sched, runtime_fn=lognormal_jitter(0.0)).run()
        exact = ScheduleExecutor(sched).run()
        assert noisy.events == exact.events
        assert noisy.task_finish == exact.task_finish
        report = robustness_study(sched, rel_std=0.0, trials=3, seed=0)
        assert report.realized_makespans == [sched.makespan] * 3

    def test_perturbed_makespan_deterministic_per_seed(self, workflow, platform):
        """One (schedule, rel_std, seed) triple has exactly one outcome."""
        sched = HeftScheduler("StartParExceed").schedule(workflow, platform)
        a = robustness_study(sched, rel_std=0.3, trials=4, seed=42)
        b = robustness_study(sched, rel_std=0.3, trials=4, seed=42)
        assert a.realized_makespans == b.realized_makespans
        c = robustness_study(sched, rel_std=0.3, trials=4, seed=43)
        assert a.realized_makespans != c.realized_makespans

    def test_spawned_replicates_are_independent(self):
        """spawn_rngs children draw distinct streams: no replicate reuses
        another's noise, and child identity depends only on its index."""
        from repro.util.rng import spawn_rngs

        draws = [rng.random(8).tolist() for rng in spawn_rngs(123, 5)]
        for i in range(5):
            for j in range(i + 1, 5):
                assert draws[i] != draws[j]
        again = [rng.random(8).tolist() for rng in spawn_rngs(123, 5)]
        assert draws == again
        # a longer spawn keeps earlier children unchanged (index-keyed)
        wider = [rng.random(8).tolist() for rng in spawn_rngs(123, 9)][:5]
        assert wider == draws

    def test_trial_makespans_differ_across_replicates(self, workflow, platform):
        """Independent replicate streams produce distinct realizations."""
        sched = HeftScheduler("OneVMperTask").schedule(workflow, platform)
        report = robustness_study(sched, rel_std=0.4, trials=6, seed=3)
        assert len(set(report.realized_makespans)) > 1
