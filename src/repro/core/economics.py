"""Idle-time economics: co-renting and energy (paper Sect. V).

The paper observes that the heavy-idle policies (OneVMperTask*, Gain,
CPA-Eager) waste 3-22 hours of paid VM time and suggests two lenses:

* **co-rent** — "their best use could be in a co-rent scenario where
  idle time is leased to other users and the user is partially
  reimbursed": :class:`CoRentModel` discounts a schedule's cost by a
  reimbursement rate on the idle fraction of every VM's bill.
* **energy** — "in an energy aware context their negative impact will be
  even more obvious since unused VMs consume energy for no intended
  purpose": :class:`EnergyModel` charges busy and idle watts per
  instance type and reports kWh per schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cloud.instance import InstanceType
from repro.core.schedule import Schedule
from repro.errors import SchedulingError

_SECONDS_PER_KWH_PER_WATT = 3.6e6  # J per kWh


@dataclass(frozen=True)
class CoRentModel:
    """Partial reimbursement of paid-but-idle VM time.

    ``reimbursement_rate`` is the fraction of the idle share of each
    VM's rent returned to the user (spot-market style). Rate 0 recovers
    the plain cost; rate 1 means idle time is fully resold.
    """

    reimbursement_rate: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.reimbursement_rate <= 1.0):
            raise SchedulingError(
                f"reimbursement_rate must be in [0, 1], got {self.reimbursement_rate}"
            )

    def reimbursement(self, schedule: Schedule) -> float:
        """Money returned for the schedule's leased-out idle time."""
        billing = schedule.platform.billing
        total = 0.0
        for vm in schedule.vms:
            paid = vm.paid_seconds(billing)
            if paid <= 0:
                continue
            idle_fraction = vm.idle_seconds(billing) / paid
            total += self.reimbursement_rate * idle_fraction * vm.cost(billing)
        return total

    def effective_cost(self, schedule: Schedule) -> float:
        """Rent + transfers minus the idle reimbursement."""
        return schedule.total_cost - self.reimbursement(schedule)


#: nominal full-load power draw per instance type, watts (scaled with
#: cores off a ~100 W single-core 2007-era Opteron host share)
_DEFAULT_ACTIVE_WATTS = {
    "small": 120.0,
    "medium": 170.0,
    "large": 270.0,
    "xlarge": 470.0,
}


@dataclass(frozen=True)
class EnergyModel:
    """Busy/idle power accounting per VM.

    ``idle_fraction`` is the idle power draw relative to active power
    (servers idle at 50-70% of peak in this era's literature).
    """

    active_watts: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_ACTIVE_WATTS)
    )
    idle_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not (0.0 <= self.idle_fraction <= 1.0):
            raise SchedulingError(
                f"idle_fraction must be in [0, 1], got {self.idle_fraction}"
            )
        for name, watts in self.active_watts.items():
            if watts <= 0:
                raise SchedulingError(f"non-positive wattage for {name!r}")

    def _watts(self, itype: InstanceType) -> float:
        try:
            return self.active_watts[itype.name]
        except KeyError:
            raise SchedulingError(
                f"no power rating for instance type {itype.name!r}"
            ) from None

    def energy_kwh(self, schedule: Schedule) -> float:
        """Total energy over busy time + paid idle time."""
        billing = schedule.platform.billing
        joules = 0.0
        for vm in schedule.vms:
            active = self._watts(vm.itype)
            busy = vm.busy_seconds
            idle = vm.idle_seconds(billing)
            joules += active * busy + self.idle_fraction * active * idle
        return joules / _SECONDS_PER_KWH_PER_WATT

    def wasted_kwh(self, schedule: Schedule) -> float:
        """Energy burned by paid-but-idle VMs only — the paper's
        "energy for no intended purpose"."""
        billing = schedule.platform.billing
        joules = sum(
            self.idle_fraction * self._watts(vm.itype) * vm.idle_seconds(billing)
            for vm in schedule.vms
        )
        return joules / _SECONDS_PER_KWH_PER_WATT

    def energy_cost(self, schedule: Schedule, usd_per_kwh: float = 0.10) -> float:
        if usd_per_kwh < 0:
            raise SchedulingError("usd_per_kwh must be >= 0")
        return self.energy_kwh(schedule) * usd_per_kwh
