"""EC2-style cloud platform model: instance catalog, the paper's Table II
region/price data, BTU billing, VM lifecycle and the store-and-forward
network (paper Sect. IV-A)."""

from repro.cloud.instance import (
    InstanceType,
    SMALL,
    MEDIUM,
    LARGE,
    XLARGE,
    INSTANCE_TYPES,
    instance_type,
    faster_types,
    next_faster,
)
from repro.cloud.region import Region, EC2_REGIONS, DEFAULT_REGION, region
from repro.cloud.billing import BillingModel, BTU_SECONDS
from repro.cloud.network import NetworkModel
from repro.cloud.vm import VM, Placement
from repro.cloud.platform import CloudPlatform

__all__ = [
    "InstanceType",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "XLARGE",
    "INSTANCE_TYPES",
    "instance_type",
    "faster_types",
    "next_faster",
    "Region",
    "EC2_REGIONS",
    "DEFAULT_REGION",
    "region",
    "BillingModel",
    "BTU_SECONDS",
    "NetworkModel",
    "VM",
    "Placement",
    "CloudPlatform",
]
