"""Did-you-mean error messages for name registries.

Every registry lookup in the library (provisioning policies, scheduling
algorithms, recovery policies, execution backends, strategy labels,
workflow names) fails with the same shape of message: the unknown name,
the closest registered match when one is plausible, and the full sorted
list of valid names.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


def closest(name: str, options: Iterable[str]) -> Optional[str]:
    """The most similar option to *name*, or ``None`` when nothing is
    close enough to be a plausible typo (case-insensitive)."""
    options = list(options)
    by_folded = {opt.lower(): opt for opt in options}
    matches = difflib.get_close_matches(name.lower(), list(by_folded), n=1, cutoff=0.6)
    return by_folded[matches[0]] if matches else None


def unknown_name_message(kind: str, name: str, options: Iterable[str]) -> str:
    """``"unknown <kind> 'x'; did you mean 'y'? known: [...]"``."""
    options = sorted(options)
    hint = closest(name, options)
    suggestion = f"; did you mean {hint!r}?" if hint else ";"
    return f"unknown {kind} {name!r}{suggestion} known: {options}"
