"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.experiments.gantt import gantt


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestGantt:
    def test_one_row_per_vm(self, diamond, platform):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        out = gantt(sched)
        for vm in sched.vms:
            assert vm.name in out

    def test_header_has_metrics(self, diamond, platform):
        sched = HeftScheduler("StartParExceed").schedule(diamond, platform)
        out = gantt(sched)
        assert f"${sched.total_cost:.2f}" in out
        assert "makespan" in out

    def test_busy_and_idle_marks(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        out = gantt(sched, label_tasks=False)
        assert "#" in out and "." in out

    def test_task_labels_when_wide(self, chain3, platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, platform)
        out = gantt(sched, width=120)
        assert "X" in out and "Y" in out

    def test_btu_boundary_ticks(self, platform):
        """A VM busy across a BTU boundary shows a | tick."""
        from repro.workflows.generators import sequential

        wf = sequential(5)  # 5000 s on one VM crosses one boundary
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        out = gantt(sched, label_tasks=False)
        assert "|" in out

    def test_respects_width(self, diamond, platform):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        out = gantt(sched, width=40)
        label_w = max(len(vm.name) for vm in sched.vms)
        for line in out.splitlines()[1:-2]:
            assert len(line) <= label_w + 1 + 40
