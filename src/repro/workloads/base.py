"""Execution-time model interface.

A model turns a workflow *shape* into a concrete instance by assigning
every task a reference execution time (seconds on the small instance)
and, optionally, every edge a data volume.  Models are deterministic
functions of ``(workflow, seed)`` so experiment sweeps are reproducible.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

from repro.workflows.dag import Workflow


class ExecutionTimeModel(abc.ABC):
    """Strategy object producing per-task runtimes for a workflow."""

    #: short name used in experiment configs and reports
    name: str = "base"

    @abc.abstractmethod
    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        """Map every task id of *wf* to a reference runtime in seconds."""

    def data_sizes(self, wf: Workflow, seed=None) -> Dict[Tuple[str, str], float]:
        """Map edges to data volumes in GB.

        The default keeps the workflow's own volumes (returns an empty
        override map); stochastic models may replace them.
        """
        return {}


def apply_model(wf: Workflow, model: ExecutionTimeModel, seed=None) -> Workflow:
    """Return a copy of *wf* with the model's runtimes (and data sizes,
    when it provides them) imposed on the fixed shape."""
    out = wf.with_works(model.runtimes(wf, seed))
    sizes = model.data_sizes(wf, seed)
    if sizes:
        out = out.with_data_sizes(sizes)
    return out
