"""Table I — the provisioning/allocation pairing matrix, checked against
the live registries (every named policy and algorithm must exist and
compose as the table claims)."""

from benchmarks.conftest import save_artifact
from repro.core.allocation.base import SCHEDULING_ALGORITHMS
from repro.core.allocation.heft import HeftScheduler
from repro.core.provisioning.base import PROVISIONING_POLICIES
from repro.experiments.tables import render_table1, table1_rows


def test_table1(benchmark, artifact_dir):
    rows = benchmark(table1_rows)
    assert len(rows) == 5
    # every provisioning policy named by the table is implemented
    for row in rows:
        assert row[0] in PROVISIONING_POLICIES
    # every allocation strategy named by the table is implemented
    named = {name for row in rows for name in row[2].replace(",", "").split()}
    for name in named:
        assert name in SCHEDULING_ALGORITHMS or name in ("HEFT",)
    # the HEFT-compatible policies actually compose with HEFT
    for policy in ("OneVMperTask", "StartParNotExceed", "StartParExceed"):
        HeftScheduler(policy)
    save_artifact(artifact_dir, "table1.txt", render_table1())
