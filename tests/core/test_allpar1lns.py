"""Tests for AllPar1LnS packing and the AllPar1LnSDyn budgeted speed
upgrades (paper Sect. III-B)."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.allpar1lns import (
    AllPar1LnSDynScheduler,
    AllPar1LnSScheduler,
    pack_level,
)
from repro.core.allocation.level import AllParScheduler
from repro.core.baseline import reference_schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow
from repro.workflows.generators import mapreduce, montage, sequential
from repro.workflows.task import Task
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestPackLevel:
    def test_longest_task_alone_in_first_bin(self):
        bins = pack_level(["a", "b", "c"], {"a": 10.0, "b": 4.0, "c": 3.0}.get)
        assert bins[0] == ["a"]

    def test_shorts_sequentialized(self):
        exec_time = {"long": 10.0, "s1": 4.0, "s2": 3.0, "s3": 2.0}.get
        bins = pack_level(["long", "s1", "s2", "s3"], exec_time)
        assert bins == [["long"], ["s1", "s2", "s3"]]  # 4+3+2 <= 10

    def test_overflow_opens_new_bin(self):
        exec_time = {"long": 10.0, "s1": 6.0, "s2": 6.0}.get
        bins = pack_level(["long", "s1", "s2"], exec_time)
        assert bins == [["long"], ["s1"], ["s2"]]

    def test_bin_loads_never_exceed_capacity(self):
        times = {f"t{i}": float(20 - i) for i in range(15)}
        bins = pack_level(list(times), times.get)
        cap = max(times.values())
        for b in bins:
            assert sum(times[t] for t in b) <= cap + 1e-9

    def test_all_tasks_kept(self):
        times = {f"t{i}": float(1 + i % 5) for i in range(12)}
        bins = pack_level(list(times), times.get)
        assert sorted(t for b in bins for t in b) == sorted(times)

    def test_equal_tasks_cannot_pack(self):
        bins = pack_level(["a", "b", "c"], lambda t: 5.0)
        assert len(bins) == 3

    def test_empty_level(self):
        assert pack_level([], lambda t: 1.0) == []

    def test_deterministic_tie_break(self):
        bins1 = pack_level(["b", "a"], lambda t: 5.0)
        bins2 = pack_level(["a", "b"], lambda t: 5.0)
        assert bins1 == bins2 == [["a"], ["b"]]


class TestAllPar1LnS:
    def test_no_worse_cost_than_allparnotexceed(self, platform):
        """Sequentializing shorts can only reduce rented VMs/cost."""
        for seed in range(3):
            wf = apply_model(mapreduce(), ParetoModel(), seed=seed)
            lns = AllPar1LnSScheduler().schedule(wf, platform)
            apne = AllParScheduler(exceed=False).schedule(wf, platform)
            assert lns.total_cost <= apne.total_cost + 1e-9

    def test_level_makespan_preserved(self, platform):
        """Packing below the longest task must not stretch the level."""
        wf = Workflow("w")
        wf.add_task(Task("src", 100.0))
        for tid, work in (("long", 2000.0), ("s1", 900.0), ("s2", 800.0)):
            wf.add_task(Task(tid, work))
            wf.add_dependency("src", tid, 0.0)
        wf.validate()
        sched = AllPar1LnSScheduler().schedule(wf, platform)
        # s1+s2 share one VM; both finish before 'long' does
        assert sched.vm_of("s1") is sched.vm_of("s2")
        assert sched.finish("s2") <= sched.finish("long") + 1e-6

    def test_long_tasks_still_parallel(self, platform):
        wf = Workflow("w")
        wf.add_task(Task("src", 100.0))
        for tid in ("l1", "l2"):
            wf.add_task(Task(tid, 2000.0))
            wf.add_dependency("src", tid, 0.0)
        wf.validate()
        sched = AllPar1LnSScheduler().schedule(wf, platform)
        assert sched.vm_of("l1") is not sched.vm_of("l2")

    def test_validates_on_paper_workflows(self, platform, paper_workflow):
        AllPar1LnSScheduler().schedule(paper_workflow, platform).validate()


class TestAllPar1LnSDyn:
    def test_within_level_budgets_implies_cheaper_than_reference(self, platform):
        """The per-level budgets sum to exactly the OneVMperTask-small
        (reference) cost — every task on its own small VM — so Dyn's
        total can never exceed the reference cost."""
        for seed in range(3):
            wf = apply_model(montage(), ParetoModel(), seed=seed)
            dyn = AllPar1LnSDynScheduler().schedule(wf, platform)
            ref = reference_schedule(wf, platform)
            assert dyn.total_cost <= ref.total_cost + 1e-9

    def test_no_slower_than_1lns(self, platform):
        for seed in range(3):
            wf = apply_model(montage(), ParetoModel(), seed=seed)
            dyn = AllPar1LnSDynScheduler().schedule(wf, platform)
            lns = AllPar1LnSScheduler().schedule(wf, platform)
            assert dyn.makespan <= lns.makespan + 1e-6

    def test_upgrades_longest_task_when_budget_allows(self, platform):
        """Heterogeneous level with packing slack: the longest task's VM
        gets a faster flavor."""
        wf = Workflow("w")
        wf.add_task(Task("src", 100.0))
        # budget = 4 small BTUs; packed bins = 2 VMs -> slack for upgrades
        for tid, work in (
            ("long", 3400.0),
            ("s1", 1200.0),
            ("s2", 1100.0),
            ("s3", 1000.0),
        ):
            wf.add_task(Task(tid, work))
            wf.add_dependency("src", tid, 0.0)
        wf.validate()
        sched = AllPar1LnSDynScheduler().schedule(wf, platform)
        assert sched.vm_of("long").itype.speedup > 1.0

    def test_homogeneous_levels_degenerate_to_1lns(self, platform):
        """Equal tasks leave no packing slack: Dyn == 1LnS."""
        wf = mapreduce()
        dyn = AllPar1LnSDynScheduler().schedule(wf, platform)
        lns = AllPar1LnSScheduler().schedule(wf, platform)
        assert dyn.makespan == pytest.approx(lns.makespan)
        assert dyn.total_cost == pytest.approx(lns.total_cost)

    def test_budget_slack_parameter(self, platform):
        with pytest.raises(SchedulingError):
            AllPar1LnSDynScheduler(budget_slack=0.0)

    def test_validates_on_paper_workflows(self, platform, paper_workflow):
        AllPar1LnSDynScheduler().schedule(paper_workflow, platform).validate()

    def test_sequential_workflow_unchanged(self, platform):
        """Singleton levels have budget == their own cost: no upgrades."""
        wf = sequential(5)
        sched = AllPar1LnSDynScheduler().schedule(wf, platform)
        assert all(vm.itype.name == "small" for vm in sched.vms)
