"""Future work, executed (II): runtime heterogeneity.

The paper claims "for AllPar1LnSDyn it seems the algorithm's performance
is proportional to the heterogeneity of the execution times" and its
future work asks for "execution times with various properties".  This
bench sweeps the Pareto shape parameter — smaller shape = heavier tail =
more heterogeneous — and measures (a) AllPar1LnSDyn's makespan gain over
plain AllPar1LnS (the speed its per-level budget can buy) and (b) the
packing opportunity (VMs saved vs AllParNotExceed).
"""

import statistics

from benchmarks.conftest import save_artifact
from repro.core.allocation.allpar1lns import (
    AllPar1LnSDynScheduler,
    AllPar1LnSScheduler,
)
from repro.core.allocation.level import AllParScheduler
from repro.util.tables import format_table
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import mapreduce

#: Pareto shapes, most heterogeneous first (CV of Pareto(a) explodes
#: as a -> 2 from above and is undefined below 2; relative spread still
#: grows as a shrinks)
SHAPES = (1.3, 2.0, 3.0, 6.0, 12.0)
SEEDS = range(6)


def _study(platform):
    rows = []
    for shape in SHAPES:
        dyn_gain, vm_saved, cvs = [], [], []
        for seed in SEEDS:
            wf = apply_model(mapreduce(), ParetoModel(shape=shape), seed=seed)
            works = [t.work for t in wf.tasks]
            cvs.append(statistics.pstdev(works) / statistics.fmean(works))
            lns = AllPar1LnSScheduler().schedule(wf, platform)
            dyn = AllPar1LnSDynScheduler().schedule(wf, platform)
            apne = AllParScheduler(exceed=False).schedule(wf, platform)
            dyn_gain.append((lns.makespan - dyn.makespan) / lns.makespan * 100)
            vm_saved.append(apne.vm_count - lns.vm_count)
        rows.append(
            (
                shape,
                statistics.fmean(cvs),
                statistics.fmean(dyn_gain),
                statistics.fmean(vm_saved),
            )
        )
    return rows


def test_heterogeneity_sweep(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    # heavier tails really are more heterogeneous (sanity on the knob)
    cvs = [r[1] for r in rows]
    assert cvs == sorted(cvs, reverse=True)

    # the paper's claim: Dyn's edge over 1LnS grows with heterogeneity —
    # the most homogeneous regime buys (almost) nothing, the most
    # heterogeneous regime buys the most
    gains = [r[2] for r in rows]
    assert gains[0] == max(gains)
    assert gains[0] > gains[-1]
    assert gains[-1] <= 1.0  # near-equal tasks leave no budget slack
    assert all(g >= -1e-6 for g in gains)  # Dyn never slower than 1LnS

    # packing opportunity also shrinks as tasks become equal
    saved = [r[3] for r in rows]
    assert saved[0] > saved[-1]

    save_artifact(
        artifact_dir,
        "futurework_heterogeneity.txt",
        format_table(
            ["Pareto shape", "runtime CV", "Dyn gain over 1LnS %", "VMs saved by packing"],
            rows,
            title="Heterogeneity sweep (MapReduce, 6 seeds per shape)",
        ),
    )
