"""One-shot full evaluation report: every figure and table, as text.

The multi-tenant service mode has its own artifact (``repro-experiments
service``, rendered by :func:`repro.experiments.service.render_service`)
and is deliberately *not* folded into :func:`full_report`: the paper
report is a fixed byte-stable document, while service runs are
parameterized by arrival/tenant knobs.  :func:`service_report` bridges
the two for scripts that want one combined text.
"""

from __future__ import annotations

from repro.cloud.platform import CloudPlatform
from repro.experiments import figures, tables
from repro.experiments.runner import SweepResult, run_sweep


def full_report(
    sweep: SweepResult | None = None,
    seed: int = 2013,
    verify: bool = False,
) -> str:
    """Regenerate the paper's complete evaluation as one text report.

    Pass an existing *sweep* to avoid re-running it; otherwise a fresh
    default sweep (19 strategies x 4 workflows x 3 scenarios) runs.
    """
    platform = sweep.platform if sweep is not None else CloudPlatform.ec2()
    if sweep is None:
        sweep = run_sweep(platform=platform, seed=seed, verify=verify)
    from repro.experiments.pareto_front import render_pareto
    from repro.experiments.summary import render_run_counters, render_summary

    sections = [
        tables.render_table1(),
        tables.render_table2(platform),
        figures.render_figure1(platform),
        figures.render_figure2(),
        figures.render_figure3(),
        figures.render_figure4(sweep),
        figures.render_figure5(sweep),
        tables.render_table3(sweep),
        tables.render_table4(sweep),
        tables.render_table5(platform),
        render_summary(sweep),
        render_pareto(sweep),
    ]
    counters = render_run_counters(sweep)
    if counters:
        sections.append(counters)
    return "\n\n" + "\n\n\n".join(sections) + "\n"


def service_report(
    count: int = 100,
    tenants: int = 10,
    mean_interarrival: float = 600.0,
    seed: int = 2013,
    policy: str = "StartParNotExceed",
    admission: str = "fifo",
    max_concurrent: int | None = 32,
) -> str:
    """A seeded WaaS service run rendered as text (the ``service``
    artifact's programmatic twin)."""
    from repro.experiments.service import (
        ServiceCell,
        build_requests,
        render_service,
    )
    from repro.service.loop import run_service

    cell = ServiceCell(
        platform=CloudPlatform.ec2(),
        policy=policy,
        admission=admission,
        count=count,
        tenants=tenants,
        mean_interarrival=mean_interarrival,
        seed=seed,
        max_concurrent=max_concurrent,
    )
    result = run_service(
        build_requests(cell),
        cell.platform,
        policy=cell.policy,
        admission=cell.admission,
        max_concurrent=cell.max_concurrent,
    )
    return render_service(
        result,
        title=(
            f"WaaS service — {count} workflows, {tenants} tenants, "
            f"policy={policy}, admission={admission}, seed={seed}"
        ),
    )
