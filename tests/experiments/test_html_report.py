"""Tests for the self-contained HTML report."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.html_report import html_report, write_html_report
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario


@pytest.fixture(scope="module")
def mini_sweep():
    platform = CloudPlatform.ec2()
    wfs = paper_workflows()
    return run_sweep(
        platform=platform,
        workflows={"montage": wfs["montage"]},
        scenarios=[scenario("pareto", platform)],
        strategies=[strategy("OneVMperTask-s"), strategy("AllParExceed-s")],
        seed=13,
    )


class TestHtmlReport:
    def test_contains_every_section(self, mini_sweep):
        html = html_report(mini_sweep)
        for marker in (
            "Table I",
            "Table II",
            "Figure 1",
            "Figure 3",
            "Figures 4 &amp; 5",
            "Table V",
            "Pareto frontiers",
        ):
            assert marker in html, marker

    def test_svgs_inlined(self, mini_sweep):
        html = html_report(mini_sweep)
        assert html.count("<svg") == 2  # figure 4 + figure 5 for montage
        assert "</svg>" in html

    def test_is_one_self_contained_document(self, mini_sweep):
        html = html_report(mini_sweep)
        assert html.startswith("<!DOCTYPE html>")
        assert "<link" not in html and "src=" not in html  # no external refs

    def test_text_escaped(self, mini_sweep):
        html = html_report(mini_sweep)
        # pre-block content must not terminate the document early
        assert html.rstrip().endswith("</body></html>")

    def test_write(self, mini_sweep, tmp_path):
        out = write_html_report(tmp_path / "r" / "report.html", mini_sweep)
        assert out.exists()
        assert "<svg" in out.read_text()
