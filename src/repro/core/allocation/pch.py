"""Path Clustering Heuristic (PCH) scheduling.

The paper's related work leans on PCH (Bittencourt & Madeira) — HCOC's
foundation: cluster tasks lying on the same priority path so their
hand-offs stay on one machine (zero communication), then give each
cluster its own VM.  This implementation builds clusters by walking,
from the highest-priority unclustered task, to the highest-priority
unclustered successor until the path dead-ends; every cluster runs
sequentially on a dedicated VM of the run's instance type.

Unlike the reuse policies, PCH *reserves* each cluster's VM for the
cluster's whole lifetime: if a member waits on an out-of-cluster
predecessor, the VM idles (and is billed) through the wait rather than
being deprovisioned — reservation, not idle-reuse, so the BTU-boundary
liveness rule does not apply inside a cluster.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.ranking import upward_rank
from repro.core.builder import ScheduleBuilder
from repro.core.schedule import Schedule
from repro.workflows.dag import Workflow


def pch_clusters(
    workflow: Workflow, platform: CloudPlatform, itype: InstanceType
) -> List[List[str]]:
    """Priority-path clusters, in decreasing head-priority order.

    Every task belongs to exactly one cluster; each cluster is a path in
    the DAG (so running it sequentially respects its internal edges).
    """
    ranks = upward_rank(workflow, platform, itype)
    order = sorted(workflow.task_ids, key=lambda t: (-ranks[t], t))
    unclustered: Set[str] = set(workflow.task_ids)
    clusters: List[List[str]] = []
    for tid in order:
        if tid not in unclustered:
            continue
        path = [tid]
        unclustered.remove(tid)
        current = tid
        while True:
            candidates = [
                s for s in workflow.successors(current) if s in unclustered
            ]
            if not candidates:
                break
            nxt = max(candidates, key=lambda s: (ranks[s], s))
            path.append(nxt)
            unclustered.remove(nxt)
            current = nxt
        clusters.append(path)
    return clusters


@register_algorithm
class PchScheduler(SchedulingAlgorithm):
    """One VM per priority-path cluster."""

    name = "PCH"

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        clusters = pch_clusters(workflow, platform, itype)
        builder = ScheduleBuilder(workflow, platform, itype, region)
        vm_of_cluster = {i: builder.new_vm() for i in range(len(clusters))}
        cluster_of: Dict[str, int] = {
            tid: i for i, path in enumerate(clusters) for tid in path
        }
        # Place in global topological order: within a VM this preserves
        # the cluster's path order (paths are ancestor-ordered), across
        # VMs it guarantees predecessors carry times before dependents.
        for tid in workflow.topological_order():
            builder.begin_task(tid)
            builder.place(tid, vm_of_cluster[cluster_of[tid]])
        return builder.build(algorithm=self.name, provisioning="PCH").validate()
