"""Sweep runner: every strategy x workflow x scenario, against the
reference, with optional DES cross-validation of every schedule.

The grid's (scenario, workflow) cells are independent, so ``run_sweep``
can fan them out over an :class:`~repro.experiments.parallel.ExecutionBackend`
(``jobs``/``backend`` arguments).  Per-cell RNG streams are spawned up
front by grid position, and the merge walks cells in grid order, so the
parallel result is identical to the serial one."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from repro.cloud.platform import CloudPlatform
from repro.core.baseline import reference_schedule
from repro.core.metrics import ScheduleMetrics, compare_to_reference
from repro.core.schedule import Schedule
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, paper_strategies, paper_workflows
from repro.experiments.parallel import (
    CellFailure,
    ExecutionBackend,
    SweepCell,
    cell_label,
    make_backend,
    map_guarded,
    run_cell,
)
from repro.experiments.result import ResultBase
from repro.experiments.scenarios import Scenario, paper_scenarios
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, ensure_tracer
from repro.simulator.executor import simulate_schedule
from repro.util.compat import removed_kwargs
from repro.util.rng import spawn_seeds
from repro.workflows.dag import Workflow


def run_strategy(
    spec: StrategySpec,
    workflow: Workflow,
    platform: CloudPlatform,
    reference: Schedule | None = None,
    verify: bool = False,
    tracer: Tracer | None = None,
) -> ScheduleMetrics:
    """Run one strategy on one concrete workflow instance.

    With *verify*, the schedule is also replayed through the DES and its
    timings checked against the static plan (the replay feeds *tracer*
    with its simulated-time task/VM spans when one is given).
    """
    sched = spec.run(workflow, platform)
    sched.validate()
    if verify:
        # Large homogeneous no-fault plans verify by recurrence replay —
        # the same observed timings the DES would produce, minus the
        # event machinery.  Anything the replay does not model (tracing,
        # metrics, cold boots, mixed fleets) takes the real simulator.
        from repro.kernels.replay import replay_verify

        if not replay_verify(sched, tracer=tracer):
            simulate_schedule(sched, check=True, tracer=tracer)
    ref = reference if reference is not None else reference_schedule(workflow, platform)
    return compare_to_reference(sched, ref, label=spec.label)


@dataclass
class SweepResult(ResultBase):
    """Results of a full sweep, indexed [scenario][workflow][strategy]."""

    platform: CloudPlatform
    metrics: Dict[str, Dict[str, Dict[str, ScheduleMetrics]]] = field(
        default_factory=dict
    )
    references: Dict[str, Dict[str, ScheduleMetrics]] = field(default_factory=dict)
    #: cells that produced no result (captured errors / timeouts)
    failures: List[CellFailure] = field(default_factory=list)
    #: run counters rolled up across cells in grid order
    #: (``run_sweep(metrics=...)``), ``MetricsRegistry.as_dict()`` form;
    #: ``None`` when counter collection was off
    counters: "Dict[str, Dict[str, float]] | None" = None

    @property
    def complete(self) -> bool:
        """Whether every grid cell produced a result."""
        return not self.failures

    def failure_summary(self) -> str:
        """One line per failed cell; "" when the sweep is complete."""
        return "\n".join(str(f) for f in self.failures)

    # ------------------------------------------------------------------
    def scenarios(self) -> List[str]:
        return list(self.metrics)

    def workflows(self, scenario: str) -> List[str]:
        return list(self.metrics[scenario])

    def get(self, scenario: str, workflow: str, strategy: str) -> ScheduleMetrics:
        try:
            return self.metrics[scenario][workflow][strategy]
        except KeyError:
            raise ExperimentError(
                f"no result for {scenario}/{workflow}/{strategy}"
            ) from None

    def strategies(self, scenario: str, workflow: str) -> List[str]:
        return list(self.metrics[scenario][workflow])

    def rows(self) -> List[tuple]:
        """Flat (scenario, workflow, strategy, metrics) rows."""
        out = []
        for sc, by_wf in self.metrics.items():
            for wf, by_strat in by_wf.items():
                for label, m in by_strat.items():
                    out.append((sc, wf, label, m))
        return out

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The cross-cell stability report (same as ``render_summary``)."""
        from repro.experiments.summary import render_summary

        return render_summary(self)

    def to_json(self) -> dict:
        """The persisted sweep form (``save_sweep``'s layout) plus
        captured failure labels."""
        from repro.experiments.store import sweep_to_dict

        data = sweep_to_dict(self)
        data["failures"] = [str(f) for f in self.failures]
        return data


@removed_kwargs(n_jobs="jobs", pool="backend", rng_seed="seed", error_mode="on_error")
def run_sweep(
    platform: CloudPlatform | None = None,
    workflows: Mapping[str, Workflow] | None = None,
    scenarios: Iterable[Scenario] | None = None,
    strategies: Iterable[StrategySpec] | None = None,
    seed: int = 2013,
    verify: bool = False,
    jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    retries: int = 0,
    cell_timeout: float | None = None,
    on_error: str = "capture",
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SweepResult:
    """Run the paper's full evaluation grid.

    The default arguments reproduce Figures 4-5 and Tables III-IV: four
    workflows x three scenarios x nineteen strategies, seeded so the
    Pareto draws are identical across strategies within one (scenario,
    workflow) cell.

    ``jobs``/``backend`` fan the grid's cells out over an
    :class:`~repro.experiments.parallel.ExecutionBackend`; any setting
    produces metrics identical to the serial run (see the determinism
    contract in :mod:`repro.experiments.parallel`).

    A crashing cell no longer takes the whole sweep down: each cell runs
    guarded (``retries`` extra attempts, optional ``cell_timeout``
    wall-clock deadline) and with ``on_error="capture"`` (the default)
    failed cells are simply absent from the result, described in
    ``SweepResult.failures``; ``on_error="raise"`` restores the old
    fail-fast behavior.

    *tracer* records the sweep (one trace process per cell, merged via
    :meth:`~repro.obs.tracer.Tracer.adopt` regardless of backend);
    *metrics* rolls per-cell counters into the given registry and into
    ``SweepResult.counters``.  Counters hold only simulation facts and
    cells are merged in grid order, so the roll-up is byte-identical
    across the serial, thread and process backends for the same seed.
    """
    if on_error not in ("capture", "raise"):
        raise ExperimentError(
            f'on_error must be "capture" or "raise", got {on_error!r}'
        )
    platform = platform or CloudPlatform.ec2()
    workflows = workflows if workflows is not None else paper_workflows()
    scenarios = list(scenarios) if scenarios is not None else paper_scenarios(platform)
    strategies = (
        list(strategies) if strategies is not None else paper_strategies()
    )
    if not workflows or not scenarios or not strategies:
        raise ExperimentError("sweep needs at least one of each axis")

    exec_backend = make_backend(backend, jobs)
    tracer = ensure_tracer(tracer)
    seeds = spawn_seeds(seed, len(scenarios) * len(workflows))
    cells = [
        SweepCell(
            scenario=sc,
            workflow_name=wf_name,
            shape=shape,
            strategies=tuple(strategies),
            platform=platform,
            seed=seeds[i * len(workflows) + j],
            verify=verify,
            collect=metrics is not None,
            trace=tracer.enabled,
        )
        for i, sc in enumerate(scenarios)
        for j, (wf_name, shape) in enumerate(workflows.items())
    ]
    cell_results, failures = map_guarded(
        exec_backend,
        run_cell,
        cells,
        label_fn=cell_label,
        retries=retries,
        timeout=cell_timeout,
    )
    if failures and on_error == "raise":
        raise ExperimentError(
            f"{len(failures)}/{len(cells)} sweep cell(s) failed:\n"
            + "\n".join(str(f) for f in failures)
        )

    # Merge in grid order — backend.map preserves input order, so the
    # result layout (and any counter/trace roll-up) is independent of
    # completion order.
    result = SweepResult(platform=platform, failures=failures)
    for i, cr in enumerate(cell_results):
        if cr is None:
            continue  # captured failure; see result.failures
        result.metrics.setdefault(cr.scenario, {})[cr.workflow] = dict(cr.metrics)
        result.references.setdefault(cr.scenario, {})[cr.workflow] = cr.reference
        if metrics is not None and cr.counters is not None:
            metrics.merge(cr.counters)
        if tracer.enabled and cr.trace_events:
            tracer.adopt(cr.trace_events, label=cell_label(cells[i]))
    if metrics is not None:
        result.counters = metrics.as_dict()
    return result
