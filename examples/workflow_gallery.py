#!/usr/bin/env python
"""Profile the whole workflow gallery and test how the paper's Table-V
conclusions transfer to shapes it never evaluated — the paper's stated
future work ("custom workflows ... from different workloads").

For each of nine shapes this prints the structural profile, the adaptive
classifier's verdict, and the measured gain/savings of the Table-V
savings recommendation under Pareto runtimes.

Run:  python examples/workflow_gallery.py
"""

from repro import (
    AdaptiveSelector,
    CloudPlatform,
    Goal,
    ParetoModel,
    apply_model,
    bag_of_tasks,
    compare_to_reference,
    cstem,
    cybershake,
    epigenomics,
    fork_join,
    ligo,
    mapreduce,
    montage,
    profile,
    reference_schedule,
    sequential,
    sipht,
)
from repro.util.tables import format_table


def main() -> None:
    platform = CloudPlatform.ec2()
    selector = AdaptiveSelector(platform)

    gallery = {
        "montage": montage(),
        "cstem": cstem(),
        "mapreduce": mapreduce(),
        "sequential": sequential(),
        "epigenomics": epigenomics(),
        "cybershake": cybershake(),
        "ligo": ligo(),
        "sipht": sipht(),
        "bag_of_tasks": bag_of_tasks(),
    }

    profile_rows = []
    advice_rows = []
    for name, shape in gallery.items():
        p = profile(shape)
        structure, _ = selector.classify(shape)
        profile_rows.append(
            (
                name,
                p.tasks,
                p.levels,
                p.max_width,
                p.avg_width,
                p.serial_fraction,
                p.level_skip_fraction,
            )
        )
        workflow = apply_model(shape, ParetoModel(), seed=2013)
        ref = reference_schedule(workflow, platform)
        rec = selector.recommend(shape, Goal.SAVINGS)
        sched = selector.schedule(workflow, Goal.SAVINGS)
        m = compare_to_reference(sched, ref)
        advice_rows.append(
            (
                name,
                structure.name.lower().replace("_", " "),
                rec.label,
                m.gain_pct,
                m.savings_pct,
            )
        )

    print(
        format_table(
            ["workflow", "tasks", "levels", "width", "avg w", "serial", "skip"],
            profile_rows,
            title="Structural profiles of the workflow gallery",
        )
    )
    print()
    print(
        format_table(
            ["workflow", "class", "savings pick", "gain %", "savings %"],
            advice_rows,
            float_fmt=".1f",
            title="Table-V savings advice applied beyond the paper's four shapes",
        )
    )


if __name__ == "__main__":
    main()
