"""Setup shim for environments without the `wheel` package, where
``pip install -e . --no-build-isolation --no-use-pep517`` needs a
setup.py-based editable install. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
