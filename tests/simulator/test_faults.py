"""Fault-injection tests: the zero-fault identity contract, seed
determinism (including across execution backends), recovery mechanics,
and robustness accounting."""

import dataclasses
import math

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.errors import FaultError, SimulationError
from repro.simulator.executor import ScheduleExecutor, run_with_faults
from repro.simulator.faults import FaultPlan, FaultStats
from repro.simulator.online import run_online
from repro.workflows.generators import mapreduce, montage

#: a plan aggressive enough to fire every process on the test workflows
AGGRESSIVE = FaultPlan(
    seed=7, task_fail_prob=0.15, vm_crash_rate=1 / 20000, boot_fail_prob=0.1
)


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def schedule(platform):
    return HeftScheduler("StartParNotExceed").schedule(montage(), platform)


# ----------------------------------------------------------------------
# plan construction and sampling
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_default_injects_nothing(self):
        assert not FaultPlan.none().enabled

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(task_fail_prob=1.0)
        with pytest.raises(SimulationError):
            FaultPlan(boot_fail_prob=-0.1)
        with pytest.raises(SimulationError):
            FaultPlan(vm_crash_rate=-1.0)
        with pytest.raises(SimulationError):
            FaultPlan(boot_delay_rel_std=-0.5)

    def test_zero_prob_never_draws(self):
        plan = FaultPlan.none()
        assert plan.task_attempt("t", 1) is None
        assert plan.vm_crash_uptime("vm0") == math.inf
        assert plan.boot_outcome("vm0", 1) == (False, 1.0)

    def test_sampling_is_keyed_not_ordered(self):
        """The same (entity, attempt) draw is identical whenever asked."""
        plan = AGGRESSIVE
        forward = [plan.task_attempt(f"t{i}", 1) for i in range(50)]
        backward = [plan.task_attempt(f"t{i}", 1) for i in reversed(range(50))]
        assert forward == list(reversed(backward))
        assert plan.vm_crash_uptime("vm3") == plan.vm_crash_uptime("vm3")

    def test_attempts_sample_independently(self):
        plan = FaultPlan(seed=1, task_fail_prob=0.5)
        outcomes = {plan.task_attempt("t", a) is None for a in range(1, 20)}
        assert outcomes == {True, False}

    def test_scaled(self):
        plan = AGGRESSIVE.scaled(0.0)
        assert not plan.enabled
        doubled = AGGRESSIVE.scaled(2.0)
        assert doubled.task_fail_prob == pytest.approx(0.3)
        assert doubled.vm_crash_rate == pytest.approx(2 * AGGRESSIVE.vm_crash_rate)
        capped = FaultPlan(task_fail_prob=0.6).scaled(10)
        assert capped.task_fail_prob == pytest.approx(0.99)
        with pytest.raises(SimulationError):
            AGGRESSIVE.scaled(-1)

    def test_with_seed_changes_sample_not_intensity(self):
        other = AGGRESSIVE.with_seed(99)
        assert other.task_fail_prob == AGGRESSIVE.task_fail_prob
        assert other.vm_crash_uptime("vm0") != AGGRESSIVE.vm_crash_uptime("vm0")

    def test_failure_fraction_is_partial(self):
        plan = FaultPlan(seed=3, task_fail_prob=0.99)
        fracs = [plan.task_attempt(f"t{i}", 1) for i in range(50)]
        fired = [f for f in fracs if f is not None]
        assert fired and all(0 < f < 1 for f in fired)


# ----------------------------------------------------------------------
# the zero-fault identity contract
# ----------------------------------------------------------------------
class TestZeroFaultIdentity:
    def test_executor_byte_identical(self, schedule):
        plain = ScheduleExecutor(schedule).run()
        zero = ScheduleExecutor(
            schedule, fault_plan=FaultPlan.none(), recovery="retry"
        ).run()
        assert plain.events == zero.events
        assert plain.task_start == zero.task_start
        assert plain.task_finish == zero.task_finish
        assert plain.vm_windows == zero.vm_windows
        assert zero.faults is not None and zero.faults.failures == 0

    def test_executor_byte_identical_with_boot(self, platform):
        cold = dataclasses.replace(platform, prebooted=False, boot_seconds=97.0)
        sched = AllParScheduler(exceed=True).schedule(mapreduce(), cold)
        plain = ScheduleExecutor(sched).run()
        zero = ScheduleExecutor(sched, fault_plan=FaultPlan.none()).run()
        assert plain.events == zero.events

    def test_online_byte_identical(self, platform):
        plain = run_online(montage(), platform, policy="AllParExceed")
        zero = run_online(
            montage(),
            platform,
            policy="AllParExceed",
            fault_plan=FaultPlan.none(),
            recovery="retry",
        )
        a, b = dataclasses.asdict(plain), dataclasses.asdict(zero)
        a.pop("faults"), b.pop("faults")
        assert a == b

    def test_zero_fault_costs_match_schedule(self, schedule):
        zero = ScheduleExecutor(schedule, fault_plan=FaultPlan.none()).run()
        assert zero.realized_cost == pytest.approx(schedule.total_cost)


# ----------------------------------------------------------------------
# determinism of fault-injected runs
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    @pytest.mark.parametrize("recovery", ["retry", "resubmit", "replan"])
    def test_executor_reproducible(self, schedule, recovery):
        a = run_with_faults(schedule, AGGRESSIVE, recovery=recovery)
        b = run_with_faults(schedule, AGGRESSIVE, recovery=recovery)
        assert a.events == b.events
        assert a.vm_costs == b.vm_costs
        assert a.faults.decisions == b.faults.decisions
        assert a.faults.as_dict() == b.faults.as_dict()

    def test_seeds_differ(self, schedule):
        a = run_with_faults(schedule, AGGRESSIVE)
        b = run_with_faults(schedule, AGGRESSIVE.with_seed(1234))
        assert a.events != b.events

    @pytest.mark.parametrize("recovery", ["retry", "resubmit", "replan"])
    def test_online_reproducible(self, platform, recovery):
        runs = [
            run_online(
                montage(),
                platform,
                policy="StartParNotExceed",
                fault_plan=AGGRESSIVE,
                recovery=recovery,
            )
            for _ in range(2)
        ]
        assert runs[0].events == runs[1].events
        assert runs[0].faults.decisions == runs[1].faults.decisions

    def test_identical_across_backends(self, schedule):
        """Serial / thread / process workers replay identical traces."""
        from repro.experiments.faults import FaultCell, run_fault_cell
        from repro.experiments.parallel import make_backend

        cells = [
            FaultCell(
                spec=_spec(),
                workflow_name="montage",
                workflow=montage(),
                platform=schedule.platform,
                base_plan=AGGRESSIVE,
                intensity=x,
                fault_seed=s,
            )
            for x in (0.5, 1.0)
            for s in (0, 1)
        ]
        per_backend = []
        for name in ("serial", "thread", "process"):
            results = make_backend(name, 2).map(run_fault_cell, cells)
            per_backend.append(
                [(r.makespan, r.cost, r.stats.decisions) for r in results]
            )
        assert per_backend[0] == per_backend[1] == per_backend[2]


def _spec():
    from repro.experiments.config import strategy

    return strategy("StartParNotExceed-s")


# ----------------------------------------------------------------------
# recovery mechanics and accounting
# ----------------------------------------------------------------------
class TestRecoveryMechanics:
    def test_all_tasks_complete_under_faults(self, schedule):
        from tests.conftest import assert_schedule_invariants

        for recovery in ("retry", "resubmit", "replan"):
            result = run_with_faults(schedule, AGGRESSIVE, recovery=recovery)
            assert set(result.task_finish) == set(schedule.workflow.task_ids)
            assert_schedule_invariants(result, schedule.workflow)

    def test_faults_fire_and_are_recovered(self, schedule):
        result = run_with_faults(schedule, AGGRESSIVE)
        stats = result.faults
        assert stats.failures > 0
        assert stats.recoveries > 0
        assert len(stats.decisions) >= stats.recoveries
        assert stats.wasted_task_seconds > 0

    def test_realized_at_least_planned_makespan(self, schedule):
        result = run_with_faults(schedule, AGGRESSIVE)
        assert result.makespan > schedule.makespan - 1e-6

    def test_crash_billed_to_btu_boundary(self, platform):
        """A crashed VM pays ceil(uptime / BTU) like a revoked instance."""
        sched = HeftScheduler("OneVMperTask").schedule(montage(), platform)
        plan = FaultPlan(seed=5, vm_crash_rate=1 / 15000)
        result = run_with_faults(sched, plan, recovery="resubmit")
        assert result.faults.vm_crashes > 0
        btu = platform.btu_seconds
        for name, (start, end) in result.vm_windows.items():
            cost = result.vm_costs[name]
            assert cost >= 0
            # cost is a whole number of BTUs at the small-instance price
            paid = platform.billing.paid_seconds(end - start)
            assert paid % btu == pytest.approx(0.0, abs=1e-6)

    def test_wasted_btu_accounting(self, schedule):
        result = run_with_faults(schedule, AGGRESSIVE)
        stats = result.faults
        assert stats.paid_seconds > 0
        assert 0 < stats.wasted_btu_seconds <= stats.paid_seconds

    def test_abort_raises_fault_error(self, schedule):
        from repro.core.recovery import RetrySameVM

        hopeless = FaultPlan(seed=0, task_fail_prob=0.97)
        with pytest.raises(FaultError):
            run_with_faults(
                schedule, hopeless, recovery=RetrySameVM(max_attempts=1)
            )

    def test_replan_rents_or_reuses_and_completes(self, platform):
        sched = AllParScheduler(exceed=False).schedule(mapreduce(), platform)
        plan = FaultPlan(seed=2, task_fail_prob=0.2, vm_crash_rate=1 / 10000)
        result = run_with_faults(sched, plan, recovery="replan")
        assert result.faults.replans > 0
        assert set(result.task_finish) == set(sched.workflow.task_ids)

    def test_boot_faults_delay_cold_starts(self, platform):
        cold = dataclasses.replace(platform, prebooted=False, boot_seconds=97.0)
        sched = HeftScheduler("StartParNotExceed").schedule(montage(), cold)
        plan = FaultPlan(seed=4, boot_fail_prob=0.4, boot_delay_rel_std=0.3)
        result = run_with_faults(sched, plan)
        base = ScheduleExecutor(sched).run()
        assert result.faults.boot_failures > 0
        assert result.makespan > base.makespan

    def test_dependencies_hold_under_faults(self, schedule):
        """Final attempts still respect the DAG and per-VM serialization."""
        result = run_with_faults(schedule, AGGRESSIVE, recovery="resubmit")
        wf = schedule.workflow
        for u, v, _ in wf.edges():
            assert result.task_finish[v] >= result.task_finish[u] - 1e-6

    def test_online_crash_recovery_completes(self, platform):
        from tests.conftest import assert_schedule_invariants

        result = run_online(
            montage(),
            platform,
            policy="OneVMperTask",
            fault_plan=FaultPlan(seed=9, vm_crash_rate=1 / 8000),
            recovery="replan",
        )
        assert result.faults.vm_crashes > 0
        assert set(result.task_finish) == set(montage().task_ids)
        assert_schedule_invariants(result, montage())


class TestFaultStats:
    def test_as_dict_roundtrip(self):
        stats = FaultStats(task_failures=2, retries=1, wasted_task_seconds=3.5)
        d = stats.as_dict()
        assert d["task_failures"] == 2
        assert d["retries"] == 1
        assert stats.failures == 2
        assert stats.recoveries == 1
