"""CLI artifact smoke tests.

Every ``--out`` run must leave a non-empty artifact plus a parseable run
manifest; ``--trace`` must add a structurally valid Chrome trace; and a
manifest's reconstructed argv must reproduce the run byte-for-byte.
"""

import json

import pytest

from repro.experiments.cli import main
from repro.obs.manifest import load_manifest, manifest_argv
from repro.obs.tracer import validate_chrome_trace

#: fast artifacts covering the static tables/figures and both sweep paths
SMOKE = [
    ["table1"],
    ["table2"],
    ["table5"],
    ["figure1"],
    ["figure2"],
    ["table3", "--quick"],
    ["figure4", "--quick"],
    ["profile", "--workflow", "montage"],
    ["service", "--quick"],
    ["tune", "--quick", "--deadline", "9000", "--budget", "15"],
]


def _smoke_id(argv):
    return "-".join(a.lstrip("-") for a in argv)


@pytest.mark.parametrize("argv", SMOKE, ids=_smoke_id)
def test_artifact_writes_output_and_manifest(argv, tmp_path):
    out = tmp_path / f"{argv[0]}.txt"
    assert main(argv + ["--out", str(out)]) == 0

    assert out.exists() and out.read_text().strip()

    manifest = load_manifest(tmp_path / f"{argv[0]}.txt.manifest.json")
    assert manifest["artifact"] == argv[0]
    assert manifest["seed"] == manifest["config"]["seed"] == 2013
    assert str(out) in manifest["outputs"]
    assert manifest["wall_seconds"] > 0
    assert manifest["versions"]["repro"]


def test_traced_run_emits_valid_chrome_trace(tmp_path):
    out = tmp_path / "t3.txt"
    trace = tmp_path / "sweep.json"
    argv = ["table3", "--quick", "--out", str(out), "--trace-out", str(trace)]
    assert main(argv) == 0

    data = json.loads(trace.read_text())
    events = validate_chrome_trace(data)
    assert any(e.get("cat") == "cli" for e in events)      # artifact span
    assert any(e.get("cat") == "sweep" for e in events)    # per-cell spans
    assert str(trace) in load_manifest(
        tmp_path / "t3.txt.manifest.json"
    )["outputs"]


def test_trace_defaults_next_to_out_file(tmp_path):
    out = tmp_path / "t3.txt"
    assert main(["table3", "--quick", "--out", str(out), "--trace"]) == 0
    validate_chrome_trace(json.loads((tmp_path / "t3.txt.trace.json").read_text()))


def test_manifest_only_flag(tmp_path, capsys):
    manifest_path = tmp_path / "run.json"
    assert main(["table1", "--manifest", str(manifest_path)]) == 0
    capsys.readouterr()  # artifact went to stdout
    manifest = load_manifest(manifest_path)
    assert manifest["artifact"] == "table1"


def test_sweep_manifest_records_metrics(tmp_path):
    out = tmp_path / "f4.txt"
    assert main(["figure4", "--quick", "--out", str(out)]) == 0
    metrics = load_manifest(tmp_path / "f4.txt.manifest.json")["metrics"]
    counters = metrics["counters"]
    assert counters["sweep.cells"] > 0
    assert counters["builder.vms_rented"] > 0
    assert counters["builder.tasks_placed"] > 0


def test_tune_manifest_reproduces_the_search(tmp_path):
    """The tune artifact is byte-reproducible from its manifest argv."""
    first = tmp_path / "tune.txt"
    argv = [
        "tune", "--quick", "--deadline", "9000", "--budget", "15",
        "--tune-seed", "3", "--out", str(first),
    ]
    assert main(argv) == 0
    manifest = load_manifest(tmp_path / "tune.txt.manifest.json")
    assert manifest["config"]["tune_seed"] == 3

    replay = manifest_argv(manifest)
    assert replay[0] == "tune"
    second = tmp_path / "tune2.txt"
    assert main(replay + ["--out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_manifest_reproduces_the_run(tmp_path):
    first = tmp_path / "a.txt"
    assert main(["table3", "--quick", "--seed", "5", "--out", str(first)]) == 0
    manifest = load_manifest(tmp_path / "a.txt.manifest.json")

    argv = manifest_argv(manifest)
    assert argv[0] == "table3" and "--quick" in argv
    second = tmp_path / "b.txt"
    assert main(argv + ["--out", str(second)]) == 0

    assert first.read_text() == second.read_text()
    remanifest = load_manifest(tmp_path / "b.txt.manifest.json")
    assert remanifest["config_hash"] == manifest["config_hash"]
    assert remanifest["metrics"] == manifest["metrics"]
