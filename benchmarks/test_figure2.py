"""Figure 2 — the four workflow shapes: structure statistics of the
generated Montage / CSTEM / MapReduce / Sequential instances."""

from benchmarks.conftest import save_artifact
from repro.experiments.figures import figure2_summaries, render_figure2


def test_figure2(benchmark, artifact_dir):
    summaries = benchmark(figure2_summaries)
    by_name = {s["name"]: s for s in summaries}
    assert by_name["montage"]["tasks"] == 24  # the paper's instance size
    assert by_name["sequential"]["max_parallelism"] == 1
    assert by_name["mapreduce"]["max_parallelism"] >= by_name["cstem"]["max_parallelism"]
    assert by_name["cstem"]["entry_tasks"] == 1
    save_artifact(artifact_dir, "figure2.txt", render_figure2())
