"""Shared benchmark fixtures.

``paper_sweep`` runs the full 19 x 4 x 3 evaluation grid once per
session; each figure/table benchmark then measures its regeneration and
writes the rendered artifact to ``benchmarks/artifacts/`` so the paper's
rows/series can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.runner import run_sweep

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

#: the seed every benchmark artifact is generated with
SWEEP_SEED = 2013


@pytest.fixture(scope="session")
def platform() -> CloudPlatform:
    return CloudPlatform.ec2()


@pytest.fixture(scope="session")
def paper_sweep(platform):
    """The full evaluation grid (19 strategies x 4 workflows x 3
    scenarios), shared across all benchmarks."""
    return run_sweep(platform=platform, seed=SWEEP_SEED)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def save_artifact(directory: Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n")
