"""WaaS service-loop throughput benchmark: the 1000-workflow stress run.

Times one seeded multi-tenant service run (1000 workflows over 50
tenants by default) and records wall time, simulated throughput, tail
latency and fleet utilization to ``BENCH_service.json`` at the repo
root, appending one dated row to ``BENCH_history.jsonl`` — the same
trajectory log the sweep and scaling benchmarks feed.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.cloud.platform import CloudPlatform
from repro.experiments.service import ServiceCell, build_requests
from repro.service.loop import run_service

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"
SEED = 2013


def bench(args) -> dict:
    cell = ServiceCell(
        platform=CloudPlatform.ec2(),
        policy=args.policy,
        admission=args.admission,
        count=args.count,
        tenants=args.tenants,
        mean_interarrival=args.interarrival,
        seed=args.seed,
        max_concurrent=args.max_concurrent,
    )
    requests = build_requests(cell)
    best, result = float("inf"), None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        result = run_service(
            requests,
            cell.platform,
            policy=cell.policy,
            admission=cell.admission,
            max_concurrent=cell.max_concurrent,
        )
        best = min(best, time.perf_counter() - t0)
    assert result is not None and result.completed == result.admitted
    return {
        "benchmark": "WaaS service loop (run_service)",
        "seed": args.seed,
        "workload": {
            "workflows": args.count,
            "tenants": args.tenants,
            "mean_interarrival_s": args.interarrival,
            "policy": args.policy,
            "admission": args.admission,
            "max_concurrent": args.max_concurrent,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "repeats_best_of": args.repeats,
        "wall_seconds": round(best, 4),
        "workflows_per_wall_second": round(result.completed / best, 1),
        "simulated": {
            "completed": result.completed,
            "makespan_s": round(result.makespan, 1),
            "throughput_wf_per_h": round(result.throughput_per_hour, 3),
            "latency_p50_s": round(result.latency_p50, 1),
            "latency_p99_s": round(result.latency_p99, 1),
            "utilization": round(result.utilization, 4),
            "vms_rented": result.vm_count,
            "rent_cost": round(result.rent_cost, 2),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=1000)
    parser.add_argument("--tenants", type=int, default=50)
    parser.add_argument("--interarrival", type=float, default=180.0)
    parser.add_argument("--policy", default="StartParNotExceed")
    parser.add_argument("--admission", default="fair")
    parser.add_argument("--max-concurrent", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench(args)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    sim = record["simulated"]
    with HISTORY.open("a") as fh:
        fh.write(
            json.dumps(
                {
                    "date": datetime.date.today().isoformat(),
                    "benchmark": "service",
                    "wall_seconds": record["wall_seconds"],
                    "workflows": record["workload"]["workflows"],
                    "tenants": record["workload"]["tenants"],
                    "throughput_wf_per_h": sim["throughput_wf_per_h"],
                    "latency_p99_s": sim["latency_p99_s"],
                    "utilization": sim["utilization"],
                }
            )
            + "\n"
        )
    print(
        f"{sim['completed']} workflows in {record['wall_seconds']:.2f}s wall "
        f"({record['workflows_per_wall_second']:.0f} wf/s) | simulated "
        f"{sim['throughput_wf_per_h']:.1f} wf/h, p99 {sim['latency_p99_s']:.0f}s, "
        f"util {sim['utilization']:.3f}, {sim['vms_rented']} VMs"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
