"""Tests for repro.obs.manifest: config hashing, argv reconstruction
and the manifest file round-trip."""

import pytest

from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    config_hash,
    default_manifest_path,
    library_versions,
    load_manifest,
    manifest_argv,
    write_manifest,
)


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_ignores_non_reproducible_keys(self):
        base = {"seed": 7, "scenario": "pareto"}
        decorated = dict(
            base, out="x.txt", out_dir="d", manifest="m.json",
            trace=True, trace_out="t.json",
        )
        assert config_hash(base) == config_hash(decorated)

    def test_sensitive_to_reproducible_keys(self):
        assert config_hash({"seed": 7}) != config_hash({"seed": 8})


class TestManifestArgv:
    def test_reconstruction_rules(self):
        manifest = build_manifest(
            "table3",
            {
                "seed": 7,
                "quick": True,
                "verify": False,
                "fault_boot_prob": 0.05,
                "workflow": None,       # unset options are dropped
                "out": "t3.txt",        # non-reproducible: dropped
                "trace": True,          # non-reproducible: dropped
            },
            seed=7,
        )
        argv = manifest_argv(manifest)
        assert argv[0] == "table3"
        assert "--seed" in argv and argv[argv.index("--seed") + 1] == "7"
        assert "--quick" in argv                 # true flag, no value
        assert "--verify" not in argv            # false flag dropped
        assert "--fault-boot-prob" in argv       # underscores become dashes
        assert "--workflow" not in argv
        assert "--out" not in argv and "--trace" not in argv

    def test_requires_config(self):
        with pytest.raises(ValueError, match="no config"):
            manifest_argv({"artifact": "table3"})


class TestManifestFile:
    def test_roundtrip(self, tmp_path):
        manifest = build_manifest(
            "figure4",
            {"seed": 1, "quick": True},
            seed=1,
            outputs=[tmp_path / "f4.txt"],
            counters={"counters": {"sweep.cells": 2}, "gauges": {}},
            wall_seconds=0.5,
            simulated_seconds=123.0,
        )
        path = write_manifest(tmp_path / "f4.manifest.json", manifest)
        loaded = load_manifest(path)
        assert loaded["format"] == MANIFEST_FORMAT
        assert loaded["artifact"] == "figure4"
        assert loaded["config_hash"] == manifest["config_hash"]
        assert loaded["metrics"]["counters"]["sweep.cells"] == 2
        assert loaded["simulated_seconds"] == 123.0

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not a repro run manifest"):
            load_manifest(path)

    def test_versions_include_core_deps(self):
        versions = library_versions()
        assert {"python", "numpy", "repro"} <= set(versions)


class TestDefaultPath:
    def test_file_artifact(self, tmp_path):
        out = tmp_path / "t3.txt"
        assert default_manifest_path(out).name == "t3.txt.manifest.json"

    def test_directory_bundle(self, tmp_path):
        assert default_manifest_path(tmp_path) == tmp_path / "manifest.json"
