"""Scheduling-algorithm interface and registry.

An allocation strategy turns ``(workflow, platform)`` into a
:class:`~repro.core.schedule.Schedule`.  Homogeneous strategies take the
instance type as a run parameter (the paper's ``-s/-m/-l`` suffixes);
dynamic strategies (CPA-Eager, Gain, AllPar1LnSDyn) choose instance
types themselves.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow


class SchedulingAlgorithm(abc.ABC):
    """Base class for all task-allocation strategies."""

    #: registry key and report label
    name: str = "base"
    #: True when the strategy picks VM speeds itself (ignores ``itype``)
    heterogeneous: bool = False

    @abc.abstractmethod
    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        """Produce a validated schedule of *workflow* on *platform*.

        *itype* is the uniform VM flavor for homogeneous strategies and
        the starting flavor for dynamic ones; *region* defaults to the
        platform's default region.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


#: registry: name -> factory taking keyword parameters
SCHEDULING_ALGORITHMS: Dict[str, Callable[..., SchedulingAlgorithm]] = {}


def register_algorithm(factory: Callable[..., SchedulingAlgorithm]) -> Callable[..., SchedulingAlgorithm]:
    """Class decorator registering an algorithm under its ``name``."""
    probe = factory()
    if not probe.name or probe.name == "base":
        raise SchedulingError(f"algorithm {factory!r} must define a unique name")
    if probe.name in SCHEDULING_ALGORITHMS:
        raise SchedulingError(f"duplicate scheduling algorithm {probe.name!r}")
    SCHEDULING_ALGORITHMS[probe.name] = factory
    return factory


def scheduling_algorithm(name: str, **params) -> SchedulingAlgorithm:
    """Instantiate a registered algorithm by name (case-insensitive)."""
    for key, factory in SCHEDULING_ALGORITHMS.items():
        if key.lower() == name.lower():
            return factory(**params)
    raise SchedulingError(
        unknown_name_message("scheduling algorithm", name, SCHEDULING_ALGORITHMS)
    )
