"""Tests for the VM lifecycle/accounting model."""

import pytest

from repro.cloud.billing import BillingModel
from repro.cloud.instance import MEDIUM, SMALL
from repro.cloud.region import EC2_REGIONS
from repro.cloud.vm import VM, Placement
from repro.errors import InvalidScheduleError

US = EC2_REGIONS["us-east-virginia"]


@pytest.fixture
def billing() -> BillingModel:
    return BillingModel()


def _vm(itype=SMALL, boot=0.0) -> VM:
    return VM(id=0, itype=itype, region=US, boot_seconds=boot)


class TestPlacement:
    def test_duration(self):
        p = Placement("t", 10.0, 25.0)
        assert p.duration == 15.0

    def test_invalid(self):
        with pytest.raises(InvalidScheduleError):
            Placement("t", -1.0, 5.0)
        with pytest.raises(InvalidScheduleError):
            Placement("t", 5.0, 1.0)


class TestVmPlacement:
    def test_place_and_order(self):
        vm = _vm()
        vm.place("b", 100.0, 50.0)
        vm.place("a", 0.0, 50.0)
        assert vm.task_ids == ["a", "b"]  # sorted by start

    def test_overlap_rejected(self):
        vm = _vm()
        vm.place("a", 0.0, 100.0)
        with pytest.raises(InvalidScheduleError, match="overlaps"):
            vm.place("b", 50.0, 100.0)

    def test_touching_allowed(self):
        vm = _vm()
        vm.place("a", 0.0, 100.0)
        vm.place("b", 100.0, 100.0)
        assert vm.busy_seconds == 200.0


class TestVmAccounting:
    def test_uptime_spans_first_to_last(self):
        vm = _vm()
        vm.place("a", 100.0, 200.0)
        vm.place("b", 500.0, 100.0)
        assert vm.rent_start == 100.0
        assert vm.rent_end == 600.0
        assert vm.uptime_seconds == 500.0

    def test_boot_extends_rent_window(self):
        vm = _vm(boot=120.0)
        vm.place("a", 200.0, 100.0)
        assert vm.rent_start == 80.0
        assert vm.uptime_seconds == 220.0

    def test_idle_includes_btu_tail(self, billing):
        vm = _vm()
        vm.place("a", 0.0, 1000.0)
        # paid 3600, busy 1000
        assert vm.idle_seconds(billing) == pytest.approx(2600.0)

    def test_idle_includes_gaps(self, billing):
        vm = _vm()
        vm.place("a", 0.0, 1000.0)
        vm.place("b", 2000.0, 1000.0)
        # uptime 3000 -> paid 3600; busy 2000
        assert vm.idle_seconds(billing) == pytest.approx(1600.0)

    def test_cost(self, billing):
        vm = _vm(MEDIUM)
        vm.place("a", 0.0, 4000.0)
        assert vm.cost(billing) == pytest.approx(2 * 0.16)

    def test_empty_vm_accessors_raise(self):
        vm = _vm()
        with pytest.raises(InvalidScheduleError):
            _ = vm.rent_start
        with pytest.raises(InvalidScheduleError):
            _ = vm.rent_end

    def test_busy_intervals(self):
        vm = _vm()
        vm.place("a", 0.0, 10.0)
        vm.place("b", 20.0, 10.0)
        assert vm.busy_intervals().total_length == 20.0

    def test_negative_boot_rejected(self):
        with pytest.raises(InvalidScheduleError):
            _vm(boot=-1.0)

    def test_name(self):
        assert _vm(MEDIUM).name == "vm0-m"
