"""Tests for the cost-explanation decomposition."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.explain import explain, render_explanation
from repro.workflows.generators import montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestDecomposition:
    def test_lines_cover_every_vm(self, platform):
        sched = HeftScheduler("OneVMperTask").schedule(montage(), platform)
        exp = explain(sched)
        assert len(exp.lines) == sched.vm_count
        assert exp.rent_cost == pytest.approx(sched.rent_cost)
        assert exp.total_cost == pytest.approx(sched.total_cost)

    def test_busy_gap_tail_sum_to_paid(self, platform):
        sched = HeftScheduler("StartParNotExceed").schedule(montage(), platform)
        billing = platform.billing
        for line, vm in zip(explain(sched).lines, sched.vms):
            paid = vm.paid_seconds(billing)
            total = line.busy_seconds + line.gap_seconds + line.tail_seconds
            assert total == pytest.approx(paid)

    def test_idle_matches_schedule_metric(self, platform, paper_workflow):
        sched = HeftScheduler("StartParExceed").schedule(paper_workflow, platform)
        exp = explain(sched)
        assert exp.total_gap_seconds + exp.total_tail_seconds == pytest.approx(
            sched.total_idle_seconds
        )

    def test_single_vm_chain_has_only_tail(self, platform):
        sched = HeftScheduler("StartParExceed").schedule(sequential(3), platform)
        (line,) = explain(sched).lines
        assert line.gap_seconds == pytest.approx(0.0)
        assert line.tail_seconds == pytest.approx(600.0)  # 3600 - 3000
        assert line.utilization == pytest.approx(3000.0 / 3600.0)

    def test_worst_idlers_sorted(self, platform):
        sched = HeftScheduler("OneVMperTask").schedule(montage(), platform)
        worst = explain(sched).worst_idlers(top=5)
        idles = [l.idle_seconds for l in worst]
        assert idles == sorted(idles, reverse=True)
        assert len(worst) == 5

    def test_boot_counted_as_gap(self):
        cold = CloudPlatform.ec2(boot_seconds=120.0, prebooted=False)
        sched = HeftScheduler("OneVMperTask").schedule(sequential(1), cold)
        (line,) = explain(sched).lines
        assert line.gap_seconds == pytest.approx(120.0)


class TestRender:
    def test_render(self, platform):
        sched = HeftScheduler("StartParNotExceed").schedule(montage(), platform)
        out = render_explanation(explain(sched))
        assert "Cost breakdown" in out
        assert "final-BTU tails" in out
        assert "vm0-s" in out
