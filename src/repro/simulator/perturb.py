"""Robustness studies: how do static schedules hold up when execution
times deviate from the estimates they were built on?

The paper's scheduling is fully static (Sect. IV-A); this module probes
the cost of that choice.  A schedule's *decisions* (assignments +
per-VM orders) are kept, the *actual* runtimes are perturbed, and the
discrete-event executor re-derives the realized makespan.  Policies
that serialize aggressively accumulate delays along their shared VMs;
one-VM-per-task schedules only propagate delay along dependency paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.simulator.executor import ScheduleExecutor
from repro.util.rng import ensure_rng, spawn_rngs


def lognormal_jitter(rel_std: float, seed=None):
    """Multiplicative log-normal noise with mean 1 and the given
    relative standard deviation — durations stay positive."""
    if rel_std < 0:
        raise SimulationError(f"rel_std must be >= 0, got {rel_std}")
    rng = ensure_rng(seed)
    sigma2 = np.log1p(rel_std**2)
    mu = -sigma2 / 2.0  # E[lognormal(mu, sigma)] = 1

    def runtime_fn(task_id: str, planned: float) -> float:
        return planned * float(rng.lognormal(mu, np.sqrt(sigma2)))

    return runtime_fn


@dataclass(frozen=True)
class RobustnessReport:
    """Realized makespans of a schedule under runtime noise."""

    planned_makespan: float
    realized_makespans: List[float]

    @property
    def mean_stretch(self) -> float:
        """Mean realized/planned makespan ratio."""
        return float(np.mean(self.realized_makespans)) / self.planned_makespan

    @property
    def worst_stretch(self) -> float:
        return max(self.realized_makespans) / self.planned_makespan

    @property
    def p95_stretch(self) -> float:
        return float(np.quantile(self.realized_makespans, 0.95)) / self.planned_makespan


def robustness_study(
    schedule: Schedule,
    rel_std: float = 0.2,
    trials: int = 20,
    seed: int = 0,
) -> RobustnessReport:
    """Execute *schedule* *trials* times under log-normal runtime noise
    and report the realized-makespan distribution."""
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    realized = []
    for rng in spawn_rngs(seed, trials):
        executor = ScheduleExecutor(
            schedule, runtime_fn=lognormal_jitter(rel_std, rng)
        )
        realized.append(executor.run().makespan)
    return RobustnessReport(
        planned_makespan=schedule.makespan, realized_makespans=realized
    )
