"""Tests for the table regenerators (Tables I-V)."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.metrics import ScheduleMetrics
from repro.experiments import tables
from repro.experiments.config import strategy
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import paper_scenarios
from repro.workflows.generators import mapreduce, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def allpar_sweep(platform):
    """Sweep with the AllPar strategies Table IV studies."""
    labels = [
        f"{p}-{s}"
        for p in ("AllParExceed", "AllParNotExceed")
        for s in ("s", "m", "l")
    ]
    return run_sweep(
        platform=platform,
        workflows={"mapreduce": mapreduce(mappers=4), "seq": sequential(5)},
        scenarios=paper_scenarios(platform),
        strategies=[strategy(l) for l in labels],
        seed=11,
    )


def _m(label, gain, loss):
    return ScheduleMetrics(label, 1.0, 1.0, 0.0, 1, 1, gain_pct=gain, loss_pct=loss)


class TestStaticTables:
    def test_table1(self):
        out = tables.render_table1()
        assert "OneVMperTask" in out and "AllPar1LnSDyn" in out

    def test_table2_matches_paper(self, platform):
        rows = tables.table2_rows(platform)
        assert len(rows) == 7
        sp = [r for r in rows if r[0] == "sa-sao-paulo"][0]
        assert sp[1:] == (0.115, 0.230, 0.460, 0.920, 0.25)

    def test_table2_render(self, platform):
        assert "eu-dublin" in tables.render_table2(platform)


class TestClassifyCell:
    def test_buckets(self):
        cell = {
            "saver": _m("saver", 5.0, -50.0),
            "gainer": _m("gainer", 50.0, -5.0),
            "balanced": _m("balanced", 20.0, -22.0),
            "loser": _m("loser", -10.0, 40.0),
        }
        cls = tables.classify_cell(cell)
        assert cls.savings_dominant == ["saver"]
        assert cls.gain_dominant == ["gainer"]
        assert cls.balanced == ["balanced"]

    def test_out_of_square_excluded(self):
        cell = {"fast-but-dear": _m("fast-but-dear", 60.0, 100.0)}
        cls = tables.classify_cell(cell)
        assert not (cls.savings_dominant or cls.gain_dominant or cls.balanced)

    def test_zero_point_is_balanced(self):
        cls = tables.classify_cell({"ref": _m("ref", 0.0, 0.0)})
        assert cls.balanced == ["ref"]

    def test_tolerance(self):
        cell = {"near": _m("near", 10.0, -17.0)}
        assert tables.classify_cell(cell, tolerance_pp=5.0).savings_dominant == [
            "near"
        ]
        assert tables.classify_cell(cell, tolerance_pp=10.0).balanced == ["near"]


class TestTable3:
    def test_every_cell_classified(self, allpar_sweep):
        t3 = tables.table3(allpar_sweep)
        assert len(t3) == 3 * 2

    def test_render(self, allpar_sweep):
        out = tables.render_table3(allpar_sweep)
        assert "pareto/mapreduce" in out


class TestTable4:
    def test_three_size_rows(self, allpar_sweep):
        t4 = tables.table4(allpar_sweep)
        assert [e["size"] for e in t4] == ["s", "m", "l"]

    def test_small_never_loses(self, allpar_sweep):
        """Paper: 'small is the only case in which savings are positive'
        — its loss interval never goes above zero."""
        t4 = {e["size"]: e for e in tables.table4(allpar_sweep)}
        lo, hi = t4["s"]["loss_interval"]
        assert hi <= 1e-6

    def test_gain_interval_ordered_by_speed(self, allpar_sweep):
        t4 = {e["size"]: e for e in tables.table4(allpar_sweep)}
        assert t4["m"]["gain_interval"][1] >= t4["s"]["gain_interval"][1]

    def test_render(self, allpar_sweep):
        out = tables.render_table4(allpar_sweep)
        assert "max loss interval" in out


class TestTable5:
    def test_rows_cover_paper_workflows(self, platform):
        rows = tables.table5_rows(platform)
        assert [r[0] for r in rows] == ["montage", "cstem", "mapreduce", "sequential"]
        assert all(len(r) == 4 for r in rows)

    def test_savings_column_is_dyn_or_small(self, platform):
        for row in tables.table5_rows(platform):
            assert "AllPar1LnSDyn" in row[1] or row[1].endswith("-s")

    def test_render(self, platform):
        out = tables.render_table5(platform)
        assert "savings" in out and "balance" in out
