"""Seed-deterministic random + successive-halving configuration search.

The search treats the simulator as a fitness oracle, in the spirit of
RIOT (arXiv:1708.08127) and deadline-constrained budget minimisation
(Thai et al., arXiv:1507.05470): sample ``n_candidates`` configurations
from the :class:`~repro.tune.space.TuneSpace`, judge every candidate by
replaying its schedule under its purchase option's market at growing
fidelity (number of market/fault seeds), and between rungs keep the
best ``1/eta`` fraction.  Cheap configurations die on one seed;
promising ones earn more seeds.

Determinism contract (the property the test suite hashes): for a fixed
``seed`` the result is byte-identical on the serial, thread and process
backends, because

* the candidate sample and the per-rung evaluation seeds are pure
  functions of ``seed`` (``numpy`` generators, no hashing, no clock);
* candidate evaluations fan out through the same order-preserving
  :func:`~repro.experiments.parallel.map_guarded` the sweeps use, and
  each evaluation depends only on its own
  :class:`EvalUnit`;
* ranking sorts on (feasibility, cost, makespan) with the candidate's
  axis tuple as the final tie-break, so ties never depend on sampling
  or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.core.constraints import Constraints
from repro.core.metrics import ScheduleMetrics
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    CellFailure,
    ExecutionBackend,
    make_backend,
    map_guarded,
)
from repro.experiments.pareto_front import pareto_front
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import current as current_metrics
from repro.tune.result import CandidateOutcome, RungRecord, TuneResult
from repro.tune.space import Candidate, TuneSpace
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow


@dataclass(frozen=True)
class EvalUnit:
    """One (candidate, fidelity) evaluation — self-contained and
    picklable, so any backend's worker produces the same outcome."""

    candidate: Candidate
    workflow: Workflow
    platform: CloudPlatform
    #: market/fault seeds to replay (a prefix-stable family: higher
    #: rungs re-run the same seeds plus new ones)
    seeds: Tuple[int, ...]
    constraints: Optional[Constraints]


def eval_unit_label(unit: EvalUnit) -> str:
    return f"{unit.candidate.label}#f{len(unit.seeds)}"


def evaluate_candidate(unit: EvalUnit) -> CandidateOutcome:
    """Judge one candidate (worker entry point).

    Builds the candidate's schedule (reduction applied first), then
    replays it under the purchase option's market once per seed with
    the candidate's recovery policy.  Feasibility is judged on the
    *worst* realized makespan/cost across the seeds.
    """
    from repro.experiments.scenarios import price_scenario
    from repro.simulator.executor import ScheduleExecutor
    from repro.simulator.faults import FaultPlan

    cand = unit.candidate
    reduced = cand.reduce(unit.workflow)
    sched = cand.spec().run(reduced, unit.platform)
    scenario = price_scenario(cand.purchase)
    makespans: List[float] = []
    costs: List[float] = []
    for s in unit.seeds:
        plan = FaultPlan(seed=s, market=scenario.market)
        result = ScheduleExecutor(
            sched, fault_plan=plan, recovery=cand.recovery
        ).run()
        makespans.append(result.makespan)
        costs.append(result.realized_cost)
    worst_makespan = max(makespans)
    worst_cost = max(costs)
    metrics = ScheduleMetrics(
        label=cand.label,
        makespan=worst_makespan,
        cost=worst_cost,
        idle_seconds=sched.total_idle_seconds,
        vm_count=sched.vm_count,
        btus=sched.total_btus,
    ).with_constraints(unit.constraints)
    return CandidateOutcome(
        candidate=cand,
        fidelity=len(unit.seeds),
        makespan=worst_makespan,
        cost=worst_cost,
        mean_makespan=sum(makespans) / len(makespans),
        mean_cost=sum(costs) / len(costs),
        planned_makespan=sched.makespan,
        planned_cost=sched.total_cost,
        vm_count=sched.vm_count,
        metrics=metrics,
    )


def _score(outcome: CandidateOutcome) -> tuple:
    """Total order for ranking: feasible before infeasible; feasible by
    (cost, makespan); infeasible by how badly they miss; candidate axes
    as the deterministic tie-break."""
    if outcome.feasible:
        return (0, outcome.cost, outcome.makespan) + outcome.candidate.sort_key
    return (
        (1, outcome.total_excess, outcome.cost) + outcome.candidate.sort_key
    )


def _eval_seeds(seed: int, fidelity: int) -> Tuple[int, ...]:
    """The rung's market/fault seeds: a prefix-stable derived family.

    ``SeedSequence([seed, i])`` decorrelates the replay streams from
    the sampling stream while keeping seed *i* identical across rungs,
    so a higher rung strictly extends a lower rung's evidence.
    """
    return tuple(
        int(np.random.SeedSequence([seed, i]).generate_state(1)[0])
        for i in range(fidelity)
    )


def autotune(
    constraints: "Constraints | dict | None" = None,
    deadline: Optional[float] = None,
    budget: Optional[float] = None,
    max_vms: Optional[int] = None,
    workflow: Optional[Workflow] = None,
    workflow_name: str = "montage",
    scenario: str = "pareto",
    workflow_seed: int = 2013,
    platform: Optional[CloudPlatform] = None,
    space: "TuneSpace | dict | None" = None,
    n_candidates: int = 24,
    eta: int = 2,
    base_fidelity: int = 1,
    max_rungs: int = 8,
    keep_final: int = 4,
    seed: int = 0,
    jobs: Optional[int] = None,
    backend: "str | ExecutionBackend | None" = None,
    retries: int = 0,
    cell_timeout: Optional[float] = None,
    on_infeasible: str = "raise",
) -> TuneResult:
    """Find the cheapest configuration satisfying *constraints*.

    The question the paper never asks: *which (policy, flavor,
    reduction, recovery, purchase option) is cheapest while still
    meeting my deadline?*  ``constraints`` is a
    :class:`~repro.core.constraints.Constraints` (or its dict form);
    the scalar ``deadline``/``budget``/``max_vms`` arguments are a
    convenience spelling of the same thing.  No constraints means
    "cheapest overall".

    The workflow is one concrete instance: *workflow* directly, or the
    paper shape *workflow_name* with runtime *scenario* applied under
    ``workflow_seed`` — the search optimises for that instance, the
    same way the paper's figures condition on a scenario draw.

    ``n_candidates`` configurations are sampled seed-deterministically
    from *space*, then successively halved: each rung evaluates the
    survivors at ``base_fidelity * eta**rung`` market seeds and keeps
    the best ``1/eta``, stopping once at most ``keep_final`` survive —
    the final rung is the near-miss menu the Pareto frontier is drawn
    from.  ``jobs``/``backend`` fan evaluations out over
    the guarded parallel backends; any setting returns a result whose
    ``to_json()`` is byte-identical to the serial run.

    With ``on_infeasible="raise"`` (default) a search whose final rung
    contains no feasible configuration raises
    :class:`~repro.errors.ExperimentError` carrying the nearest miss's
    violation breakdown; ``"return"`` hands back the
    :class:`~repro.tune.result.TuneResult` with ``winner=None`` for
    callers that want the near-misses anyway.
    """
    if on_infeasible not in ("raise", "return"):
        raise ExperimentError(
            unknown_name_message(
                "on_infeasible mode", on_infeasible, ("raise", "return")
            )
        )
    if n_candidates < 1:
        raise ExperimentError(f"n_candidates must be >= 1, got {n_candidates}")
    if eta < 2:
        raise ExperimentError(f"eta must be >= 2, got {eta}")
    if base_fidelity < 1:
        raise ExperimentError(f"base_fidelity must be >= 1, got {base_fidelity}")
    if max_rungs < 1:
        raise ExperimentError(f"max_rungs must be >= 1, got {max_rungs}")
    if keep_final < 1:
        raise ExperimentError(f"keep_final must be >= 1, got {keep_final}")

    # -- constraints: object, dict, or scalar spelling ------------------
    scalars = dict(deadline=deadline, budget=budget, max_vms=max_vms)
    given = {k: v for k, v in scalars.items() if v is not None}
    if constraints is not None and given:
        raise ExperimentError(
            "pass either a constraints object or scalar "
            f"deadline/budget/max_vms, not both (got both: {sorted(given)})"
        )
    if constraints is None and given:
        constraints = Constraints(**given)
    elif isinstance(constraints, dict):
        constraints = Constraints.from_json(constraints)

    platform = platform or CloudPlatform.ec2()
    if space is None:
        space = TuneSpace()
    elif isinstance(space, dict):
        space = TuneSpace.from_json(space)

    # -- the concrete workflow instance being tuned ---------------------
    from repro.experiments.config import paper_workflows
    from repro.experiments.scenarios import scenario as scenario_lookup

    scenario_name = str(scenario)
    if workflow is None:
        catalog = paper_workflows()
        if workflow_name not in catalog:
            raise ExperimentError(
                unknown_name_message("workflow", workflow_name, catalog)
            )
        sc = scenario_lookup(scenario_name, platform)
        workflow = sc.apply(catalog[workflow_name], np.random.default_rng(workflow_seed))
    else:
        scenario_name = "custom"

    # -- search ---------------------------------------------------------
    exec_backend = make_backend(backend, jobs)
    # search-progress counters land in the ambient registry when one is
    # active (e.g. ``repro-experiments --metrics``), else in a throwaway
    registry = current_metrics() or MetricsRegistry()
    rng = np.random.default_rng(seed)
    candidates: Sequence[Candidate] = space.sample(rng, n_candidates)
    registry.inc("tune.searches")
    registry.inc("tune.candidates", len(candidates))

    fidelity = base_fidelity
    rung_records: List[RungRecord] = []
    all_failures: List[CellFailure] = []
    outcomes: List[CandidateOutcome] = []
    for rung in range(max_rungs):
        units = [
            EvalUnit(
                candidate=c,
                workflow=workflow,
                platform=platform,
                seeds=_eval_seeds(seed, fidelity),
                constraints=constraints,
            )
            for c in candidates
        ]
        results, failures = map_guarded(
            exec_backend,
            evaluate_candidate,
            units,
            label_fn=eval_unit_label,
            retries=retries,
            timeout=cell_timeout,
        )
        all_failures.extend(failures)
        registry.inc("tune.rungs")
        registry.inc("tune.evals", len(units) * fidelity)
        registry.inc("tune.eval_failures", len(failures))
        outcomes = sorted((r for r in results if r is not None), key=_score)
        if not outcomes:
            raise ExperimentError(
                f"every candidate of rung {rung} failed:\n"
                + "\n".join(str(f) for f in all_failures)
            )
        last_rung = len(outcomes) <= keep_final or rung == max_rungs - 1
        keep = len(outcomes) if last_rung else max(1, -(-len(outcomes) // eta))
        rung_records.append(
            RungRecord(
                rung=rung,
                fidelity=fidelity,
                evaluated=len(units),
                failed=len(failures),
                kept=tuple(o.label for o in outcomes[:keep]),
            )
        )
        if last_rung:
            break
        candidates = [o.candidate for o in outcomes[:keep]]
        fidelity *= eta

    # -- verdicts -------------------------------------------------------
    winner = outcomes[0] if outcomes[0].feasible else None
    frontier_cell = pareto_front({o.label: o.metrics for o in outcomes})
    by_label = {o.label: o for o in outcomes}
    frontier = tuple(by_label[lbl] for lbl in frontier_cell.frontier)

    result = TuneResult(
        winner=winner,
        outcomes=tuple(outcomes),
        frontier=frontier,
        rungs=tuple(rung_records),
        constraints=constraints,
        space=space,
        workflow_name=workflow_name if scenario_name != "custom" else workflow.name,
        scenario=scenario_name,
        seed=seed,
        n_candidates=n_candidates,
        eta=eta,
        failures=all_failures,
        workflow=workflow,
        platform=platform,
    )
    if winner is None and on_infeasible == "raise":
        nearest = outcomes[0]
        assert constraints is not None  # unconstrained outcomes are feasible
        raise ExperimentError(
            f"no feasible configuration for {constraints.describe()} "
            f"(searched {n_candidates} candidates over "
            f"{len(rung_records)} rung(s)); nearest miss "
            f"{nearest.label}: {nearest.metrics.violation_summary()}"
        )
    return result
