"""One-call artifact export: every figure, table and analysis of the
evaluation written to a directory (text + SVG + raw sweep JSON), so a
single command materializes the paper's results folder.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.cloud.platform import CloudPlatform
from repro.experiments import figures, tables
from repro.experiments.pareto_front import render_pareto
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.store import save_sweep
from repro.experiments.summary import render_summary


def export_all(
    out_dir: str | Path,
    sweep: SweepResult | None = None,
    seed: int = 2013,
    verify: bool = False,
) -> List[Path]:
    """Write every evaluation artifact under *out_dir*.

    Runs the default sweep when none is given.  Returns the written
    paths (text tables/figures, per-workflow SVGs, ``sweep.json``).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    platform = sweep.platform if sweep is not None else CloudPlatform.ec2()
    if sweep is None:
        sweep = run_sweep(platform=platform, seed=seed, verify=verify)

    texts: Dict[str, str] = {
        "table1.txt": tables.render_table1(),
        "table2.txt": tables.render_table2(platform),
        "table3.txt": tables.render_table3(sweep),
        "table4.txt": tables.render_table4(sweep),
        "table5.txt": tables.render_table5(platform),
        "figure1.txt": figures.render_figure1(platform),
        "figure2.txt": figures.render_figure2(),
        "figure3.txt": figures.render_figure3(seed=seed),
        "figure4.txt": figures.render_figure4(sweep),
        "figure5.txt": figures.render_figure5(sweep),
        "summary.txt": render_summary(sweep),
        "pareto_front.txt": render_pareto(sweep),
    }
    written: List[Path] = []
    for name, text in texts.items():
        path = out / name
        path.write_text(text + "\n")
        written.append(path)

    first_scenario = sweep.scenarios()[0]
    for wf_name in sweep.workflows(first_scenario):
        for maker, stem in (
            (figures.figure4_svg, "figure4"),
            (figures.figure5_svg, "figure5"),
        ):
            path = out / f"{stem}_{wf_name}.svg"
            path.write_text(maker(sweep, wf_name, first_scenario) + "\n")
            written.append(path)

    sweep_path = out / "sweep.json"
    save_sweep(sweep, sweep_path)
    written.append(sweep_path)

    from repro.experiments.html_report import write_html_report

    written.append(write_html_report(out / "report.html", sweep, seed=seed))
    return written
