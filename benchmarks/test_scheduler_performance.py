"""Scheduler and simulator throughput benchmarks (not a paper artifact;
guards against accidental quadratic blow-ups as workflows grow)."""

import pytest

from repro.core.allocation.allpar1lns import AllPar1LnSDynScheduler
from repro.core.allocation.cpa_eager import CpaEagerScheduler
from repro.core.allocation.gain import GainScheduler
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import mapreduce, montage


@pytest.fixture(scope="module")
def big_workflow():
    """A 302-task MapReduce with Pareto runtimes."""
    return apply_model(mapreduce(mappers=100, reducers=100), ParetoModel(), seed=0)


def test_heft_startpar_large_workflow(benchmark, platform, big_workflow):
    sched = benchmark(
        HeftScheduler("StartParNotExceed").schedule, big_workflow, platform
    )
    assert sched.makespan > 0


def test_allpar_large_workflow(benchmark, platform, big_workflow):
    sched = benchmark(AllParScheduler(exceed=True).schedule, big_workflow, platform)
    # reuse bounds the fleet well below one VM per task
    assert sched.vm_count < len(big_workflow)


def test_allpar1lnsdyn_large_workflow(benchmark, platform, big_workflow):
    sched = benchmark(AllPar1LnSDynScheduler().schedule, big_workflow, platform)
    assert sched.makespan > 0


def test_cpa_eager_montage(benchmark, platform):
    wf = apply_model(montage(12), ParetoModel(), seed=1)
    sched = benchmark(CpaEagerScheduler().schedule, wf, platform)
    assert sched.makespan > 0


def test_gain_montage(benchmark, platform):
    wf = apply_model(montage(12), ParetoModel(), seed=1)
    sched = benchmark(GainScheduler().schedule, wf, platform)
    assert sched.makespan > 0


def test_simulator_replay_large(benchmark, platform, big_workflow):
    sched = AllParScheduler(exceed=True).schedule(big_workflow, platform)
    result = benchmark(simulate_schedule, sched, True)
    assert result.makespan == pytest.approx(sched.makespan)
