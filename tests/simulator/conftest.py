"""Simulator-test fixtures: a per-test wall-clock deadline.

A discrete-event bug (an event loop that re-schedules itself without
advancing, a deadlocked queue discipline) shows up as a *hang*, not a
failure; the engine's event budget catches runaway loops, but a test
that blocks outside the engine would stall the whole suite.  The
``pytest-timeout`` plugin is not a dependency of this repo, so the
deadline is implemented with ``SIGALRM`` directly — active only on the
main thread of platforms that have the signal (everywhere this suite
runs in practice; elsewhere the fixture is a no-op).
"""

from __future__ import annotations

import signal
import threading

import pytest

#: generous wall-clock ceiling per simulator test, seconds
TEST_DEADLINE_SECONDS = 60


@pytest.fixture(autouse=True)
def _per_test_deadline(request):
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the "
            f"{TEST_DEADLINE_SECONDS}s simulator-test deadline"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_DEADLINE_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
