"""Tests for sweep persistence and diffing."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.experiments.store import diff_sweeps, load_sweep, save_sweep


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def sweep(platform):
    wfs = paper_workflows()
    return run_sweep(
        platform=platform,
        workflows={"montage": wfs["montage"]},
        scenarios=[scenario("pareto", platform), scenario("best", platform)],
        strategies=[strategy("OneVMperTask-s"), strategy("AllParExceed-s")],
        seed=17,
    )


class TestRoundTrip:
    def test_metrics_survive(self, sweep, tmp_path, platform):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path, platform)
        assert loaded.scenarios() == sweep.scenarios()
        for sc, wf, label, m in sweep.rows():
            got = loaded.get(sc, wf, label)
            assert got.makespan == pytest.approx(m.makespan)
            assert got.cost == pytest.approx(m.cost)
            assert got.gain_pct == pytest.approx(m.gain_pct)

    def test_references_survive(self, sweep, tmp_path, platform):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path, platform)
        ref = loaded.references["pareto"]["montage"]
        assert ref.gain_pct == 0.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_sweep(tmp_path / "nope.json")

    def test_bad_format_version(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"format": 99, "metrics": {}}')
        with pytest.raises(ExperimentError, match="format"):
            load_sweep(p)

    def test_malformed_record(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(
            '{"format": 1, "metrics": {"s": {"w": {"x": {"label": "x"}}}}}'
        )
        with pytest.raises(ExperimentError, match="malformed"):
            load_sweep(p)


class TestDiff:
    def test_identical_sweeps(self, sweep):
        d = diff_sweeps(sweep, sweep)
        assert d == {"added": [], "removed": [], "changed": []}

    def test_seed_change_detected(self, platform):
        wfs = {"montage": paper_workflows()["montage"]}
        scs = [scenario("pareto", platform)]
        strats = [strategy("OneVMperTask-s")]
        a = run_sweep(platform=platform, workflows=wfs, scenarios=scs,
                      strategies=strats, seed=1)
        b = run_sweep(platform=platform, workflows=wfs, scenarios=scs,
                      strategies=strats, seed=2)
        d = diff_sweeps(a, b)
        assert d["changed"] == ["pareto/montage/OneVMperTask-s"]

    def test_added_and_removed(self, platform):
        wfs = {"montage": paper_workflows()["montage"]}
        scs = [scenario("pareto", platform)]
        a = run_sweep(platform=platform, workflows=wfs, scenarios=scs,
                      strategies=[strategy("OneVMperTask-s")], seed=1)
        b = run_sweep(platform=platform, workflows=wfs, scenarios=scs,
                      strategies=[strategy("AllParExceed-s")], seed=1)
        d = diff_sweeps(a, b)
        assert d["added"] == ["pareto/montage/AllParExceed-s"]
        assert d["removed"] == ["pareto/montage/OneVMperTask-s"]
