"""Metamorphic regressions: the service layer must add *nothing* to a
workload that never shares anything.

* A single tenant submitting workflows so far apart that every VM of
  the previous run is already reaped behaves exactly like N independent
  solo :func:`~repro.simulator.online.run_online` runs — same per-run
  makespan, rent, and VM count.
* A zero-arrival service run is a no-op: no VMs, no rent, no events.
"""

from __future__ import annotations

import pytest

from repro.service.arrivals import WorkflowRequest
from repro.service.loop import WorkflowService, run_service
from repro.simulator.online import run_online
from repro.workflows.generators import cstem, montage

SHAPES = {"montage": montage, "cstem": cstem}


@pytest.mark.parametrize("policy", ("StartParNotExceed", "AllParExceed"))
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_serial_single_tenant_equals_solo_runs(platform, shape, policy):
    wf = SHAPES[shape]()
    solo = run_online(wf, platform, policy=policy)

    # arrivals spaced past the previous fleet's BTU horizon: by the time
    # the next workflow arrives every old VM is idle-expired, so each
    # submission sees an empty fleet — exactly the solo initial state
    spacing = solo.makespan + 2 * platform.btu_seconds + 100.0
    count = 3
    requests = tuple(
        WorkflowRequest(
            tenant="solo", workflow=wf, arrival=i * spacing, name=f"solo#{i}"
        )
        for i in range(count)
    )
    result = run_service(requests, platform, policy=policy, max_concurrent=1)

    assert result.completed == count
    for report in result.workflows:
        assert report.wait == 0.0
        assert report.latency == pytest.approx(solo.makespan, rel=1e-12)
    assert result.vm_count == count * solo.vm_count
    assert result.rent_cost == pytest.approx(count * solo.rent_cost, rel=1e-12)
    assert result.makespan == pytest.approx(
        (count - 1) * spacing + solo.makespan, rel=1e-12
    )


def test_zero_arrival_run_is_a_noop(platform):
    service = WorkflowService(platform, admission="fair")
    result = service.run(())

    assert result.submitted == result.admitted == result.completed == 0
    assert result.rejected == 0
    assert result.makespan == 0.0
    assert result.throughput_per_hour == 0.0
    assert result.latency_p50 == result.latency_p99 == 0.0
    assert result.vm_count == 0 and result.btus == 0
    assert result.rent_cost == 0.0
    assert result.tenants == {} and result.workflows == []
    assert service.fleet.vms == []


def test_service_refuses_a_second_run(platform):
    from repro.errors import SimulationError

    service = WorkflowService(platform)
    service.run(())
    with pytest.raises(SimulationError, match="already ran"):
        service.submit(
            (WorkflowRequest(tenant="t", workflow=montage(), arrival=0.0),)
        )
