"""Unit tests of the arrival-stream generators and admission policies."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.service.admission import (
    ADMISSION_POLICIES,
    BudgetGuardAdmission,
    FairShareAdmission,
    FifoAdmission,
    admission_policy,
)
from repro.service.arrivals import (
    WorkflowRequest,
    poisson_arrivals,
    trace_arrivals,
)
from repro.service.loop import WorkflowService


class TestArrivals:
    def test_poisson_stream_is_seed_deterministic(self, diamond, chain3):
        kwargs = dict(count=20, tenants=4, mean_interarrival=100.0, seed=7)
        a = poisson_arrivals([diamond, chain3], **kwargs)
        b = poisson_arrivals([diamond, chain3], **kwargs)
        assert [(r.tenant, r.name, r.arrival) for r in a] == [
            (r.tenant, r.name, r.arrival) for r in b
        ]
        c = poisson_arrivals([diamond, chain3], **{**kwargs, "seed": 8})
        assert [r.arrival for r in a] != [r.arrival for r in c]

    def test_poisson_stream_sorted_and_named(self, diamond):
        stream = poisson_arrivals(
            diamond, count=10, tenants=3, mean_interarrival=50.0, seed=1
        )
        arrivals = [r.arrival for r in stream]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert len({r.name for r in stream}) == 10  # unique names
        assert all(r.tenant.startswith("tenant") for r in stream)

    def test_poisson_validation(self, diamond):
        with pytest.raises(ExperimentError, match="count"):
            poisson_arrivals(diamond, count=0, tenants=1, mean_interarrival=1.0)
        with pytest.raises(ExperimentError, match="tenants"):
            poisson_arrivals(diamond, count=1, tenants=0, mean_interarrival=1.0)
        with pytest.raises(ExperimentError, match="at least one workflow"):
            poisson_arrivals([], count=1, tenants=1, mean_interarrival=1.0)

    def test_trace_arrivals_parses_rows(self, diamond, chain3):
        catalog = {"diamond": diamond, "chain3": chain3}
        stream = trace_arrivals(
            [
                ("bob", "chain3", 50.0),
                ("alice", "diamond", 0.0, 12.5, 7200.0),
            ],
            catalog,
        )
        assert [r.tenant for r in stream] == ["alice", "bob"]
        assert stream[0].budget == 12.5 and stream[0].deadline == 7200.0
        assert stream[1].budget == float("inf")

    def test_trace_arrivals_rejects_bad_rows(self, diamond):
        with pytest.raises(ExperimentError, match="unknown workflow"):
            trace_arrivals([("t", "nope", 0.0)], {"diamond": diamond})
        with pytest.raises(ExperimentError, match="needs"):
            trace_arrivals([("t",)], {"diamond": diamond})
        with pytest.raises(ExperimentError, match="empty trace"):
            trace_arrivals([], {"diamond": diamond})

    def test_request_validation(self, diamond):
        with pytest.raises(ExperimentError, match="negative arrival"):
            WorkflowRequest(tenant="t", workflow=diamond, arrival=-1.0)
        with pytest.raises(ExperimentError, match="budget"):
            WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0, budget=0)
        with pytest.raises(ExperimentError, match="tenant"):
            WorkflowRequest(tenant="", workflow=diamond, arrival=0.0)


class TestAdmissionResolver:
    def test_registry_and_resolver(self):
        assert set(ADMISSION_POLICIES) == {"fifo", "fair", "budget"}
        assert isinstance(admission_policy(None), FifoAdmission)
        assert isinstance(admission_policy("FAIR"), FairShareAdmission)
        assert isinstance(admission_policy("budget"), BudgetGuardAdmission)
        instance = FairShareAdmission()
        assert admission_policy(instance) is instance

    def test_unknown_name_suggests(self):
        with pytest.raises(ExperimentError, match="fifo"):
            admission_policy("fifoo")


class TestFairShare:
    def test_select_next_prefers_idle_tenant(self, platform, diamond):
        service = WorkflowService(platform, admission="fair")
        busy, idle = service.account("busy"), service.account("idle")
        busy.running, busy.admitted = 2, 5
        idle.running, idle.admitted = 0, 1
        queue = [
            WorkflowRequest(tenant="busy", workflow=diamond, arrival=0.0),
            WorkflowRequest(tenant="idle", workflow=diamond, arrival=1.0),
        ]
        assert service.admission.select_next(queue, service) == 1

    def test_ties_break_by_arrival_order(self, platform, diamond):
        service = WorkflowService(platform, admission="fair")
        queue = [
            WorkflowRequest(tenant="a", workflow=diamond, arrival=0.0),
            WorkflowRequest(tenant="b", workflow=diamond, arrival=1.0),
        ]
        assert service.admission.select_next(queue, service) == 0


class TestBudgetGuard:
    def test_unbounded_budget_skips_estimation(self, platform, diamond):
        calls = []

        def estimator(request, service):
            calls.append(request)
            return 1.0

        service = WorkflowService(
            platform, admission=BudgetGuardAdmission(estimator)
        )
        request = WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0)
        assert service.admission.admit(request, service)
        assert calls == []

    def test_rejects_once_committed_plus_estimate_overshoots(
        self, platform, diamond
    ):
        service = WorkflowService(
            platform, admission=BudgetGuardAdmission(lambda r, s: 1.0)
        )
        acct = service.account("t")
        acct.spent, acct.committed = 1.5, 1.0

        def req():
            return WorkflowRequest(
                tenant="t", workflow=diamond, arrival=0.0, budget=3.0
            )

        assert not service.admission.admit(req(), service)
        acct.committed = 0.4  # 1.5 + 0.4 + 1.0 <= 3.0
        assert service.admission.admit(req(), service)


class TestConstraintsSpelling:
    """--tenant-budget / per-request budgets / Constraints are one object."""

    def test_request_constraints_property(self, diamond):
        from repro.core.constraints import Constraints

        r = WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0, budget=3.0)
        assert r.constraints == Constraints(budget=3.0)
        unbounded = WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0)
        assert unbounded.constraints.unconstrained

    def test_guard_accepts_constraints_object(self, platform, diamond):
        from repro.core.constraints import Constraints

        guard = BudgetGuardAdmission(
            lambda r, s: 1.0, constraints=Constraints(budget=3.0)
        )
        service = WorkflowService(platform, admission=guard)
        acct = service.account("t")
        acct.spent, acct.committed = 1.5, 1.0
        # requests carry no budget of their own; the service-level
        # Constraints bound decides, same arithmetic as the float path
        request = WorkflowRequest(tenant="t", workflow=diamond, arrival=0.0)
        assert not service.admission.admit(request, service)
        acct.committed = 0.4
        assert service.admission.admit(request, service)

    def test_run_service_constraints_param_builds_budget_guard(self, platform):
        from repro.core.constraints import Constraints

        service = WorkflowService(
            platform, constraints=Constraints(budget=2.0)
        )
        assert isinstance(service.admission, BudgetGuardAdmission)
        assert service.admission.constraints == Constraints(budget=2.0)

    def test_constraints_conflict_with_non_budget_admission(self, platform):
        from repro.core.constraints import Constraints
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="admission='budget'"):
            WorkflowService(
                platform, admission="fair", constraints=Constraints(budget=2.0)
            )

    def test_poisson_arrivals_accepts_constraints_budget(self, diamond):
        from repro.core.constraints import Constraints

        kwargs = dict(count=5, tenants=2, mean_interarrival=60.0, seed=3)
        via_float = poisson_arrivals(diamond, budget=2.5, **kwargs)
        via_constraints = poisson_arrivals(
            diamond, budget=Constraints(budget=2.5), **kwargs
        )
        assert [r.budget for r in via_constraints] == [
            r.budget for r in via_float
        ]


def test_loop_rejects_bad_knobs(platform):
    from repro.errors import SchedulingError

    with pytest.raises(SchedulingError, match="unsupported online policy"):
        WorkflowService(platform, policy="Heft")
    with pytest.raises(SchedulingError, match="max_concurrent"):
        WorkflowService(platform, max_concurrent=0)
