"""Profile one representative sweep cell under cProfile.

Runs the full evaluation of a single (scenario, workflow) grid cell —
the unit ``run_sweep`` fans out — and writes the top *N* functions by
cumulative time to a text report (``make profile`` puts it at
``artifacts/profile.txt``).  Use it to find the next hot spot before
and to prove the fix after an optimization PR.

``--columnar`` profiles the large-workflow columnar path instead: one
50k-task montage generation plus all five provisioning families through
the fused kernels (``make profile`` writes that report to
``artifacts/profile_columnar.txt``).

``--service`` profiles one seeded multi-tenant ``run_service`` cell —
the WaaS hot path the indexed fleet kernels serve (``make
profile-service`` writes that report to
``artifacts/profile_service.txt``).

Run directly::

    PYTHONPATH=src python benchmarks/profile_cell.py --out artifacts/profile.txt
    PYTHONPATH=src python benchmarks/profile_cell.py --columnar
    PYTHONPATH=src python benchmarks/profile_cell.py --service
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.experiments.config import paper_strategies, paper_workflows
from repro.experiments.parallel import SweepCell, run_cell
from repro.experiments.scenarios import paper_scenarios


def build_cell(scenario_index: int, workflow_index: int, seed: int) -> SweepCell:
    platform = CloudPlatform.ec2()
    scenarios = paper_scenarios(platform)
    workflows = paper_workflows()
    scenario = scenarios[scenario_index % len(scenarios)]
    wf_name, shape = list(workflows.items())[workflow_index % len(workflows)]
    child = np.random.SeedSequence(seed).spawn(1)[0]
    return SweepCell(
        scenario=scenario,
        workflow_name=wf_name,
        shape=shape,
        strategies=paper_strategies(),
        platform=platform,
        seed=child,
    )


def profile_columnar(projections: int, top: int) -> str:
    """Profile 50k-scale generation + all fused provisioning families."""
    from repro.core.allocation import HeftScheduler, LevelScheduler
    from repro.core.provisioning import PROVISIONING_POLICIES
    from repro.workflows.generators import montage

    platform = CloudPlatform.ec2()
    families = [
        ("AllParExceed", LevelScheduler),
        ("AllParNotExceed", LevelScheduler),
        ("StartParExceed", HeftScheduler),
        ("StartParNotExceed", HeftScheduler),
        ("OneVMperTask", HeftScheduler),
    ]
    profiler = cProfile.Profile()
    profiler.enable()
    for name, cls in families:
        wf = montage(projections)
        cls(PROVISIONING_POLICIES[name]()).schedule(wf, platform)
    profiler.disable()

    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    header = (
        f"columnar pipeline: montage({projections}) "
        f"({3 * projections + 6} tasks) x {len(families)} families\n"
        f"top {top} by cumulative time\n\n"
    )
    return header + buf.getvalue()


def profile_service(count: int, tenants: int, seed: int, top: int) -> str:
    """Profile one seeded multi-tenant ``run_service`` cell."""
    from repro.experiments.service import ServiceCell, build_requests
    from repro.service.loop import run_service

    cell = ServiceCell(
        platform=CloudPlatform.ec2(),
        policy="StartParNotExceed",
        admission="fair",
        count=count,
        tenants=tenants,
        mean_interarrival=180.0,
        seed=seed,
        max_concurrent=32,
    )
    requests = build_requests(cell)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_service(
        requests,
        cell.platform,
        policy=cell.policy,
        admission=cell.admission,
        max_concurrent=cell.max_concurrent,
    )
    profiler.disable()

    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    header = (
        f"service cell: {count} workflows / {tenants} tenants "
        f"({cell.policy}/{cell.admission}, seed {seed}); "
        f"{result.completed} completed, {result.vm_count} VMs rented\n"
        f"top {top} by cumulative time\n\n"
    )
    return header + buf.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", type=int, default=0, help="scenario index")
    parser.add_argument("--workflow", type=int, default=0, help="workflow index")
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--top", type=int, default=25, help="rows in the report")
    parser.add_argument("--out", type=Path, default=None, help="report path (default stdout)")
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="profile the 50k columnar fused pipeline instead of a sweep cell",
    )
    parser.add_argument(
        "--projections",
        type=int,
        default=16665,
        help="montage size for --columnar (default 16665 -> 50001 tasks)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="profile one multi-tenant run_service cell instead",
    )
    parser.add_argument(
        "--count", type=int, default=1000, help="workflows for --service"
    )
    parser.add_argument(
        "--tenants", type=int, default=50, help="tenants for --service"
    )
    args = parser.parse_args(argv)

    if args.columnar or args.service:
        if args.columnar:
            report = profile_columnar(args.projections, args.top)
        else:
            report = profile_service(args.count, args.tenants, args.seed, args.top)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(report)
            print(f"wrote {args.out}")
        else:
            print(report)
        return 0

    cell = build_cell(args.scenario, args.workflow, args.seed)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_cell(cell)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    header = (
        f"cell {cell.scenario.name}/{cell.workflow_name} "
        f"({len(cell.strategies)} strategies, seed {args.seed}); "
        f"{len(result.metrics)} strategy rows\n"
        f"top {args.top} by cumulative time\n\n"
    )
    report = header + buf.getvalue()
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
