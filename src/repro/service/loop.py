"""The WaaS service loop: arrivals → admission → shared-fleet execution.

One :class:`WorkflowService` multiplexes many workflow submissions onto
a single discrete-event :class:`~repro.simulator.engine.Simulator` and
a single :class:`~repro.service.fleet.FleetManager`:

* each :class:`~repro.service.arrivals.WorkflowRequest` arrives as a
  simulator event at its arrival time;
* the admission policy decides once, at arrival, admit or reject; a
  budget commitment (the admission estimate) is taken at that moment,
  so the per-tenant invariant ``spent + committed <= budget`` holds no
  matter how many of a tenant's requests sit in the queue;
* admitted requests wait for one of ``max_concurrent`` slots, then run
  as an owner-tagged :class:`~repro.simulator.online.
  OnlineCloudExecutor` attached to the shared simulator and fleet —
  placement decisions use the paper's provisioning policies against
  the *live* fleet, so idle VMs rented for one tenant's workflow can
  be reused by the next (the resource-sharing WaaS model);
* billing is fleet-level and per-owner: the service, not the
  executors, prices the fleet when the event queue drains.

Everything is a deterministic function of (requests, seed inputs,
policy knobs): no wall clock, no OS randomness — the determinism tests
hash the rollup across execution backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.constraints import Constraints
from repro.core.provisioning.base import online_policy_names
from repro.core.recovery import RecoveryPolicy
from repro.errors import SchedulingError, SimulationError
from repro.experiments.result import ResultBase
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import current as current_metrics
from repro.obs.tracer import Tracer, ensure_tracer
from repro.service.admission import (
    AdmissionPolicy,
    BudgetGuardAdmission,
    admission_policy,
)
from repro.service.arrivals import WorkflowRequest
from repro.service.fleet import FleetManager, OwnerBill
from repro.simulator.engine import Simulator
from repro.simulator.faults import FaultPlan
from repro.simulator.online import OnlineCloudExecutor


@dataclass
class TenantAccount:
    """Mutable per-tenant ledger the admission policies read."""

    tenant: str
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: workflows currently executing (fair-share reads this)
    running: int = 0
    #: estimate-ledger of finished workflows (moved from ``committed``)
    spent: float = 0.0
    #: admission estimates of admitted-but-unfinished workflows
    committed: float = 0.0


@dataclass(frozen=True)
class WorkflowReport:
    """One completed workflow through the service."""

    name: str
    tenant: str
    arrival: float
    started: float
    finished: float
    #: arrival → finish (the headline the p50/p99 summarize)
    latency: float
    #: arrival → start (queueing + admission delay)
    wait: float
    tasks: int


@dataclass(frozen=True)
class TenantReport:
    """Final per-tenant accounting."""

    tenant: str
    submitted: int
    admitted: int
    rejected: int
    completed: int
    #: estimate-ledger total (what admission charged against the budget)
    spent_estimate: float
    #: realized rent of the VMs this tenant rented (fleet bill)
    bill: Optional[OwnerBill]


@dataclass
class ServiceResult(ResultBase):
    """Outcome of one service run."""

    submitted: int
    admitted: int
    rejected: int
    completed: int
    #: final simulation time (0 for an empty run)
    makespan: float
    #: completed workflows per simulated hour
    throughput_per_hour: float
    latency_p50: float
    latency_p99: float
    #: fleet busy/paid seconds
    utilization: float
    vm_count: int
    btus: int
    rent_cost: float
    tenants: Dict[str, TenantReport]
    workflows: List[WorkflowReport] = field(default_factory=list)

    def rollup(self) -> dict:
        """JSON-stable summary — the byte-identity surface of the
        determinism tests (same seed, any backend → same bytes)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "makespan": self.makespan,
            "throughput_per_hour": self.throughput_per_hour,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "utilization": self.utilization,
            "vm_count": self.vm_count,
            "btus": self.btus,
            "rent_cost": self.rent_cost,
            "tenants": {
                name: {
                    "submitted": t.submitted,
                    "admitted": t.admitted,
                    "rejected": t.rejected,
                    "completed": t.completed,
                    "spent_estimate": t.spent_estimate,
                    "rent_cost": t.bill.rent_cost if t.bill else 0.0,
                    "vms": t.bill.vm_count if t.bill else 0,
                }
                for name, t in sorted(self.tenants.items())
            },
        }

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Headline + per-tenant tables (same as ``render_service``)."""
        from repro.experiments.service import render_service

        return render_service(self)

    def to_json(self) -> dict:
        return self.rollup()


def _nearest_rank(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0 for an empty list."""
    if not sorted_vals:
        return 0.0
    k = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return sorted_vals[min(k, len(sorted_vals)) - 1]


class WorkflowService:
    """A multi-tenant workflow service over one shared fleet."""

    def __init__(
        self,
        platform: CloudPlatform,
        policy: str = "StartParNotExceed",
        itype: InstanceType | None = None,
        region: Region | None = None,
        admission: "str | AdmissionPolicy | None" = None,
        constraints: "Constraints | None" = None,
        max_concurrent: int | None = None,
        runtime_fn: Callable[[str, float], float] | None = None,
        fault_plan: FaultPlan | None = None,
        recovery: "str | RecoveryPolicy | None" = None,
        max_events: int = 10_000_000,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        fleet: FleetManager | None = None,
    ) -> None:
        supported = online_policy_names()
        if policy not in supported:
            raise SchedulingError(
                f"unsupported online policy {policy!r}; known: {supported}"
            )
        if max_concurrent is not None and max_concurrent < 1:
            raise SchedulingError("max_concurrent must be >= 1 (or None)")
        self.platform = platform
        self.policy = policy
        self.itype = itype or platform.itype("small")
        self.region = region or platform.default_region
        # *constraints* is the Constraints spelling of admission="budget":
        # one service-level bound capping every tenant.
        resolved = admission_policy(admission)
        if constraints is not None and not constraints.unconstrained:
            if admission is None:
                resolved = BudgetGuardAdmission(constraints=constraints)
            elif isinstance(resolved, BudgetGuardAdmission):
                resolved = BudgetGuardAdmission(
                    estimator=resolved.estimator, constraints=constraints
                )
            else:
                raise SchedulingError(
                    f"constraints ({constraints.describe()}) is the Constraints "
                    f"spelling of admission='budget'; it cannot combine with "
                    f"admission={resolved.name!r}"
                )
        self.admission = resolved
        self.max_concurrent = max_concurrent
        self.runtime_fn = runtime_fn
        if fault_plan is None and getattr(platform, "market", None) is not None:
            # ambient platform market: same synthesis as the executors,
            # done here so the service's billing sees the market too
            fault_plan = FaultPlan(market=platform.market)
        self.fault_plan = fault_plan
        self.recovery = recovery
        self.tracer = ensure_tracer(tracer)
        self.metrics = metrics if metrics is not None else current_metrics()
        self.sim = Simulator(max_events=max_events, tracer=tracer)
        #: the shared fleet; inject one (e.g. ``FleetManager(
        #: indexed=False)``) to run against the reference scan path
        self.fleet = fleet if fleet is not None else FleetManager(region=self.region)
        self.accounts: Dict[str, TenantAccount] = {}
        self.queue: List[WorkflowRequest] = []
        self.running = 0
        self.rejected_requests: List[WorkflowRequest] = []
        self.reports: List[WorkflowReport] = []
        #: admission estimates by request identity, released at finish
        self._commit: Dict[int, float] = {}
        self._estimates: Dict[int, float] = {}
        self._started_at: Dict[int, float] = {}
        self._seq = 0
        self._finished = False
        # streaming rollup accumulators: totals and the latency list
        # grow as workflows finish, so _finish() never re-walks the
        # reports for facts it already observed (percentiles stay
        # sort-once over the accumulated latencies)
        self._submitted = 0
        self._admitted = 0
        self._rejected = 0
        self._latencies: List[float] = []
        self._makespan = 0.0

    # ------------------------------------------------------------------
    # state the admission policies read
    # ------------------------------------------------------------------
    def account(self, tenant: str) -> TenantAccount:
        acct = self.accounts.get(tenant)
        if acct is None:
            acct = self.accounts[tenant] = TenantAccount(tenant=tenant)
        return acct

    def note_estimate(self, request: WorkflowRequest, estimate: float) -> None:
        """Called by admission policies that priced *request*; the loop
        turns the estimate into the budget commitment on admit."""
        self._estimates[id(request)] = estimate

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, request: WorkflowRequest) -> None:
        acct = self.account(request.tenant)
        acct.submitted += 1
        self._submitted += 1
        # the manager attributes any static planning (e.g. the budget
        # guard's estimator builds) to the arriving tenant
        self.fleet.active_owner = request.tenant
        try:
            admitted = self.admission.admit(request, self)
        finally:
            self.fleet.active_owner = ""
        estimate = self._estimates.pop(id(request), 0.0)
        if not admitted:
            acct.rejected += 1
            self._rejected += 1
            self.rejected_requests.append(request)
            return
        acct.admitted += 1
        self._admitted += 1
        # commitment at admit (not dequeue): queued siblings must not
        # jointly overshoot the budget
        acct.committed += estimate
        self._commit[id(request)] = estimate
        self.queue.append(request)
        self._drain_queue()

    def _drain_queue(self) -> None:
        while self.queue and (
            self.max_concurrent is None or self.running < self.max_concurrent
        ):
            idx = self.admission.select_next(self.queue, self)
            request = self.queue.pop(idx)
            self._start(request)

    def _start(self, request: WorkflowRequest) -> None:
        acct = self.account(request.tenant)
        acct.running += 1
        self.running += 1
        self._started_at[id(request)] = self.sim.now
        self._seq += 1
        run_name = request.name or f"req{self._seq}"
        executor = OnlineCloudExecutor(
            request.workflow,
            self.platform,
            policy=self.policy,
            itype=self.itype,
            region=self.region,
            runtime_fn=self.runtime_fn,
            fault_plan=self.fault_plan,
            recovery=self.recovery,
            metrics=None,
            sim=self.sim,
            fleet=self.fleet,
            owner=request.tenant,
            run_name=run_name,
            on_complete=lambda r=request: self._on_workflow_done(r),
        )
        executor.start()

    def _on_workflow_done(self, request: WorkflowRequest) -> None:
        acct = self.account(request.tenant)
        acct.running -= 1
        acct.completed += 1
        self.running -= 1
        estimate = self._commit.pop(id(request), 0.0)
        acct.committed -= estimate
        acct.spent += estimate
        started = self._started_at.pop(id(request))
        now = self.sim.now
        latency = now - request.arrival
        self.reports.append(
            WorkflowReport(
                name=request.name,
                tenant=request.tenant,
                arrival=request.arrival,
                started=started,
                finished=now,
                latency=latency,
                wait=started - request.arrival,
                tasks=len(request.workflow.task_ids),
            )
        )
        self._latencies.append(latency)
        if now > self._makespan:
            self._makespan = now
        self._drain_queue()

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def submit(self, requests: Sequence[WorkflowRequest]) -> None:
        """Schedule every request's arrival event."""
        if self._finished:
            raise SimulationError("service already ran; build a new one")
        for request in requests:
            self.sim.at(
                request.arrival,
                lambda r=request: self._on_arrival(r),
                f"arrive:{request.name}",
            )

    def run(self, requests: Sequence[WorkflowRequest] = ()) -> ServiceResult:
        """Process *requests* (plus anything already submitted) to
        completion and price the fleet."""
        if requests:
            self.submit(requests)
        with self.tracer.span(
            "service.run", cat="service", policy=self.policy,
            admission=self.admission.name,
        ):
            self.sim.run()
        return self._finish()

    def _finish(self) -> ServiceResult:
        self._finished = True
        if self.queue or self.running:
            raise SimulationError(
                f"service wedged: {len(self.queue)} queued, "
                f"{self.running} running after the event queue drained"
            )
        if self.sim.pending_events:
            raise SimulationError("event queue not drained")  # pragma: no cover
        billing = self.platform.billing
        market = self.fault_plan.market if self.fault_plan is not None else None
        seed = self.fault_plan.seed if self.fault_plan is not None else 0
        # one compacted roster pass: conservation check + per-owner
        # bills + utilization, instead of three full fleet walks
        roll = self.fleet.finalize(billing, self.region, market=market, seed=seed)
        latencies = sorted(self._latencies)
        makespan = self._makespan
        completed = len(self.reports)
        throughput = completed / (makespan / 3600.0) if makespan > 0 else 0.0
        tenants: Dict[str, TenantReport] = {}
        for name in sorted(self.accounts):
            acct = self.accounts[name]
            tenants[name] = TenantReport(
                tenant=name,
                submitted=acct.submitted,
                admitted=acct.admitted,
                rejected=acct.rejected,
                completed=acct.completed,
                spent_estimate=acct.spent,
                bill=roll.bills.get(name),
            )
        result = ServiceResult(
            submitted=self._submitted,
            admitted=self._admitted,
            rejected=self._rejected,
            completed=completed,
            makespan=makespan,
            throughput_per_hour=throughput,
            latency_p50=_nearest_rank(latencies, 50.0),
            latency_p99=_nearest_rank(latencies, 99.0),
            utilization=roll.utilization,
            vm_count=len(self.fleet.vms),
            btus=roll.btus,
            rent_cost=roll.rent_cost,
            tenants=tenants,
            workflows=sorted(
                self.reports, key=lambda r: (r.finished, r.arrival, r.name)
            ),
        )
        self._emit_metrics(result)
        return result

    def _emit_metrics(self, result: ServiceResult) -> None:
        if self.metrics is None:
            return
        m = self.metrics
        m.inc("service.runs")
        m.inc("service.submitted", result.submitted)
        m.inc("service.admitted", result.admitted)
        m.inc("service.rejected", result.rejected)
        m.inc("service.completed", result.completed)
        m.inc("service.vms_rented", result.vm_count)
        m.inc("service.btus_billed", result.btus)
        m.inc("sim.events_processed", self.sim.processed_events)
        m.inc("sim.simulated_seconds", result.makespan)


def run_service(
    requests: Sequence[WorkflowRequest],
    platform: CloudPlatform,
    policy: str = "StartParNotExceed",
    itype: InstanceType | None = None,
    region: Region | None = None,
    admission: "str | AdmissionPolicy | None" = None,
    constraints: "Constraints | None" = None,
    max_concurrent: int | None = None,
    runtime_fn: Callable[[str, float], float] | None = None,
    fault_plan: FaultPlan | None = None,
    recovery: "str | RecoveryPolicy | None" = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    fleet: "FleetManager | None" = None,
) -> ServiceResult:
    """Convenience wrapper: build a service and run one request stream.

    *constraints* is the :class:`~repro.core.constraints.Constraints`
    spelling of ``admission="budget"``: a service-level budget bound
    capping every tenant."""
    return WorkflowService(
        platform,
        policy=policy,
        itype=itype,
        region=region,
        admission=admission,
        constraints=constraints,
        max_concurrent=max_concurrent,
        runtime_fn=runtime_fn,
        fault_plan=fault_plan,
        recovery=recovery,
        tracer=tracer,
        metrics=metrics,
        fleet=fleet,
    ).run(requests)
