"""Pegasus DAX (v3) workflow interchange.

Public scientific-workflow traces (Montage, Epigenomics, ...) are
distributed as DAX XML.  We support the subset the traces actually use:
``<job id runtime>`` with ``<uses file link=input|output size>`` file
declarations, plus explicit ``<child><parent/></child>`` dependencies.
Data volume on a dependency edge is the total size of files the parent
writes and the child reads; when a trace omits file sizes the edge gets
zero data (the CPU-intensive assumption).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict
from pathlib import Path
from typing import Dict, Set, Tuple

from repro.errors import WorkflowParseError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_BYTES_PER_GB = 1024**3


def _local(tag: str) -> str:
    """Tag name with any XML namespace stripped."""
    return tag.rsplit("}", 1)[-1]


def parse_dax_string(text: str, name: str = "dax") -> Workflow:
    """Parse a DAX v3 document from a string. See :func:`parse_dax`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise WorkflowParseError(f"malformed DAX XML: {exc}") from exc
    if _local(root.tag) != "adag":
        raise WorkflowParseError(f"expected <adag> root, got <{_local(root.tag)}>")

    wf = Workflow(root.get("name", name))
    # file -> (producers, consumers) with sizes, to infer data edges
    produces: Dict[str, Set[str]] = defaultdict(set)
    consumes: Dict[str, Set[str]] = defaultdict(set)
    file_gb: Dict[str, float] = {}

    for job in root:
        if _local(job.tag) != "job":
            continue
        jid = job.get("id")
        if not jid:
            raise WorkflowParseError("<job> without id attribute")
        runtime = job.get("runtime")
        if runtime is None:
            raise WorkflowParseError(f"job {jid!r} has no runtime attribute")
        try:
            work = float(runtime)
        except ValueError:
            raise WorkflowParseError(
                f"job {jid!r} has non-numeric runtime {runtime!r}"
            ) from None
        if work <= 0:
            # Traces occasionally record zero-length bookkeeping jobs;
            # clamp to a tiny epsilon so the Task invariant holds.
            work = 1e-6
        wf.add_task(Task(jid, work, job.get("name", "")))
        for uses in job:
            if _local(uses.tag) != "uses":
                continue
            fname = uses.get("file") or uses.get("name")
            if not fname:
                continue
            size = uses.get("size")
            if size is not None:
                try:
                    file_gb[fname] = float(size) / _BYTES_PER_GB
                except ValueError:
                    raise WorkflowParseError(
                        f"job {jid!r}: non-numeric size {size!r} for file {fname!r}"
                    ) from None
            link = (uses.get("link") or "").lower()
            if link == "output":
                produces[fname].add(jid)
            elif link == "input":
                consumes[fname].add(jid)

    # Explicit control dependencies.
    deps: Dict[Tuple[str, str], float] = {}
    for child in root:
        if _local(child.tag) != "child":
            continue
        cid = child.get("ref")
        if not cid:
            raise WorkflowParseError("<child> without ref attribute")
        for parent in child:
            if _local(parent.tag) != "parent":
                continue
            pid = parent.get("ref")
            if not pid:
                raise WorkflowParseError("<parent> without ref attribute")
            deps.setdefault((pid, cid), 0.0)

    # Attach file volumes to the matching edges.
    for fname, writers in produces.items():
        gb = file_gb.get(fname, 0.0)
        for w in writers:
            for r in consumes.get(fname, ()):
                if w == r:
                    continue
                key = (w, r)
                if key in deps:
                    deps[key] += gb

    for (pid, cid), gb in sorted(deps.items()):
        if pid not in wf or cid not in wf:
            raise WorkflowParseError(f"dependency references unknown job: {pid}->{cid}")
        wf.add_dependency(pid, cid, gb)
    return wf.validate()


def parse_dax(path: str | Path) -> Workflow:
    """Parse a DAX v3 file from *path*."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise WorkflowParseError(f"cannot read {p}: {exc}") from exc
    return parse_dax_string(text, name=p.stem)


def to_dax(wf: Workflow) -> str:
    """Serialize *wf* as DAX v3 XML (round-trips through the parser)."""
    wf.validate()
    root = ET.Element("adag", name=wf.name)
    edge_files: Dict[Tuple[str, str], str] = {}
    for i, (u, v, _gb) in enumerate(wf.edges()):
        edge_files[(u, v)] = f"file_{i:04d}"

    for task in wf.tasks:
        job = ET.SubElement(
            root, "job", id=task.id, name=task.category or task.id,
            runtime=repr(task.work),
        )
        for (u, v), fname in edge_files.items():
            gb = wf.data_gb(u, v)
            size = str(int(gb * _BYTES_PER_GB))
            if u == task.id:
                ET.SubElement(job, "uses", file=fname, link="output", size=size)
            if v == task.id:
                ET.SubElement(job, "uses", file=fname, link="input", size=size)

    children: Dict[str, list[str]] = defaultdict(list)
    for u, v, _gb in wf.edges():
        children[v].append(u)
    for cid in sorted(children):
        child = ET.SubElement(root, "child", ref=cid)
        for pid in sorted(children[cid]):
            ET.SubElement(child, "parent", ref=pid)
    return ET.tostring(root, encoding="unicode")
