"""The pricing sweep: grid mechanics, determinism, CLI artifact."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.pricing import (
    BootSetting,
    paper_boot_settings,
    render_pricing_sweep,
    run_pricing_sweep,
)
from repro.experiments.scenarios import price_scenario, price_scenarios
from repro.workflows.generators import montage

PLATFORM = CloudPlatform.ec2()


@pytest.fixture(scope="module")
def small_sweep():
    return run_pricing_sweep(
        platform=PLATFORM,
        workflow=montage(25),
        workflow_name="montage",
        seeds=2,
    )


class TestPriceScenarios:
    def test_family_has_control_and_spot_regimes(self):
        names = [s.name for s in price_scenarios()]
        assert "on_demand" in names
        assert sum(1 for n in names if n.startswith("spot")) >= 3

    def test_lookup(self):
        assert price_scenario("spot_spike").name == "spot_spike"
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            price_scenario("nope")

    def test_boot_settings(self):
        boots = paper_boot_settings()
        names = [b.name for b in boots]
        assert names == ["prebooted", "cold_start"]
        cold = boots[1]
        assert not cold.prebooted and cold.cold_seconds > 0


class TestPricingSweep:
    def test_full_grid(self, small_sweep):
        # 5 policies x 4 scenarios x 2 boots x 2 seeds
        assert len(small_sweep.cells) == 80
        assert small_sweep.complete
        assert len(small_sweep.scenarios()) == 4
        assert len(small_sweep.boots()) == 2
        assert len(small_sweep.strategies()) == 5

    def test_control_cell_is_faithful(self, small_sweep):
        # the on_demand control never preempts and realizes the plan
        for boot in ("prebooted",):
            for label in small_sweep.strategies():
                for cell in small_sweep.group("on_demand", boot, label):
                    assert cell.stats.preemptions == 0
                    assert cell.makespan_delta == 0.0
                    assert cell.cost_delta == 0.0

    def test_spot_spike_preempts_and_saves_or_costs(self, small_sweep):
        cells = [
            c
            for label in small_sweep.strategies()
            for c in small_sweep.group("spot_spike", "prebooted", label)
        ]
        assert any(c.stats.preemptions > 0 for c in cells)
        assert any(c.stats.rebids > 0 for c in cells)

    def test_frontier_nonempty_everywhere(self, small_sweep):
        for sc in small_sweep.scenarios():
            for boot in small_sweep.boots():
                frontier = small_sweep.frontier(sc, boot)
                assert frontier, f"empty frontier for {sc}/{boot}"
                assert set(frontier) <= set(small_sweep.strategies())

    def test_backend_identity(self, small_sweep):
        threaded = run_pricing_sweep(
            platform=PLATFORM,
            workflow=montage(25),
            workflow_name="montage",
            seeds=2,
            jobs=4,
            backend="thread",
        )
        assert render_pricing_sweep(threaded) == render_pricing_sweep(
            small_sweep
        )

    def test_render_mentions_pareto(self, small_sweep):
        text = render_pricing_sweep(small_sweep)
        assert "Pareto frontier (fast -> cheap):" in text
        assert "scenario=spot_spike" in text

    def test_custom_axes(self):
        sweep = run_pricing_sweep(
            platform=PLATFORM,
            workflow=montage(25),
            workflow_name="montage",
            scenarios=[price_scenario("on_demand")],
            boots=[BootSetting("prebooted")],
            seeds=1,
        )
        assert len(sweep.cells) == 5

    def test_validation(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_pricing_sweep(workflow=montage(25), seeds=0)


class TestPricingCLI:
    def test_artifact_runs_and_reproduces(self, tmp_path):
        from repro.experiments.cli import main

        out1 = tmp_path / "pricing1.txt"
        out2 = tmp_path / "pricing2.txt"
        argv = [
            "pricing",
            "--workflow",
            "montage",
            "--quick",
            "--price-seeds",
            "1",
        ]
        assert main(argv + ["--out", str(out1)]) == 0
        assert main(argv + ["--out", str(out2)]) == 0
        text = out1.read_text()
        assert "Pricing sweep" in text
        assert "Pareto frontier" in text
        # byte-for-byte reproducible artifact
        assert text == out2.read_text()
        # a manifest rides along with any file output
        manifests = list(tmp_path.glob("*manifest*"))
        assert manifests

    def test_artifact_reproduces_from_manifest(self, tmp_path):
        from repro.experiments.cli import main
        from repro.obs.manifest import load_manifest, manifest_argv

        out1 = tmp_path / "a.txt"
        main(
            [
                "pricing",
                "--workflow",
                "montage",
                "--quick",
                "--price-seeds",
                "1",
                "--out",
                str(out1),
                "--manifest",
                str(tmp_path / "m.json"),
            ]
        )
        manifest = load_manifest(tmp_path / "m.json")
        # output paths are dropped from the recorded argv: append fresh
        # destinations and replay the run
        argv = manifest_argv(manifest)
        out2 = tmp_path / "b.txt"
        assert main(argv + ["--out", str(out2)]) == 0
        assert out2.read_text() == out1.read_text()

    def test_unknown_boot_setting_is_an_error(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "pricing",
                    "--boot-settings",
                    "hibernate",
                    "--out",
                    str(tmp_path / "x.txt"),
                ]
            )
