"""Tests for the closed-open interval algebra, including hypothesis
properties on merge canonicalization."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import Interval, IntervalSet


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 4.0).length == 3.0

    def test_empty(self):
        assert Interval(2.0, 2.0).empty
        assert not Interval(2.0, 2.5).empty

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_overlap_positive(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))

    def test_touching_does_not_overlap(self):
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_contains_is_closed_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert not iv.contains(2.0)

    def test_intersection(self):
        assert Interval(0, 3).intersection(Interval(2, 5)) == Interval(2, 3)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_shifted(self):
        assert Interval(1, 2).shifted(0.5) == Interval(1.5, 2.5)

    def test_ordering_is_lexicographic(self):
        assert Interval(0, 5) < Interval(1, 2)
        assert Interval(1, 2) < Interval(1, 3)


class TestIntervalSet:
    def test_merges_overlapping(self):
        s = IntervalSet([Interval(0, 2), Interval(1, 3)])
        assert list(s) == [Interval(0, 3)]

    def test_merges_touching(self):
        s = IntervalSet([Interval(0, 1), Interval(1, 2)])
        assert list(s) == [Interval(0, 2)]

    def test_keeps_disjoint_sorted(self):
        s = IntervalSet([Interval(5, 6), Interval(0, 1)])
        assert list(s) == [Interval(0, 1), Interval(5, 6)]

    def test_ignores_empty(self):
        s = IntervalSet([Interval(1, 1)])
        assert len(s) == 0
        assert not s

    def test_total_length(self):
        s = IntervalSet([Interval(0, 2), Interval(4, 7)])
        assert s.total_length == 5.0

    def test_span(self):
        s = IntervalSet([Interval(1, 2), Interval(8, 9)])
        assert s.span == Interval(1, 9)
        assert IntervalSet().span == Interval(0, 0)

    def test_gaps(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 4), Interval(4.5, 5)])
        assert s.gaps() == [Interval(1, 3), Interval(4, 4.5)]

    def test_add_disjoint_rejects_overlap(self):
        s = IntervalSet([Interval(0, 2)])
        with pytest.raises(ValueError):
            s.add_disjoint(Interval(1, 3))

    def test_add_disjoint_allows_touching(self):
        s = IntervalSet([Interval(0, 2)])
        s.add_disjoint(Interval(2, 3))
        assert list(s) == [Interval(0, 3)]

    def test_covers(self):
        s = IntervalSet([Interval(0, 1)])
        assert s.covers(0.5)
        assert not s.covers(1.5)

    def test_first_fit_before_all(self):
        s = IntervalSet([Interval(10, 20)])
        assert s.first_fit(0.0, 5.0) == 0.0

    def test_first_fit_pushed_past_busy(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.first_fit(0.0, 5.0) == 10.0

    def test_first_fit_in_gap(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 9)])
        assert s.first_fit(0.0, 3.0) == 2.0
        assert s.first_fit(0.0, 4.0) == 9.0

    def test_first_fit_negative_duration(self):
        with pytest.raises(ValueError):
            IntervalSet().first_fit(0.0, -1.0)


_intervals = st.builds(
    lambda a, b: Interval(min(a, b), max(a, b)),
    st.floats(0, 1000, allow_nan=False),
    st.floats(0, 1000, allow_nan=False),
)


class TestIntervalSetProperties:
    @given(st.lists(_intervals, max_size=30))
    def test_members_disjoint_and_sorted(self, ivs):
        s = IntervalSet(ivs)
        members = list(s)
        for a, b in zip(members, members[1:]):
            assert a.end < b.start  # strictly separated (touching merged)

    @given(st.lists(_intervals, max_size=30))
    def test_total_length_bounded_by_span(self, ivs):
        s = IntervalSet(ivs)
        assert s.total_length <= s.span.length + 1e-9

    @given(st.lists(_intervals, max_size=30))
    def test_insertion_order_irrelevant(self, ivs):
        assert list(IntervalSet(ivs)) == list(IntervalSet(reversed(ivs)))

    @given(st.lists(_intervals, max_size=20), _intervals)
    def test_covers_after_add(self, ivs, extra):
        s = IntervalSet(ivs)
        s.add(extra)
        if not extra.empty:
            assert s.covers(extra.start)
            mid = (extra.start + extra.end) / 2
            # for tiny intervals the float midpoint can round up onto
            # the (excluded) end bound; only probe genuinely interior
            # points of the closed-open interval
            if mid < extra.end:
                assert s.covers(mid)
