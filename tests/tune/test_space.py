"""The autotune search space: validated axes, deterministic sampling."""

import numpy as np
import pytest

from repro.errors import ExperimentError, ReproError
from repro.tune import Candidate, TuneSpace


class TestCandidate:
    def test_label_spells_every_axis(self):
        c = Candidate(
            policy="StartParNotExceed",
            flavor="medium",
            reduction="chains",
            recovery="retry",
            purchase="spot_calm",
        )
        assert c.label == "StartParNotExceed-m/chains/retry@spot_calm"
        assert c.spec().label == "StartParNotExceed-m"

    def test_unknown_names_suggest(self):
        with pytest.raises(ExperimentError, match="StartParNotExceed"):
            Candidate(
                policy="StartParNotExceeed",
                flavor="small",
                reduction="none",
                recovery="retry",
                purchase="on_demand",
            )
        with pytest.raises(ExperimentError, match="chains"):
            TuneSpace(reductions=("chanis",))
        with pytest.raises(ExperimentError, match="spot_calm"):
            TuneSpace(purchases=("spot_clam",))
        with pytest.raises(ReproError, match="resubmit"):
            TuneSpace(recoveries=("resubmti",))

    def test_reduce_chains_shrinks_sequential_dag(self):
        import repro.api as api

        c = Candidate(
            policy="OneVMperTask",
            flavor="small",
            reduction="chains",
            recovery="retry",
            purchase="on_demand",
        )
        wf = api.sequential()
        assert len(c.reduce(wf).tasks) < len(wf.tasks)


class TestTuneSpace:
    def test_default_space_covers_the_full_grid(self):
        space = TuneSpace()
        assert space.size == len(space.all_candidates())
        # 5 policies x 3 flavors x 2 reductions x 3 recoveries x 4 purchases
        assert space.size == 360

    def test_sample_is_seed_deterministic_without_replacement(self):
        space = TuneSpace()
        a = space.sample(np.random.default_rng(9), 20)
        b = space.sample(np.random.default_rng(9), 20)
        assert a == b
        assert len(set(a)) == 20
        assert space.sample(np.random.default_rng(10), 20) != a

    def test_sample_caps_at_space_size(self):
        space = TuneSpace(
            policies=("OneVMperTask",),
            flavors=("small",),
            reductions=("none",),
            recoveries=("retry",),
        )
        assert len(space.sample(np.random.default_rng(0), 99)) == space.size

    def test_json_round_trip_and_unknown_axis(self):
        space = TuneSpace(policies=("AllParExceed",), flavors=("large", "small"))
        assert TuneSpace.from_json(space.to_json()) == space
        with pytest.raises(ExperimentError, match="policies"):
            TuneSpace.from_json({"polices": ["AllParExceed"]})
