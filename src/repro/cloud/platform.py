"""The cloud platform facade bundling catalog, regions, billing and
network — the single object schedulers and the simulator consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.cloud.billing import BillingModel
from repro.cloud.instance import INSTANCE_TYPES, InstanceType, instance_type
from repro.cloud.network import NetworkModel
from repro.cloud.region import DEFAULT_REGION, EC2_REGIONS, Region
from repro.errors import PlatformError
from repro.workflows.task import Task


@dataclass(frozen=True)
class CloudPlatform:
    """An immutable description of the simulated IaaS provider.

    The default instance is the paper's platform: the EC2 catalog and
    Table II regions, BTU = 3600 s, store-and-forward network, boot time
    zero (static scheduling + pre-booting).
    """

    regions: Mapping[str, Region] = field(default_factory=lambda: dict(EC2_REGIONS))
    default_region: Region = DEFAULT_REGION
    billing: BillingModel = field(default_factory=BillingModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    catalog: Mapping[str, InstanceType] = field(
        default_factory=lambda: dict(INSTANCE_TYPES)
    )
    #: VM boot duration. The paper ignores boot via a pre-booting
    #: strategy (static scheduling); set ``prebooted=False`` to model
    #: cold starts instead, where a fresh VM's first task is delayed by
    #: ``boot_seconds`` after it becomes ready (EC2 boots are < 2 min
    #: and independent of fleet size, per Mao & Humphrey).
    boot_seconds: float = 0.0
    prebooted: bool = True
    #: ambient price environment (a :class:`repro.market.spot.Market`,
    #: typed loosely to keep the cloud layer free of upward imports).
    #: ``None`` is the paper's fixed-price on-demand market.  Executors
    #: pick an ambient market up automatically (synthesizing a
    #: ``FaultPlan(market=...)``); a market inside an explicit fault
    #: plan takes precedence.
    market: "object | None" = None

    def __post_init__(self) -> None:
        if self.default_region.name not in self.regions:
            raise PlatformError(
                f"default region {self.default_region.name!r} not in regions"
            )
        if self.boot_seconds < 0:
            raise PlatformError("boot_seconds must be >= 0")
        for r in self.regions.values():
            for itype in self.catalog.values():
                r.price(itype)  # raises if a price is missing
        # Memoized runtime/transfer lookups.  Schedulers call these
        # O(V·E) times per run with a handful of distinct keys, so the
        # caches stay small while removing the dispatch overhead from
        # the hot path.  The dataclass is frozen, hence the
        # object.__setattr__; both inputs and the platform itself are
        # immutable, so entries never go stale.  Keys identify instance
        # types by *name* — the catalog convention (names are unique
        # identifiers, see ``itype``) — because CPython caches string
        # hashes while hashing the frozen dataclass re-hashes all five
        # fields per call, which profiles slower than the lookups the
        # cache is meant to save.
        object.__setattr__(self, "_runtime_cache", {})
        object.__setattr__(self, "_transfer_cache", {})

    @classmethod
    def ec2(cls, **overrides) -> "CloudPlatform":
        """The paper's EC2 platform; keyword overrides for variants."""
        return cls(**overrides)

    def with_market(self, market: "object | None") -> "CloudPlatform":
        """This platform under another price environment (or none)."""
        import dataclasses

        return dataclasses.replace(self, market=market)

    # ------------------------------------------------------------------
    @property
    def btu_seconds(self) -> float:
        return self.billing.btu_seconds

    def itype(self, name: str) -> InstanceType:
        key = name.lower()
        if key in self.catalog:
            return self.catalog[key]
        return instance_type(name)

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise PlatformError(f"unknown region {name!r}") from None

    def runtime(self, task: Task, itype: InstanceType) -> float:
        """Execution time of *task* on *itype* (reference work / speedup).

        Memoized on ``(work, itype)``; see ``__post_init__``.
        """
        cache: Dict[Tuple[float, str], float] = self._runtime_cache
        key = (task.work, itype.name)
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = itype.runtime(task.work)
            return value

    def transfer_time(
        self,
        size_gb: float,
        src: InstanceType,
        dst: InstanceType,
        *,
        same_vm: bool = False,
        src_region: Region | None = None,
        dst_region: Region | None = None,
    ) -> float:
        """Data-shipping time between two placements on this platform.

        Memoized on ``(size, flavors, locality)``; see ``__post_init__``.
        """
        src_region = src_region or self.default_region
        dst_region = dst_region or self.default_region
        same_region = src_region.name == dst_region.name
        cache = self._transfer_cache
        key = (size_gb, src.name, dst.name, same_vm, same_region)
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = self.network.transfer_time(
                size_gb,
                src,
                dst,
                same_vm=same_vm,
                same_region=same_region,
            )
            return value

    def cheapest_region(self, itype: InstanceType | None = None) -> Region:
        """Region with the lowest price for *itype* (small by default)."""
        key = (itype or self.itype("small")).name
        return min(self.regions.values(), key=lambda r: (r.price(key), r.name))
