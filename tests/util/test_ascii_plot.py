"""Tests for the ASCII scatter/bar renderers."""

from repro.util.ascii_plot import ascii_bars, ascii_scatter


class TestAsciiScatter:
    def test_legend_lists_every_series(self):
        pts = {"alpha": (1.0, 2.0), "beta": (-1.0, -2.0)}
        out = ascii_scatter(pts)
        assert "a = alpha" in out
        assert "b = beta" in out

    def test_origin_axes_drawn(self):
        out = ascii_scatter({"p": (5.0, 5.0)}, mark_origin=True)
        assert "+" in out
        assert "|" in out and "-" in out

    def test_no_origin(self):
        out = ascii_scatter({"p": (5.0, 5.0)}, mark_origin=False)
        grid = "\n".join(out.splitlines()[1:-2])  # drop header and legend
        assert "+" not in grid and "|" not in grid

    def test_empty(self):
        assert ascii_scatter({}) == "(no points)"

    def test_identical_points_dont_crash(self):
        out = ascii_scatter({"a": (1.0, 1.0), "b": (1.0, 1.0)})
        assert "b = b" in out

    def test_coordinates_in_legend(self):
        out = ascii_scatter({"x": (12.34, -5.6)})
        assert "(+12.3, -5.6)" in out

    def test_grid_dimensions(self):
        out = ascii_scatter({"a": (0.0, 0.0)}, width=40, height=10)
        grid_lines = out.splitlines()[1:11]
        assert len(grid_lines) == 10
        assert all(len(l) <= 40 for l in grid_lines)


class TestAsciiBars:
    def test_labels_and_values(self):
        out = ascii_bars({"one": 10.0, "two": 20.0}, unit="s")
        assert "one" in out and "two" in out
        assert "10s" in out and "20s" in out

    def test_longest_bar_is_max(self):
        out = ascii_bars({"small": 1.0, "big": 100.0}, width=50)
        lines = {l.split()[0]: l.count("#") for l in out.splitlines()}
        assert lines["big"] == 50
        assert lines["small"] <= 1

    def test_all_zero(self):
        out = ascii_bars({"z": 0.0})
        assert "#" not in out

    def test_empty(self):
        assert ascii_bars({}) == "(no bars)"
