"""Compatibility machinery for renamed keyword arguments.

Public entry-point kwargs drifted across the parallel-sweep, fault and
scaling releases (``n_jobs`` vs ``jobs``, ``pool`` vs ``backend``,
``rng_seed`` vs ``seed``, ``error_mode`` vs ``on_error``, ``faults`` vs
``fault_plan``, ``recovery_policy`` vs ``recovery``).  The new names
are canonical everywhere.

Two decorators cover an alias's life cycle:

* :func:`renamed_kwargs` — the deprecation stage: the old spelling
  still works, forwards to the new name, and emits a
  :class:`DeprecationWarning`.  Kept for the next rename; no current
  entry point uses it.
* :func:`removed_kwargs` — the retirement stage: the old spelling
  raises :class:`TypeError` with a did-you-mean hint naming the
  replacement.  The v1.2 aliases in :data:`LEGACY_KWARGS` reached this
  stage in 1.7.0, one deprecation cycle after they started warning.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: the legacy -> canonical spellings unified across the experiment and
#: simulator entry points, retired in 1.7.0 (see
#: ``tests/test_deprecations.py``)
LEGACY_KWARGS = {
    "n_jobs": "jobs",
    "pool": "backend",
    "rng_seed": "seed",
    "error_mode": "on_error",
    "faults": "fault_plan",
    "recovery_policy": "recovery",
}


def renamed_kwargs(**aliases: str) -> Callable[[F], F]:
    """Decorator mapping deprecated kwarg names onto their replacements.

    ``@renamed_kwargs(n_jobs="jobs")`` makes ``fn(n_jobs=4)`` behave
    exactly like ``fn(jobs=4)`` plus a :class:`DeprecationWarning`;
    passing both spellings is a :class:`TypeError`.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for old, new in aliases.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got both {old!r} (deprecated) "
                            f"and its replacement {new!r}"
                        )
                    warnings.warn(
                        f"{fn.__name__}({old}=...) is deprecated; "
                        f"use {new}= instead",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def removed_kwargs(**aliases: str) -> Callable[[F], F]:
    """Decorator rejecting retired kwarg names with a did-you-mean hint.

    ``@removed_kwargs(n_jobs="jobs")`` makes ``fn(n_jobs=4)`` raise
    ``TypeError: fn() no longer accepts 'n_jobs' ... — did you mean
    jobs=?`` instead of the bare "unexpected keyword argument" python
    would produce, so callers upgrading across the deprecation cycle
    get pointed straight at the new spelling.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for old, new in aliases.items():
                if old in kwargs:
                    raise TypeError(
                        f"{fn.__name__}() no longer accepts {old!r} "
                        f"(removed in 1.7.0) — did you mean {new}=?"
                    )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
