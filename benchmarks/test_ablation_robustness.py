"""Ablation: static-schedule robustness under runtime noise.

The paper schedules statically with exact runtime estimates (Sect.
IV-A).  This bench perturbs actual runtimes by 20% log-normal noise and
replays each policy's schedule through the DES: policies that serialize
many tasks per VM accumulate delay along the shared machine, while
OneVMperTask only propagates delay along dependency paths.
"""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.experiments.scenarios import scenario
from repro.simulator.perturb import robustness_study
from repro.util.tables import format_table
from repro.workflows.generators import montage

POLICIES = {
    "OneVMperTask": lambda: HeftScheduler("OneVMperTask"),
    "StartParNotExceed": lambda: HeftScheduler("StartParNotExceed"),
    "StartParExceed": lambda: HeftScheduler("StartParExceed"),
    "AllParExceed": lambda: AllParScheduler(exceed=True),
}


def _study(platform):
    wf = scenario("pareto", platform).apply(montage(), SWEEP_SEED)
    out = {}
    for name, factory in POLICIES.items():
        sched = factory().schedule(wf, platform)
        report = robustness_study(sched, rel_std=0.2, trials=20, seed=42)
        out[name] = report
    return out


def test_robustness_ablation(benchmark, platform, artifact_dir):
    reports = benchmark(_study, platform)

    for name, report in reports.items():
        # realized makespans always respect feasibility; with mean-1
        # noise the expected stretch is >= 1 (max over branches)
        assert report.mean_stretch > 0.95, name
        assert report.worst_stretch >= report.mean_stretch

    # parallel provisioning absorbs noise at least as well as the fully
    # serialized extreme (per-VM queues accumulate every delay)
    assert (
        reports["OneVMperTask"].mean_stretch
        <= reports["StartParExceed"].mean_stretch + 0.05
    )

    save_artifact(
        artifact_dir,
        "ablation_robustness.txt",
        format_table(
            ["policy", "planned s", "mean stretch", "p95 stretch", "worst stretch"],
            [
                (
                    name,
                    r.planned_makespan,
                    r.mean_stretch,
                    r.p95_stretch,
                    r.worst_stretch,
                )
                for name, r in reports.items()
            ],
            float_fmt=".3f",
            title="Makespan stretch under 20% runtime noise (20 trials)",
        ),
    )
