"""Tests for multi-seed replication statistics."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.replication import (
    ReplicatedMetric,
    _bootstrap_ci,
    render_replication,
    replicate,
)


@pytest.fixture(scope="module")
def results():
    platform = CloudPlatform.ec2()
    wfs = paper_workflows()
    return replicate(
        seeds=range(5),
        platform=platform,
        workflows={"montage": wfs["montage"]},
        strategies=[
            strategy("OneVMperTask-s"),
            strategy("AllParExceed-s"),
            strategy("OneVMperTask-m"),
        ],
    )


class TestReplicate:
    def test_keys_and_sample_counts(self, results):
        assert set(results) == {
            ("montage", "OneVMperTask-s"),
            ("montage", "AllParExceed-s"),
            ("montage", "OneVMperTask-m"),
        }
        assert all(len(m.gains) == 5 for m in results.values())

    def test_reference_always_at_origin(self, results):
        ref = results[("montage", "OneVMperTask-s")]
        assert ref.mean_gain == 0.0 and ref.mean_loss == 0.0
        assert ref.gain_ci() == (0.0, 0.0)

    def test_allpar_small_always_saves(self, results):
        """The paper's claim, now across 5 independent draws."""
        m = results[("montage", "AllParExceed-s")]
        assert m.always_saves
        lo, hi = m.loss_ci()
        assert hi <= 1e-6

    def test_onevm_medium_gain_is_speedup_identity(self, results):
        """Gain = 1 - 1/1.6 in every replicate: the CI collapses."""
        m = results[("montage", "OneVMperTask-m")]
        lo, hi = m.gain_ci()
        assert lo == pytest.approx(37.5, abs=0.1)
        assert hi == pytest.approx(37.5, abs=0.1)
        assert m.always_gains

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            replicate(seeds=[])


class TestBootstrap:
    def test_single_value_degenerate(self):
        assert _bootstrap_ci([3.0], 0.95, 100, 0) == (3.0, 3.0)

    def test_ci_brackets_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = _bootstrap_ci(values, 0.95, 2000, 0)
        assert lo <= 3.0 <= hi
        assert lo >= 1.0 and hi <= 5.0

    def test_wider_level_wider_interval(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        lo99, hi99 = _bootstrap_ci(values, 0.99, 4000, 1)
        lo80, hi80 = _bootstrap_ci(values, 0.80, 4000, 1)
        assert hi99 - lo99 >= hi80 - lo80

    def test_invalid_level(self):
        with pytest.raises(ExperimentError):
            _bootstrap_ci([1.0, 2.0], 1.5, 100, 0)


class TestRender:
    def test_table(self, results):
        out = render_replication(results)
        assert "95% CI" in out
        assert "montage/AllParExceed-s" in out
