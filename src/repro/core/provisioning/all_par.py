"""AllPar[Not]Exceed: full task-level parallelism (paper Sect. III-A).

Every *parallel* task — a task whose DAG level holds more than one task
— runs on its own VM: an existing VM not already claimed by a task of
the same level when one is free, a new rental otherwise.  *Sequential*
tasks (singleton levels) run on the VM of their largest predecessor,
keeping chains on one machine and costs down.  The *NotExceed* variant
additionally rents a new VM whenever the candidate's remaining BTU
cannot absorb the task; *Exceed* never rents for that reason.

Per the paper, renting one single-core VM per parallel task instead of a
multi-core VM is cost-neutral under EC2's cost-per-core pricing; only
global idle time differs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy, register_policy


class _AllParBase(ProvisioningPolicy):
    exceed_btu: bool = True

    # ------------------------------------------------------------------
    def _free_vms_for_level(self, task_id: str, builder: ScheduleBuilder) -> List[BuilderVM]:
        """Existing VMs not already hosting a task of *task_id*'s level
        and still alive (idle VMs die at their BTU boundary) when the
        task could start on them."""
        lvl = builder.level_of(task_id)
        return [
            vm
            for vm in builder.vms
            if not vm.empty
            and all(builder.level_of(t) != lvl for t in vm.order)
            and builder.is_reusable(task_id, vm)
        ]

    def _pick(self, task_id: str, builder: ScheduleBuilder, candidates: List[BuilderVM]) -> Optional[BuilderVM]:
        """Choose among *candidates*: the largest predecessor's VM when it
        is one of them, else the candidate with the largest accumulated
        execution time (ties to the oldest VM)."""
        if not candidates:
            return None
        pred_vm = builder.vm_of_largest_predecessor(task_id)
        if pred_vm is not None and pred_vm in candidates:
            return pred_vm
        return max(candidates, key=lambda vm: (vm.busy_seconds, -vm.id))

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        if builder.level_size(task_id) > 1:
            candidates = self._free_vms_for_level(task_id, builder)
        else:
            pred_vm = builder.vm_of_largest_predecessor(task_id)
            candidates = (
                [pred_vm]
                if pred_vm is not None and builder.is_reusable(task_id, pred_vm)
                else []
            )
        if not self.exceed_btu:
            candidates = [
                vm for vm in candidates if builder.fits_in_btu(task_id, vm)
            ]
        chosen = self._pick(task_id, builder, candidates)
        return chosen if chosen is not None else builder.new_vm()


@register_policy
class AllParNotExceed(_AllParBase):
    name = "AllParNotExceed"
    exceed_btu = False


@register_policy
class AllParExceed(_AllParBase):
    name = "AllParExceed"
    exceed_btu = True
