"""Tests for the online (dynamic) scheduling mode."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.errors import SchedulingError
from repro.simulator.online import OnlineCloudExecutor, run_online
from repro.simulator.perturb import lognormal_jitter
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import cstem, mapreduce, montage, sequential
from tests.conftest import assert_schedule_invariants


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestBasics:
    def test_unsupported_policy(self, platform):
        with pytest.raises(SchedulingError):
            OnlineCloudExecutor(sequential(3), platform, policy="Magic")

    @pytest.mark.parametrize(
        "policy",
        [
            "OneVMperTask",
            "StartParNotExceed",
            "StartParExceed",
            "AllParNotExceed",
            "AllParExceed",
        ],
    )
    def test_all_policies_complete(self, platform, paper_workflow, policy):
        result = run_online(paper_workflow, platform, policy=policy)
        assert set(result.task_finish) == set(paper_workflow.task_ids)
        assert result.makespan == max(result.task_finish.values())
        assert result.rent_cost > 0 and result.idle_seconds >= 0
        assert_schedule_invariants(result, paper_workflow)

    def test_dependencies_respected(self, platform):
        wf = montage()
        result = run_online(wf, platform, policy="AllParExceed")
        for u, v, _ in wf.edges():
            assert result.task_start[v] >= result.task_finish[u] - 1e-6

    def test_vm_serialization(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=2)
        result = run_online(wf, platform, policy="StartParExceed")
        assert_schedule_invariants(result, wf)
        by_vm = {}
        for tid, vm in result.task_vm.items():
            by_vm.setdefault(vm, []).append(tid)
        for tasks in by_vm.values():
            spans = sorted(
                (result.task_start[t], result.task_finish[t]) for t in tasks
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-6


class TestPolicySemantics:
    def test_onevm_rents_per_task(self, platform):
        result = run_online(montage(), platform, policy="OneVMperTask")
        assert result.vm_count == 24

    def test_startpar_exceed_single_entry_one_vm(self, platform):
        """CSTEM online under StartParExceed also serializes onto the
        entry VM (the VM stays busy, hence alive)."""
        result = run_online(cstem(), platform, policy="StartParExceed")
        assert result.vm_count == 1

    def test_allpar_parallel_tasks_on_distinct_vms(self, platform):
        wf = mapreduce(mappers=5, reducers=2)
        result = run_online(wf, platform, policy="AllParExceed")
        for level in wf.levels():
            vms = [result.task_vm[t] for t in level]
            assert len(set(vms)) == len(vms)

    def test_dead_vms_not_reused(self, platform):
        """Any reused VM must be caught before its BTU horizon."""
        import math

        wf = apply_model(montage(), ParetoModel(), seed=3)
        result = run_online(wf, platform, policy="AllParExceed")
        by_vm = {}
        for tid, vm in result.task_vm.items():
            by_vm.setdefault(vm, []).append(tid)
        for tasks in by_vm.values():
            spans = sorted((result.task_start[t], result.task_finish[t]) for t in tasks)
            start0 = spans[0][0]
            for i in range(1, len(spans)):
                uptime = spans[i - 1][1] - start0
                horizon = start0 + math.ceil(uptime / 3600.0 - 1e-9) * 3600.0
                # the placement decision happened at ready time, which
                # precedes the (transfer-delayed) start by at most the
                # staging transfer; allow that slack
                assert spans[i][0] <= horizon + 60.0


class TestOnlineToSchedule:
    def test_round_trip_analytics(self, platform):
        from repro.core.explain import explain
        from repro.simulator.online import online_to_schedule

        wf = apply_model(montage(), ParetoModel(), seed=4)
        result = run_online(wf, platform, policy="StartParNotExceed")
        sched = online_to_schedule(result, wf, platform)
        assert sched.makespan == pytest.approx(result.makespan)
        assert sched.rent_cost == pytest.approx(result.rent_cost)
        assert sched.total_idle_seconds == pytest.approx(result.idle_seconds)
        # full Schedule analytics now apply
        exp = explain(sched)
        assert exp.total_cost == pytest.approx(result.rent_cost)

    def test_noisy_run_rejected(self, platform):
        from repro.errors import SimulationError
        from repro.simulator.online import online_to_schedule

        wf = apply_model(montage(), ParetoModel(), seed=4)
        result = run_online(
            wf, platform, policy="OneVMperTask",
            runtime_fn=lognormal_jitter(0.3, seed=1),
        )
        with pytest.raises(SimulationError, match="noisy"):
            online_to_schedule(result, wf, platform)


class TestColdStartOnline:
    def test_boot_delays_first_task(self):
        cold = CloudPlatform.ec2(boot_seconds=120.0, prebooted=False)
        result = run_online(sequential(3), cold, policy="StartParExceed")
        assert result.task_start["step_000"] == pytest.approx(120.0)
        # reused VM: later tasks don't reboot
        assert result.task_start["step_001"] == pytest.approx(
            result.task_finish["step_000"]
        )

    def test_every_rental_pays_boot(self):
        cold = CloudPlatform.ec2(boot_seconds=120.0, prebooted=False)
        warm = CloudPlatform.ec2()
        c = run_online(montage(), cold, policy="OneVMperTask")
        w = run_online(montage(), warm, policy="OneVMperTask")
        assert c.makespan > w.makespan
        assert c.vm_count == w.vm_count == 24

    def test_prebooted_ignores_boot(self):
        warm = CloudPlatform.ec2(boot_seconds=120.0, prebooted=True)
        result = run_online(sequential(2), warm, policy="OneVMperTask")
        assert result.task_start["step_000"] == 0.0


class TestStaticVsOnline:
    def test_onevm_matches_static_modulo_staging(self, platform):
        """OneVMperTask is placement-order independent: online equals the
        static plan up to the online mode's serialized input staging."""
        wf = apply_model(montage(), ParetoModel(), seed=5)
        static = HeftScheduler("OneVMperTask").schedule(wf, platform)
        online = run_online(wf, platform, policy="OneVMperTask")
        assert online.makespan >= static.makespan - 1e-6
        assert online.makespan <= static.makespan * 1.05
        assert online.rent_cost == pytest.approx(static.rent_cost, rel=0.05)

    def test_online_reacts_to_noise(self, platform):
        """Under runtime noise online placements may diverge run to run,
        but execution always completes feasibly."""
        wf = apply_model(montage(), ParetoModel(), seed=6)
        result = run_online(
            wf,
            platform,
            policy="StartParNotExceed",
            runtime_fn=lognormal_jitter(0.3, seed=0),
        )
        for u, v, _ in wf.edges():
            assert result.task_start[v] >= result.task_finish[u] - 1e-6

    def test_noise_free_cost_comparable_to_static(self, platform):
        wf = apply_model(mapreduce(), ParetoModel(), seed=7)
        static = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        online = run_online(wf, platform, policy="StartParNotExceed")
        # same policy, same rules: costs in the same ballpark
        assert online.rent_cost <= static.total_cost * 1.5
