"""Behavioural tests for the five provisioning policies (paper
Sect. III-A), exercised through the schedulers that drive them."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.provisioning.base import (
    PROVISIONING_POLICIES,
    provisioning_policy,
)
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow
from repro.workflows.generators import mapreduce, montage, sequential
from repro.workflows.task import Task


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestRegistry:
    def test_all_five_registered(self):
        assert set(PROVISIONING_POLICIES) == {
            "OneVMperTask",
            "StartParNotExceed",
            "StartParExceed",
            "AllParNotExceed",
            "AllParExceed",
        }

    def test_lookup_case_insensitive(self):
        assert provisioning_policy("onevmpertask").name == "OneVMperTask"

    def test_unknown_policy(self):
        with pytest.raises(SchedulingError):
            provisioning_policy("MagicPolicy")


class TestOneVMperTask:
    def test_one_vm_per_task(self, platform, paper_workflow):
        sched = HeftScheduler("OneVMperTask").schedule(paper_workflow, platform)
        assert sched.vm_count == len(paper_workflow)
        assert all(len(vm.placements) == 1 for vm in sched.vms)

    def test_largest_idle_time(self, platform):
        """OneVMperTask produces the largest idle time (paper III-A)."""
        wf = montage()
        idle = {}
        for pol in ("OneVMperTask", "StartParNotExceed", "StartParExceed"):
            idle[pol] = HeftScheduler(pol).schedule(wf, platform).total_idle_seconds
        assert idle["OneVMperTask"] >= idle["StartParNotExceed"]
        assert idle["OneVMperTask"] >= idle["StartParExceed"]


class TestStartPar:
    def test_entry_tasks_get_own_vms(self, platform):
        wf = montage()  # 6 entry projections
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        entry_vms = {sched.vm_of(t).id for t in wf.entry_tasks()}
        assert len(entry_vms) == 6

    def test_exceed_never_rents_beyond_entries(self, platform, paper_workflow):
        sched = HeftScheduler("StartParExceed").schedule(paper_workflow, platform)
        assert sched.vm_count == len(paper_workflow.entry_tasks())

    def test_single_entry_serializes_everything(self, platform):
        """The paper's CSTEM remark: one entry task => one VM."""
        from repro.workflows.generators import cstem

        sched = HeftScheduler("StartParExceed").schedule(cstem(), platform)
        assert sched.vm_count == 1

    def test_notexceed_rents_on_btu_overrun(self, platform):
        """Tasks of 3000 s cannot share a small VM's BTU."""
        wf = sequential(3).with_works({f"step_{i:03d}": 3000.0 for i in range(3)})
        ne = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        ex = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert ne.vm_count == 3  # each task overruns the remaining BTU
        assert ex.vm_count == 1

    def test_notexceed_reuses_when_fitting(self, platform):
        wf = sequential(3).with_works({f"step_{i:03d}": 1000.0 for i in range(3)})
        sched = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        assert sched.vm_count == 1  # 3000 s fit one BTU

    def test_notexceed_cheaper_or_equal_but_more_vms(self, platform):
        """StartParNotExceed allocates more VMs / larger idle than
        StartParExceed (paper III-A)."""
        wf = montage()
        ne = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        ex = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert ne.vm_count >= ex.vm_count
        assert ne.total_idle_seconds >= ex.total_idle_seconds
        # "slightly smaller makespan" — up to transfer-latency noise
        assert ne.makespan <= ex.makespan * 1.001

    def test_try_all_vms_scans_before_renting(self, platform):
        """The optional NotExceed fallback reuses any fitting VM instead
        of renting when only the busiest one is full."""
        from repro.core.provisioning.start_par import StartParNotExceed
        from repro.core.allocation.heft import HeftScheduler as _H

        wf = Workflow("w")
        wf.add_task(Task("e1", 3000.0))  # busiest; child would overrun it
        wf.add_task(Task("e2", 1000.0))  # room and an early start
        wf.add_task(Task("child", 800.0))
        wf.add_dependency("e2", "child")
        wf.validate()
        literal = _H(StartParNotExceed(try_all_vms=False)).schedule(wf, platform)
        scanning = _H(StartParNotExceed(try_all_vms=True)).schedule(wf, platform)
        # literal rule targets the busiest VM (e1): start 3000 + 800
        # crosses its BTU -> rent a third VM
        assert literal.vm_count == 3
        # scanning rule falls through to e2's VM, where it fits
        assert scanning.vm_count == 2
        assert scanning.vm_of("child") is scanning.vm_of("e2")

    def test_packs_onto_busiest_vm(self, platform):
        """Non-entry tasks land on the VM with the largest execution time."""
        wf = Workflow("w")
        wf.add_task(Task("e1", 2000.0))
        wf.add_task(Task("e2", 500.0))
        wf.add_task(Task("child", 300.0))
        wf.add_dependency("e1", "child")
        wf.add_dependency("e2", "child")
        wf.validate()
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert sched.vm_of("child") is sched.vm_of("e1")


class TestAllPar:
    def test_parallel_tasks_on_distinct_vms(self, platform):
        wf = mapreduce(mappers=5, reducers=2)
        for exceed in (True, False):
            sched = AllParScheduler(exceed=exceed).schedule(wf, platform)
            for level in wf.levels():
                vms = [sched.vm_of(t).id for t in level]
                assert len(set(vms)) == len(vms), f"level {level} shares a VM"

    def test_sequential_task_follows_largest_predecessor(self, platform):
        wf = Workflow("w")
        wf.add_task(Task("a", 100.0))
        wf.add_task(Task("b", 2000.0))
        wf.add_task(Task("c", 500.0))
        wf.add_task(Task("join", 300.0))
        wf.add_dependency("a", "b")
        wf.add_dependency("a", "c")
        wf.add_dependency("b", "join")
        wf.add_dependency("c", "join")
        wf.validate()
        sched = AllParScheduler(exceed=True).schedule(wf, platform)
        assert sched.vm_of("join") is sched.vm_of("b")

    def test_reuses_idle_vms_across_levels(self, platform):
        """Second parallel stage reuses the first stage's VMs."""
        from repro.workflows.generators import fork_join

        wf = fork_join(width=4, stages=2)
        sched = AllParScheduler(exceed=True).schedule(wf, platform)
        assert sched.vm_count == 4  # 4 stage VMs, joins ride along

    def test_exceed_vm_count_bounded(self, platform, paper_workflow):
        """Reuse keeps the fleet near the widest level; extra rentals only
        appear when earlier VMs expired at their BTU boundary (CSTEM's
        final tasks), and can never exceed one VM per task."""
        sched = AllParScheduler(exceed=True).schedule(paper_workflow, platform)
        assert sched.vm_count < len(paper_workflow)
        if paper_workflow.name in ("mapreduce", "sequential", "montage"):
            assert sched.vm_count <= paper_workflow.max_parallelism()

    def test_notexceed_rents_on_overrun(self, platform):
        """A second long task cannot reuse a nearly-full VM."""
        wf = Workflow("w")
        wf.add_task(Task("p1", 3000.0))
        wf.add_task(Task("p2", 3000.0))
        wf.add_task(Task("q1", 3000.0))
        wf.add_task(Task("q2", 3000.0))
        wf.add_dependency("p1", "q1")
        wf.add_dependency("p1", "q2")
        wf.add_dependency("p2", "q1")
        wf.add_dependency("p2", "q2")
        wf.validate()
        ne = AllParScheduler(exceed=False).schedule(wf, platform)
        ex = AllParScheduler(exceed=True).schedule(wf, platform)
        assert ne.vm_count == 4  # q's overrun p's BTUs -> fresh VMs
        assert ex.vm_count == 2

    def test_reduces_makespan_vs_startpar_on_parallel_wf(self, platform):
        """AllParExceed exploits task parallelism (paper III-A)."""
        wf = mapreduce()
        allpar = AllParScheduler(exceed=True).schedule(wf, platform)
        startpar = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert allpar.makespan < startpar.makespan
