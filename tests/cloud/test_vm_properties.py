"""Hypothesis properties of VM accounting under arbitrary placements."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cloud.billing import BillingModel
from repro.cloud.instance import SMALL
from repro.cloud.region import EC2_REGIONS
from repro.cloud.vm import VM

US = EC2_REGIONS["us-east-virginia"]
BILLING = BillingModel()

# disjoint placements: (start, duration) pairs laid out sequentially
_segments = st.lists(
    st.tuples(st.floats(0.0, 500.0), st.floats(1.0, 5000.0)),
    min_size=1,
    max_size=8,
)


def _vm_from_segments(segments):
    vm = VM(id=0, itype=SMALL, region=US)
    t = 0.0
    for gap, duration in segments:
        t += gap
        vm.place(f"t{len(vm.placements)}", t, duration)
        t += duration
    return vm


@settings(max_examples=100, deadline=None)
@given(_segments)
def test_paid_at_least_busy(segments):
    vm = _vm_from_segments(segments)
    assert vm.paid_seconds(BILLING) >= vm.busy_seconds - 1e-6
    assert vm.idle_seconds(BILLING) >= -1e-6


@settings(max_examples=100, deadline=None)
@given(_segments)
def test_uptime_decomposition(segments):
    """uptime = busy + internal gaps; paid = uptime rounded up."""
    vm = _vm_from_segments(segments)
    gaps = sum(g.length for g in vm.busy_intervals().gaps())
    assert vm.uptime_seconds == pytest.approx(vm.busy_seconds + gaps)
    assert vm.paid_seconds(BILLING) == pytest.approx(
        BILLING.paid_seconds(vm.uptime_seconds)
    )


@settings(max_examples=100, deadline=None)
@given(_segments)
def test_cost_proportional_to_btus(segments):
    vm = _vm_from_segments(segments)
    btus = BILLING.btus(vm.uptime_seconds)
    assert vm.cost(BILLING) == pytest.approx(btus * US.price(SMALL))
    assert btus >= 1


@settings(max_examples=100, deadline=None)
@given(_segments, st.floats(1.0, 4000.0))
def test_extending_uptime_never_lowers_cost(segments, extra):
    vm = _vm_from_segments(segments)
    base_cost = vm.cost(BILLING)
    vm.place("tail", vm.rent_end + 1.0, extra)
    assert vm.cost(BILLING) >= base_cost - 1e-12


@settings(max_examples=50, deadline=None)
@given(_segments)
def test_placements_sorted_and_disjoint(segments):
    vm = _vm_from_segments(segments)
    for a, b in zip(vm.placements, vm.placements[1:]):
        assert a.end <= b.start + 1e-12
