"""Tests for the strategy/workflow configuration (Fig. 4 legend)."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import paper_strategies, paper_workflows, strategy


class TestPaperStrategies:
    def test_exactly_nineteen(self):
        assert len(paper_strategies()) == 19

    def test_labels_match_figure4_legend(self):
        labels = [s.label for s in paper_strategies()]
        for policy in (
            "StartParNotExceed",
            "StartParExceed",
            "AllParExceed",
            "AllParNotExceed",
            "OneVMperTask",
        ):
            for sfx in ("s", "m", "l"):
                assert f"{policy}-{sfx}" in labels
        for dyn in ("CPA-Eager", "GAIN", "AllPar1LnS", "AllPar1LnSDyn"):
            assert dyn in labels

    def test_labels_unique(self):
        labels = [s.label for s in paper_strategies()]
        assert len(set(labels)) == len(labels)

    def test_dynamic_flags(self):
        by_label = {s.label: s for s in paper_strategies()}
        assert by_label["CPA-Eager"].dynamic
        assert by_label["GAIN"].dynamic
        assert by_label["AllPar1LnSDyn"].dynamic
        assert not by_label["AllPar1LnS"].dynamic
        assert not by_label["OneVMperTask-s"].dynamic

    def test_lookup(self):
        assert strategy("gain").label == "GAIN"
        with pytest.raises(ExperimentError):
            strategy("TurboSchedule")

    def test_specs_run(self, paper_workflow):
        platform = CloudPlatform.ec2()
        spec = strategy("AllParExceed-m")
        sched = spec.run(paper_workflow, platform)
        assert all(vm.itype.name == "medium" for vm in sched.vms)


class TestPaperWorkflows:
    def test_four_shapes(self):
        wfs = paper_workflows()
        assert set(wfs) == {"montage", "cstem", "mapreduce", "sequential"}

    def test_montage_is_24_tasks(self):
        assert len(paper_workflows()["montage"]) == 24
