"""Task-ordering primitives shared by the allocation strategies.

*Priority ranking* is HEFT's upward rank: ``rank(t) = w(t) + max over
successors (c(t, s) + rank(s))``.  Because a parent's rank strictly
exceeds each child's, scheduling in decreasing rank order is always a
valid topological order — a property the test suite checks.

*Level ranking* groups tasks by DAG depth; inside a level the paper's
AllPar strategies order by execution time, longest first.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.workflows.dag import Workflow


def upward_rank(
    workflow: Workflow,
    platform: CloudPlatform,
    itype: InstanceType,
    include_transfers: bool = True,
) -> Dict[str, float]:
    """HEFT upward rank of every task.

    Execution weights are the runtimes on *itype* (the run's uniform
    flavor; on a homogeneous platform the HEFT "mean across processors"
    reduces to exactly this). Edge weights are the store-and-forward
    transfer times between two VMs of that flavor in the default region;
    pass ``include_transfers=False`` for the pure-CPU variant.
    """
    if not workflow.validated:
        workflow.validate()
    from repro.kernels.dispatch import columnar_active, platform_eligible

    if columnar_active(len(workflow)) and platform_eligible(platform, itype):
        # Vectorized level-synchronous sweep — same per-edge additions
        # and ``max`` folds, byte-identical ranks (property-tested).
        from repro.kernels.columnar import get_columnar, upward_rank_values

        vals = upward_rank_values(workflow, platform, itype, include_transfers)
        return dict(zip(get_columnar(workflow).ids, vals.tolist()))
    # Single iterative O(V+E) sweep over the cached reversed-topo order,
    # against the uncopied adjacency/edge maps.  ``max`` over the same
    # operands is grouping-independent, so the ranks are byte-identical
    # to :func:`upward_rank_reference` (property-tested).
    succ_map = workflow.succ_map()
    tasks = workflow._tasks
    runtime = platform.runtime
    transfer = platform.transfer_time
    ranks: Dict[str, float] = {}
    if include_transfers:
        edge_gb = workflow.edge_data_map()
        #: transfer time per edge at the run's uniform flavor, computed
        #: once per edge — the memoized transfer lookup of the kernels
        for tid in reversed(workflow.topological_order()):
            best = 0.0
            for succ in succ_map[tid]:
                cand = transfer(edge_gb[tid, succ], itype, itype) + ranks[succ]
                if cand > best:
                    best = cand
            ranks[tid] = runtime(tasks[tid], itype) + best
    else:
        for tid in reversed(workflow.topological_order()):
            best = 0.0
            for succ in succ_map[tid]:
                if ranks[succ] > best:
                    best = ranks[succ]
            ranks[tid] = runtime(tasks[tid], itype) + best
    return ranks


def upward_rank_reference(
    workflow: Workflow,
    platform: CloudPlatform,
    itype: InstanceType,
    include_transfers: bool = True,
) -> Dict[str, float]:
    """The straightforward :func:`upward_rank`, kept as the oracle for
    the kernel-equivalence property tests (see DESIGN.md §9).

    Goes through the copying public accessors on every visit; identical
    output, none of the indexing.
    """
    if not workflow.validated:
        workflow.validate()
    ranks: Dict[str, float] = {}
    for tid in reversed(workflow.topological_order()):
        w = platform.runtime(workflow.task(tid), itype)
        best = 0.0
        for succ in workflow.successors(tid):
            c = 0.0
            if include_transfers:
                c = platform.transfer_time(
                    workflow.data_gb(tid, succ), itype, itype, same_vm=False
                )
            best = max(best, c + ranks[succ])
        ranks[tid] = w + best
    return ranks


def heft_order(
    workflow: Workflow,
    platform: CloudPlatform,
    itype: InstanceType,
    include_transfers: bool = True,
) -> List[str]:
    """Tasks in decreasing upward rank (ties broken by id)."""
    ranks = upward_rank(workflow, platform, itype, include_transfers)
    return sorted(workflow.task_ids, key=lambda t: (-ranks[t], t))


def level_order(
    workflow: Workflow,
    platform: CloudPlatform,
    itype: InstanceType,
    descending_exec: bool = True,
) -> List[List[str]]:
    """Levels in DAG order; inside each level tasks sorted by execution
    time on *itype* (descending by default, the AllPar1LnS rule)."""
    out: List[List[str]] = []
    for level in workflow.levels():
        key = lambda t: (-platform.runtime(workflow.task(t), itype), t)
        if not descending_exec:
            key = lambda t: (platform.runtime(workflow.task(t), itype), t)
        out.append(sorted(level, key=key))
    return out
