"""OneVMperTask: a fresh VM for every task, "even if there remains
enough idle time on another that could be used by the ready task".

This is the paper's reference policy (with small instances), the
makespan-oriented extreme: maximum parallel capacity, maximum rent cost
and — because every VM pays at least one full BTU — the largest total
idle time.

Already O(1) per placement, so unlike its siblings it needed no index
rewrite; :class:`~repro.core.provisioning.reference.OneVMperTaskReference`
exists only so every policy has a same-shaped equivalence oracle.
"""

from __future__ import annotations

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy, register_policy


@register_policy
class OneVMperTask(ProvisioningPolicy):
    name = "OneVMperTask"

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        if builder.metrics is not None:
            builder.metrics.inc("provision.rent")
        return builder.new_vm()
