"""Tests for the Path Clustering Heuristic scheduler."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.pch import PchScheduler, pch_clusters
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.dag import Workflow
from repro.workflows.generators import montage, random_layered, sequential
from repro.workflows.task import Task


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def small(platform):
    return platform.itype("small")


class TestClusters:
    def test_chain_is_one_cluster(self, platform, small):
        clusters = pch_clusters(sequential(5), platform, small)
        assert len(clusters) == 1
        assert clusters[0] == [f"step_{i:03d}" for i in range(5)]

    def test_clusters_partition_tasks(self, platform, small):
        wf = montage()
        clusters = pch_clusters(wf, platform, small)
        flat = [t for c in clusters for t in c]
        assert sorted(flat) == sorted(wf.task_ids)

    def test_clusters_are_paths(self, platform, small):
        wf = montage()
        for cluster in pch_clusters(wf, platform, small):
            for u, v in zip(cluster, cluster[1:]):
                assert v in wf.successors(u), (u, v)

    def test_first_cluster_follows_critical_priorities(self, platform, small):
        """The head cluster starts from the highest-rank task."""
        from repro.core.allocation.ranking import upward_rank

        wf = apply_model(montage(), ParetoModel(), seed=1)
        ranks = upward_rank(wf, platform, small)
        clusters = pch_clusters(wf, platform, small)
        assert clusters[0][0] == max(wf.task_ids, key=lambda t: (ranks[t], t))

    def test_diamond_clustering(self, platform, small, diamond):
        """A joins its heavier child B and D; C stands alone."""
        clusters = pch_clusters(diamond, platform, small)
        assert clusters[0] == ["A", "B", "D"]
        assert ["C"] in clusters


class TestSchedule:
    def test_one_vm_per_cluster(self, platform, small):
        wf = montage()
        sched = PchScheduler().schedule(wf, platform)
        assert sched.vm_count == len(pch_clusters(wf, platform, small))

    def test_valid_and_replayable(self, platform, paper_workflow):
        sched = PchScheduler().schedule(paper_workflow, platform)
        sched.validate()
        simulate_schedule(sched, check=True)

    def test_random_dags(self, platform):
        for seed in range(6):
            wf = apply_model(
                random_layered(layers=4, seed=seed), ParetoModel(), seed=seed
            )
            sched = PchScheduler().schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)

    def test_clustering_kills_heavy_edge_transfers(self, platform):
        """The defining PCH win: a heavy edge inside a cluster costs no
        transfer time, unlike OneVMperTask."""
        wf = Workflow("w")
        wf.add_task(Task("a", 1000.0))
        wf.add_task(Task("b", 1000.0))
        wf.add_dependency("a", "b", 10.0)  # 80 s on the wire
        wf.validate()
        pch = PchScheduler().schedule(wf, platform)
        spread = HeftScheduler("OneVMperTask").schedule(wf, platform)
        assert pch.vm_of("a") is pch.vm_of("b")
        assert pch.makespan < spread.makespan - 70.0

    def test_sequential_equals_single_vm(self, platform):
        sched = PchScheduler().schedule(sequential(4), platform)
        assert sched.vm_count == 1
        assert sched.makespan == pytest.approx(4000.0)
