"""Future work, executed (III): structural scaling boundaries.

The paper's conclusions come from fixed-size instances (Montage-24
etc.); its future work asks where they hold "in terms of workflow
structure".  This bench scales Montage from 3 to 24 projections under
Pareto runtimes and checks the conclusions are size-stable: AllPar*-s
keeps saving at every size, the reference's cost grows linearly with the
task count, the packing edge stays substantial (and is largest for small
instances, where whole levels share single BTUs), and the AllParExceed
makespan tracks the reference's (parallelism preserved).
"""

import statistics

import pytest

from benchmarks.conftest import save_artifact
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.baseline import reference_schedule
from repro.util.tables import format_table
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import montage

PROJECTIONS = (3, 6, 12, 24)  # tasks: 15, 24, 42, 78
SEEDS = range(4)


def _study(platform):
    rows = []
    for p in PROJECTIONS:
        ref_cost, packed_cost, packed_gainloss, ms_ratio = [], [], [], []
        for seed in SEEDS:
            wf = apply_model(montage(p), ParetoModel(), seed=seed)
            ref = reference_schedule(wf, platform)
            packed = AllParScheduler(exceed=True).schedule(wf, platform)
            spx = HeftScheduler("StartParExceed").schedule(wf, platform)
            ref_cost.append(ref.total_cost)
            packed_cost.append(packed.total_cost)
            packed_gainloss.append(
                (packed.total_cost - ref.total_cost) / ref.total_cost * 100
            )
            ms_ratio.append(packed.makespan / ref.makespan)
        rows.append(
            (
                3 * p + 6,
                statistics.fmean(ref_cost),
                statistics.fmean(packed_cost),
                statistics.fmean(packed_gainloss),
                statistics.fmean(ms_ratio),
            )
        )
    return rows


def test_structural_scaling(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    for tasks, ref_cost, packed_cost, loss, ms_ratio in rows:
        # the saving conclusion is size-stable
        assert loss <= 1e-6, tasks
        # AllParExceed keeps the reference's parallel makespan (within
        # the serialization noise of packed sequential tails)
        assert ms_ratio <= 1.25, tasks

    # reference cost is one small VM (>= 1 BTU) per task: linear growth
    tasks = [r[0] for r in rows]
    ref_costs = [r[1] for r in rows]
    growth_ref = ref_costs[-1] / ref_costs[0]
    growth_tasks = tasks[-1] / tasks[0]
    assert growth_ref == pytest.approx(growth_tasks, rel=0.35)

    # packing keeps a substantial cost edge at every size (the edge is
    # largest for small instances, where whole levels share single BTUs)
    packed_costs = [r[2] for r in rows]
    ratios = [pc / rc for pc, rc in zip(packed_costs, ref_costs)]
    assert all(r < 0.8 for r in ratios), ratios
    assert ratios[0] == min(ratios)

    save_artifact(
        artifact_dir,
        "futurework_scaling.txt",
        format_table(
            ["tasks", "ref cost $", "AllParExceed-s cost $", "loss %", "makespan ratio"],
            rows,
            title="Montage size sweep (Pareto, 4 seeds per size)",
        ),
    )

