"""Amazon EC2 regions and on-demand prices — the paper's Table II
(prices observed October 31st, 2012, USD per BTU-hour, transfer-out per
GB)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.cloud.instance import InstanceType
from repro.errors import PlatformError


@dataclass(frozen=True)
class Region:
    """A cloud region with per-instance-type BTU prices.

    ``prices`` maps instance-type *names* to USD per BTU; ``transfer_out
    _per_gb`` is the egress price applied to data leaving the region.
    """

    name: str
    prices: Mapping[str, float]
    transfer_out_per_gb: float

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("region name must be non-empty")
        if self.transfer_out_per_gb < 0:
            raise PlatformError(f"negative transfer price in {self.name!r}")
        for itype, price in self.prices.items():
            if price < 0:
                raise PlatformError(
                    f"negative price for {itype!r} in {self.name!r}"
                )
        # zero prices are legal: they model an owned private cluster
        # (the hybrid-cloud setting of HCOC in the paper's related work)

    def price(self, itype: InstanceType | str) -> float:
        """USD per BTU for *itype* in this region."""
        key = itype.name if isinstance(itype, InstanceType) else itype
        try:
            return self.prices[key]
        except KeyError:
            raise PlatformError(
                f"region {self.name!r} has no price for instance type {key!r}"
            ) from None


def _ec2(name: str, small: float, transfer: float) -> Region:
    # Table II follows the small x {1, 2, 4, 8} progression exactly, i.e.
    # the EC2 "cost-per-core x cores" formula the paper cites.
    return Region(
        name=name,
        prices={
            "small": small,
            "medium": 2 * small,
            "large": 4 * small,
            "xlarge": 8 * small,
        },
        transfer_out_per_gb=transfer,
    )


#: Table II, verbatim.
EC2_REGIONS: Dict[str, Region] = {
    r.name: r
    for r in (
        _ec2("us-east-virginia", 0.080, 0.12),
        _ec2("us-west-oregon", 0.080, 0.12),
        _ec2("us-west-california", 0.090, 0.12),
        _ec2("eu-dublin", 0.085, 0.12),
        _ec2("asia-singapore", 0.085, 0.19),
        _ec2("asia-tokyo", 0.092, 0.201),
        _ec2("sa-sao-paulo", 0.115, 0.25),
    )
}

#: cheapest region; the homogeneous experiments run entirely inside it
DEFAULT_REGION = EC2_REGIONS["us-east-virginia"]


def private_region(name: str = "private") -> Region:
    """An owned (zero-price) region modelling a private cluster.

    Hybrid-cloud schedulers (HCOC) place work here first and burst to a
    paid public region only when constraints demand it.
    """
    return Region(
        name=name,
        prices={"small": 0.0, "medium": 0.0, "large": 0.0, "xlarge": 0.0},
        transfer_out_per_gb=0.0,
    )


def region(name: str) -> Region:
    """Look up a region by name; raises :class:`PlatformError`."""
    try:
        return EC2_REGIONS[name]
    except KeyError:
        raise PlatformError(
            f"unknown region {name!r}; known: {sorted(EC2_REGIONS)}"
        ) from None
