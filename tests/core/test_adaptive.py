"""Tests for the adaptive strategy selector (paper Table V)."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.adaptive import (
    AdaptiveSelector,
    Goal,
    RuntimeProfile,
    StructureClass,
    classify_runtimes,
    classify_structure,
    recommend,
)
from repro.errors import SchedulingError
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workloads.uniform import ConstantModel
from repro.workflows.generators import cstem, mapreduce, montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestStructureClassifier:
    def test_sequential(self):
        assert classify_structure(sequential()) is StructureClass.SEQUENTIAL

    def test_mapreduce_is_highly_parallel(self):
        assert classify_structure(mapreduce()) is StructureClass.HIGHLY_PARALLEL

    def test_montage_is_parallel_interdependent(self):
        assert (
            classify_structure(montage())
            is StructureClass.PARALLEL_INTERDEPENDENT
        )

    def test_cstem_has_some_parallelism(self):
        assert classify_structure(cstem()) is StructureClass.SOME_PARALLELISM


class TestRuntimeClassifier:
    def test_pareto_is_heterogeneous(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=0)
        assert classify_runtimes(wf, platform) is RuntimeProfile.HETEROGENEOUS

    def test_short_constant(self, platform):
        wf = apply_model(montage(), ConstantModel(100.0))
        assert classify_runtimes(wf, platform) is RuntimeProfile.SHORT

    def test_long_constant(self, platform):
        wf = apply_model(montage(), ConstantModel(4000.0))
        assert classify_runtimes(wf, platform) is RuntimeProfile.LONG


class TestRecommend:
    def test_savings_always_small_or_dyn(self, platform):
        """Table V's savings column: AllPar1LnSDyn everywhere except
        pure chains, which take any small-instance strategy."""
        for wf in (montage(), cstem(), mapreduce()):
            rec = recommend(wf, platform, Goal.SAVINGS)
            assert rec.algorithm == "AllPar1LnSDyn"
        seq = recommend(sequential(), platform, Goal.SAVINGS)
        assert seq.instance == "small"

    def test_sequential_gain_uses_large(self, platform):
        rec = recommend(sequential(), platform, Goal.GAIN)
        assert rec.instance == "large"

    def test_goal_from_string(self, platform):
        rec = recommend(montage(), platform, "gain")
        assert rec.label

    def test_unknown_goal(self, platform):
        with pytest.raises(SchedulingError):
            recommend(montage(), platform, "speed!")

    def test_every_cell_filled(self, platform):
        for wf in (montage(), cstem(), mapreduce(), sequential()):
            for goal in Goal:
                rec = recommend(wf, platform, goal)
                assert rec.algorithm and rec.provisioning and rec.instance
                assert rec.rationale


class TestAdaptiveSelector:
    def test_schedule_runs_recommendation(self, platform):
        sel = AdaptiveSelector(platform)
        for wf in (montage(), cstem(), mapreduce(), sequential()):
            for goal in Goal:
                sched = sel.schedule(wf, goal)
                sched.validate()

    def test_savings_goal_beats_reference_cost(self, platform):
        """The whole point of Table V: following the savings advice
        should actually save money vs. the reference."""
        from repro.core.baseline import reference_schedule

        sel = AdaptiveSelector(platform)
        for wf in (montage(), cstem(), mapreduce(), sequential()):
            concrete = apply_model(wf, ParetoModel(), seed=7)
            sched = sel.schedule(concrete, Goal.SAVINGS)
            ref = reference_schedule(concrete, platform)
            assert sched.total_cost <= ref.total_cost + 1e-9

    def test_classify_returns_pair(self, platform):
        sel = AdaptiveSelector(platform)
        structure, profile = sel.classify(montage())
        assert isinstance(structure, StructureClass)
        assert isinstance(profile, RuntimeProfile)
