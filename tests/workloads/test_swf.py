"""Tests for the SWF trace reader and trace-driven workload model."""

import pytest

from repro.errors import WorkflowParseError
from repro.workloads.base import apply_model
from repro.workloads.swf import (
    SwfTraceModel,
    bag_from_swf,
    parse_swf,
    parse_swf_file,
    runtimes_from_swf,
)
from repro.workflows.generators import montage

# 18-field SWF lines: id submit wait RUNTIME procs cpu mem reqprocs
# reqtime reqmem STATUS user group app queue partition prev think
_SAMPLE = """\
; SWF header comment
; MaxJobs: 4
1 0 10 3600 4 -1 -1 4 7200 -1 1 1 1 1 1 -1 -1 -1
2 5 0 1800 2 -1 -1 2 3600 -1 1 1 1 1 1 -1 -1 -1
3 9 0 0 1 -1 -1 1 60 -1 5 1 1 1 1 -1 -1 -1
4 12 2 900 1 -1 -1 1 1800 -1 -1 1 1 1 1 -1 -1 -1
"""


class TestParse:
    def test_jobs_parsed(self):
        jobs = parse_swf(_SAMPLE)
        assert len(jobs) == 4
        assert jobs[0].job_id == 1
        assert jobs[0].runtime == 3600.0
        assert jobs[0].status == 1

    def test_comments_skipped(self):
        assert len(parse_swf("; only a comment\n")) == 0

    def test_short_line_rejected(self):
        with pytest.raises(WorkflowParseError, match="fields"):
            parse_swf("1 2 3\n")

    def test_non_numeric_rejected(self):
        bad = _SAMPLE.replace("3600", "fast", 1)
        with pytest.raises(WorkflowParseError):
            parse_swf(bad)

    def test_file_roundtrip(self, tmp_path):
        p = tmp_path / "trace.swf"
        p.write_text(_SAMPLE)
        assert len(parse_swf_file(p)) == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkflowParseError):
            parse_swf_file(tmp_path / "none.swf")


class TestRuntimes:
    def test_filters_failed_and_zero(self):
        jobs = parse_swf(_SAMPLE)
        # job 3: zero runtime; job 3 status 5 (failed) — both dropped;
        # job 4 status -1 (unknown) kept
        assert runtimes_from_swf(jobs) == [3600.0, 1800.0, 900.0]


class TestTraceModel:
    def test_samples_from_trace_values(self):
        model = SwfTraceModel(parse_swf(_SAMPLE))
        wf = apply_model(montage(), model, seed=0)
        values = {t.work for t in wf.tasks}
        assert values <= {3600.0, 1800.0, 900.0}

    def test_reproducible(self):
        model = SwfTraceModel(parse_swf(_SAMPLE))
        a = model.runtimes(montage(), seed=1)
        b = model.runtimes(montage(), seed=1)
        assert a == b

    def test_from_file(self, tmp_path):
        p = tmp_path / "trace.swf"
        p.write_text(_SAMPLE)
        model = SwfTraceModel.from_file(p)
        assert model.runtimes(montage(), seed=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkflowParseError):
            SwfTraceModel([])


class TestBagFromSwf:
    def test_bag_structure(self):
        wf = bag_from_swf(parse_swf(_SAMPLE))
        assert wf.task_ids == ["swf_1", "swf_2", "swf_4"]
        assert wf.edges() == []
        assert wf.task("swf_1").work == 3600.0

    def test_n_limits(self):
        wf = bag_from_swf(parse_swf(_SAMPLE), n=2)
        assert len(wf) == 2

    def test_unusable_trace(self):
        only_failed = "9 0 0 100 1 -1 -1 1 60 -1 0 1 1 1 1 -1 -1 -1\n"
        with pytest.raises(WorkflowParseError):
            bag_from_swf(parse_swf(only_failed))

    def test_schedulable(self):
        from repro.cloud.platform import CloudPlatform
        from repro.core.allocation.level import AllParScheduler

        wf = bag_from_swf(parse_swf(_SAMPLE))
        sched = AllParScheduler(exceed=True).schedule(wf, CloudPlatform.ec2())
        sched.validate()
