"""Hypothesis properties of multi-workflow stream execution."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.simulator.stream import Submission, poisson_stream, run_stream
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import random_layered

_PLATFORM = CloudPlatform.ec2()


def _stream(seed, count, gap):
    shape = random_layered(layers=3, seed=seed)
    wf = apply_model(shape, ParetoModel(), seed=seed)
    return wf, poisson_stream(wf, count, gap, seed=seed)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(1, 4),
    gap=st.floats(0.0, 10_000.0),
    policy=st.sampled_from(["OneVMperTask", "StartParNotExceed", "AllParExceed"]),
)
def test_stream_respects_arrivals_and_dependencies(seed, count, gap, policy):
    wf, subs = _stream(seed, count, gap)
    result = run_stream(subs, _PLATFORM, policy=policy)
    assert len(result.per_instance) == count
    for i, (arrival, finish, response) in enumerate(result.per_instance):
        assert finish >= arrival
        assert response >= 0
        # no task of instance i starts before its arrival
        for tid, start in result.online.task_start.items():
            if tid.startswith(f"w{i}:"):
                assert start >= arrival - 1e-6
    # dependencies hold instance-locally
    for u, v, _gb in wf.edges():
        for i in range(count):
            assert (
                result.online.task_start[f"w{i}:{v}"]
                >= result.online.task_finish[f"w{i}:{u}"] - 1e-6
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 3))
def test_stream_billing_recomputes(seed, count):
    wf, subs = _stream(seed, count, 2000.0)
    result = run_stream(subs, _PLATFORM, policy="StartParExceed")
    by_vm = {}
    for tid, vm in result.online.task_vm.items():
        by_vm.setdefault(vm, []).append(tid)
    rent = 0.0
    for tasks in by_vm.values():
        start = min(result.online.task_start[t] for t in tasks)
        end = max(result.online.task_finish[t] for t in tasks)
        rent += max(1, math.ceil((end - start) / 3600.0 - 1e-9)) * 0.08
    assert result.total_cost == pytest.approx(rent)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_single_submission_equals_online_run(seed):
    """A one-element stream is exactly an online run (modulo prefixes)."""
    from repro.simulator.online import run_online

    wf, _ = _stream(seed, 1, 0.0)
    stream_result = run_stream([Submission(wf, 0.0)], _PLATFORM, policy="AllParExceed")
    online_result = run_online(wf, _PLATFORM, policy="AllParExceed")
    assert stream_result.online.makespan == pytest.approx(online_result.makespan)
    assert stream_result.total_cost == pytest.approx(online_result.rent_cost)
    for tid in wf.task_ids:
        assert stream_result.online.task_start[f"w0:{tid}"] == pytest.approx(
            online_result.task_start[tid]
        )
