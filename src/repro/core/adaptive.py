"""Adaptive strategy selection — the paper's future-work direction,
encoding its Table V conclusions.

Given a workflow's *structure class* and the user's *goal*, recommend a
scheduling algorithm + provisioning policy + instance size.  The
classifier derives the structure class from DAG statistics and the
execution-time profile (short / long / heterogeneous) from the task
runtimes relative to the BTU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cloud.platform import CloudPlatform
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


class Goal(enum.Enum):
    """What the user optimizes for (paper Table V columns)."""

    SAVINGS = "savings"
    GAIN = "gain"
    BALANCE = "balance"


class StructureClass(enum.Enum):
    """Workflow families distinguished by the paper (Table V rows)."""

    HIGHLY_PARALLEL = "much parallelism (MapReduce-like)"
    PARALLEL_INTERDEPENDENT = "much parallelism + many interdependencies (Montage-like)"
    SOME_PARALLELISM = "some parallelism (CSTEM-like)"
    SEQUENTIAL = "sequential"


class RuntimeProfile(enum.Enum):
    """Execution-time regimes the paper's recommendations key on."""

    SHORT = "short"  # well below one BTU
    LONG = "long"  # around or above one BTU
    HETEROGENEOUS = "heterogeneous"  # Pareto-like spread


@dataclass(frozen=True)
class Recommendation:
    """A concrete strategy choice with the paper's rationale."""

    algorithm: str
    provisioning: str
    instance: str
    rationale: str

    @property
    def label(self) -> str:
        if self.algorithm in ("HEFT",):
            return f"{self.provisioning}-{self.instance[0]}"
        return self.algorithm


def classify_structure(wf: Workflow) -> StructureClass:
    """Bucket *wf* into one of the paper's four structure families.

    Parallelism = average level width (task count / level count), which
    separates a mostly-serial backbone with one wide stage (CSTEM, ~1.8)
    from genuinely wide workflows (Montage ~2.7, MapReduce ~4.8).
    Interdependence = fraction of edges skipping at least one level
    (Montage's "intermingled" dependencies).
    """
    from repro.workflows.analysis import profile

    p = profile(wf)
    if p.max_width == 1:
        return StructureClass.SEQUENTIAL
    if p.avg_width >= 2.5:
        if p.level_skip_fraction > 0.1:
            return StructureClass.PARALLEL_INTERDEPENDENT
        return StructureClass.HIGHLY_PARALLEL
    return StructureClass.SOME_PARALLELISM


def classify_runtimes(wf: Workflow, platform: CloudPlatform) -> RuntimeProfile:
    """Short / long / heterogeneous, relative to the platform BTU."""
    from repro.workflows.analysis import profile

    p = profile(wf)
    if p.runtime_cv > 0.4:
        return RuntimeProfile.HETEROGENEOUS
    if p.mean_runtime >= 0.5 * platform.btu_seconds:
        return RuntimeProfile.LONG
    return RuntimeProfile.SHORT


#: Table V, transliterated. Keys: (structure, goal); short/long/
#: heterogeneous nuances are resolved inside recommend().
_TABLE_V = {
    (StructureClass.HIGHLY_PARALLEL, Goal.SAVINGS): Recommendation(
        "AllPar1LnSDyn", "AllParNotExceed", "small",
        "dynamic parallelism reduction gives the best savings on wide workflows",
    ),
    (StructureClass.HIGHLY_PARALLEL, Goal.GAIN): Recommendation(
        "AllParExceed", "AllParExceed", "medium",
        "AllParExceed-m wins for small & heterogeneous tasks on parallel workflows",
    ),
    (StructureClass.HIGHLY_PARALLEL, Goal.BALANCE): Recommendation(
        "AllPar1LnSDyn", "AllParNotExceed", "small",
        "AllPar1LnSDyn stays in the target square for heterogeneous tasks",
    ),
    (StructureClass.PARALLEL_INTERDEPENDENT, Goal.SAVINGS): Recommendation(
        "AllPar1LnSDyn", "AllParNotExceed", "small",
        "parallelism reduction also pays off despite interdependencies",
    ),
    (StructureClass.PARALLEL_INTERDEPENDENT, Goal.GAIN): Recommendation(
        "HEFT", "StartParExceed", "large",
        "StartPar[Not]Exceed-l / AllPar[Not]Exceed-m shine with short tasks",
    ),
    (StructureClass.PARALLEL_INTERDEPENDENT, Goal.BALANCE): Recommendation(
        "HEFT", "StartParNotExceed", "medium",
        "StartParNotExceed-[m|s] balances gain and savings on Montage-likes",
    ),
    (StructureClass.SOME_PARALLELISM, Goal.SAVINGS): Recommendation(
        "AllPar1LnSDyn", "AllParNotExceed", "small",
        "AllPar1LnSDyn remains the savings pick for mildly parallel workflows",
    ),
    (StructureClass.SOME_PARALLELISM, Goal.GAIN): Recommendation(
        "AllParNotExceed", "AllParNotExceed", "medium",
        "AllParNotExceed-m for heterogeneous tasks on CSTEM-likes",
    ),
    (StructureClass.SOME_PARALLELISM, Goal.BALANCE): Recommendation(
        "HEFT", "StartParNotExceed", "small",
        "[Start|All]ParNotExceed-[s|m] with long/heterogeneous tasks",
    ),
    (StructureClass.SEQUENTIAL, Goal.SAVINGS): Recommendation(
        "HEFT", "StartParExceed", "small",
        "any small-instance strategy except OneVMperTask saves on chains",
    ),
    (StructureClass.SEQUENTIAL, Goal.GAIN): Recommendation(
        "HEFT", "StartParExceed", "large",
        "large instances do pay off on sequential workflows",
    ),
    (StructureClass.SEQUENTIAL, Goal.BALANCE): Recommendation(
        "HEFT", "StartParExceed", "large",
        "*-l with short tasks balances gain and savings on chains",
    ),
}


def recommend(
    wf: Workflow, platform: CloudPlatform, goal: Goal | str
) -> Recommendation:
    """Pick a strategy for *wf* per the paper's Table V."""
    if isinstance(goal, str):
        try:
            goal = Goal(goal.lower())
        except ValueError:
            raise SchedulingError(
                f"unknown goal {goal!r}; expected one of "
                f"{[g.value for g in Goal]}"
            ) from None
    structure = classify_structure(wf)
    profile = classify_runtimes(wf, platform)
    rec = _TABLE_V[(structure, goal)]
    # Table V nuance: sequential + gain only recommends large instances
    # when tasks are heterogeneous or short; keep -l (the table's *-l).
    if (
        structure is StructureClass.PARALLEL_INTERDEPENDENT
        and goal is Goal.BALANCE
        and profile is RuntimeProfile.LONG
    ):
        rec = Recommendation(
            "HEFT", "StartParNotExceed", "small",
            "StartParNotExceed-s for long tasks on Montage-likes",
        )
    return rec


class AdaptiveSelector:
    """Object-style facade over :func:`recommend` that also instantiates
    the chosen scheduler."""

    def __init__(self, platform: CloudPlatform) -> None:
        self.platform = platform

    def classify(self, wf: Workflow) -> tuple:
        return classify_structure(wf), classify_runtimes(wf, self.platform)

    def recommend(self, wf: Workflow, goal: Goal | str) -> Recommendation:
        return recommend(wf, self.platform, goal)

    def schedule(self, wf: Workflow, goal: Goal | str):
        """Recommend, build and run the scheduler; returns the Schedule."""
        from repro.core.allocation.base import scheduling_algorithm

        rec = self.recommend(wf, goal)
        if rec.algorithm == "HEFT":
            algo = scheduling_algorithm("HEFT", provisioning=rec.provisioning)
        elif rec.algorithm in ("AllParExceed", "AllParNotExceed"):
            algo = scheduling_algorithm("AllPar", exceed=rec.algorithm == "AllParExceed")
        else:
            algo = scheduling_algorithm(rec.algorithm)
        return algo.schedule(wf, self.platform, itype=self.platform.itype(rec.instance))
