"""Schedule metrics and the paper's gain/loss comparison.

Everything in the evaluation is measured against the reference strategy
HEFT + OneVMperTask on small instances:

    gain%    = (makespan_ref - makespan) / makespan_ref * 100
    loss%    = (cost - cost_ref) / cost_ref * 100
    savings% = -loss%

Figure 4 plots ``loss%`` (y) against ``gain%`` (x); the "target square"
is the quadrant with ``gain >= 0`` and ``loss <= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.constraints import Constraints, ConstraintViolation
from repro.core.schedule import Schedule
from repro.errors import SchedulingError


@dataclass(frozen=True)
class ScheduleMetrics:
    """The numbers the paper reports for one strategy run."""

    label: str
    makespan: float
    cost: float
    idle_seconds: float
    vm_count: int
    btus: int
    #: vs. reference; 0 for the reference itself
    gain_pct: float = 0.0
    loss_pct: float = 0.0
    #: constraint verdict — ``None`` when no constraints were applied,
    #: otherwise whether this run satisfies every bound
    feasible: Optional[bool] = None
    #: the breakdown behind a ``feasible=False`` verdict
    violations: Tuple[ConstraintViolation, ...] = ()

    @property
    def savings_pct(self) -> float:
        return -self.loss_pct

    @property
    def in_target_square(self) -> bool:
        """Both faster and cheaper than (or equal to) the reference."""
        return self.gain_pct >= 0.0 and self.loss_pct <= 0.0

    def with_constraints(self, constraints: "Constraints | None") -> "ScheduleMetrics":
        """Copy of these metrics stamped with a constraint verdict.

        ``None`` clears the verdict (back to the unconstrained form).
        """
        if constraints is None:
            return replace(self, feasible=None, violations=())
        violations = constraints.check(
            makespan=self.makespan, cost=self.cost, vm_count=self.vm_count
        )
        return replace(self, feasible=not violations, violations=violations)

    def violation_summary(self) -> str:
        """One line per missed bound; "" when feasible or unjudged."""
        return "; ".join(str(v) for v in self.violations)

    def as_row(self) -> tuple:
        return (
            self.label,
            self.makespan,
            self.cost,
            self.gain_pct,
            self.loss_pct,
            self.idle_seconds,
            self.vm_count,
        )


def evaluate(
    schedule: Schedule,
    label: str | None = None,
    constraints: "Constraints | None" = None,
) -> ScheduleMetrics:
    """Raw metrics of one schedule (no reference comparison).

    With *constraints*, the result carries the feasibility verdict and
    violation breakdown against the planned makespan/cost/VM count.
    """
    metrics = ScheduleMetrics(
        label=label or schedule.label,
        makespan=schedule.makespan,
        cost=schedule.total_cost,
        idle_seconds=schedule.total_idle_seconds,
        vm_count=schedule.vm_count,
        btus=schedule.total_btus,
    )
    return metrics.with_constraints(constraints) if constraints is not None else metrics


def compare_to_reference(
    schedule: Schedule,
    reference: Schedule,
    label: str | None = None,
    constraints: "Constraints | None" = None,
) -> ScheduleMetrics:
    """Metrics of *schedule* with gain/loss relative to *reference*."""
    if reference.makespan <= 0 or reference.total_cost <= 0:
        raise SchedulingError("reference schedule has degenerate makespan/cost")
    base = evaluate(schedule, label)
    gain = (reference.makespan - base.makespan) / reference.makespan * 100.0
    loss = (base.cost - reference.total_cost) / reference.total_cost * 100.0
    metrics = ScheduleMetrics(
        label=base.label,
        makespan=base.makespan,
        cost=base.cost,
        idle_seconds=base.idle_seconds,
        vm_count=base.vm_count,
        btus=base.btus,
        gain_pct=gain,
        loss_pct=loss,
    )
    return metrics.with_constraints(constraints) if constraints is not None else metrics
