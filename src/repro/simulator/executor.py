"""Dynamic replay of a static schedule.

The executor takes only the schedule's *decisions* — which VM runs each
task and in what per-VM order — and re-derives all timing through
discrete events: a task starts when it reaches the front of its VM's
queue **and** its last input has arrived; finishing a task triggers the
store-and-forward transfers to its successors' VMs.  VMs are pre-booted
(the paper's static-scheduling argument), so they are available from
t=0 and their rent window is measured from their first task start.

Because the :class:`~repro.core.builder.ScheduleBuilder` uses exactly
this recurrence, a valid static schedule replays with identical times;
:func:`simulate_schedule` asserts that when ``check=True``.

Fault injection
---------------
A :class:`~repro.simulator.faults.FaultPlan` turns the replay into a
fault-injected run: execution attempts can die partway, VMs can crash at
a sampled uptime (billed to the BTU boundary), and cold boots can fail
or take longer than nominal.  A
:class:`~repro.core.recovery.RecoveryPolicy` then decides how the run
carries on — retry on the same VM, resubmit to a fresh VM, or replan the
whole unfinished sub-DAG through the schedule's original provisioning
policy against the surviving fleet.  With a plan of zero probability the
executor behaves, event for event, exactly as without one; with faults
enabled, identical seeds reproduce identical traces and recovery
decisions (see the determinism contract in
:mod:`repro.simulator.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.instance import InstanceType
from repro.cloud.region import Region
from repro.core.recovery import (
    FailureEvent,
    RecoveryAction,
    RecoveryPolicy,
    recovery_policy,
)
from repro.core.schedule import Schedule
from repro.errors import FaultError, SchedulingError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import current as current_metrics
from repro.obs.tracer import Tracer, ensure_tracer
from repro.simulator.engine import Simulator
from repro.simulator.faults import FaultPlan, FaultStats
from repro.simulator.trace import SimulationResult, TraceEvent
from repro.util.compat import removed_kwargs


@dataclass
class _ExecVM:
    """Runtime state of one VM during (possibly fault-injected) replay."""

    id: int
    name: str
    itype: InstanceType
    region: Region
    #: execution order: finished prefix, then the running/waiting tasks
    queue: List[str] = field(default_factory=list)
    next_idx: int = 0
    running: Optional[str] = None
    #: when the rent window opened (boot request / first task start)
    rent_open: bool = False
    rent_start: float = 0.0
    #: last time the VM finished or dropped an execution attempt
    last_active: float = 0.0
    #: seconds of completed (useful) executions hosted here
    useful_seconds: float = 0.0
    crashed: bool = False
    crashed_at: float = 0.0
    boot_started: bool = False
    boot_done: bool = False
    boot_attempt: int = 0
    #: how this VM was bought (a market ``PurchaseOption``); ``None``
    #: outside market runs
    purchase: Optional[object] = None
    #: whether the crash that killed this VM was a spot reclamation
    preempted: bool = False
    #: whether the acquisition hit the warm pool (cold-start scenarios)
    booted_warm: bool = False


class ScheduleExecutor:
    """Replays one :class:`Schedule` on a fresh :class:`Simulator`.

    *runtime_fn*, when given, maps ``(task_id, planned_duration)`` to the
    *actual* duration — the hook for robustness studies where execution
    times deviate from the static scheduler's estimates.  The per-VM
    queue and dependency disciplines absorb any deviation, so execution
    always stays feasible; only the timings shift.

    *fault_plan* and *recovery* enable fault injection: see the module
    docstring.  *recovery* accepts a
    :class:`~repro.core.recovery.RecoveryPolicy`, a registry name
    (``"retry"``, ``"resubmit"``, ``"replan"``) or ``None`` (retry with
    default backoff); it is only consulted when a fault actually fires.

    *tracer* records the replay for ``chrome://tracing``: a wall-clock
    span around the event loop plus simulated-time spans per VM rent
    window and task execution, with fault/recovery instants.  *metrics*
    (default: the registry activated via
    :meth:`repro.obs.MetricsRegistry.activate`, if any) accumulates the
    run's counters.  Both default to disabled at zero cost.
    """

    def __init__(
        self,
        schedule: Schedule,
        max_events: int = 10_000_000,
        runtime_fn: Callable[[str, float], float] | None = None,
        fault_plan: FaultPlan | None = None,
        recovery: "str | RecoveryPolicy | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.schedule = schedule
        self.runtime_fn = runtime_fn
        if fault_plan is None:
            # a platform-level market makes the run fault-injected even
            # without an explicit plan (the price process is a fault)
            ambient = getattr(schedule.platform, "market", None)
            if ambient is not None:
                fault_plan = FaultPlan(market=ambient)
        self.fault_plan = fault_plan
        self.market = fault_plan.market if fault_plan is not None else None
        self._spot = fault_plan.spot_plan() if fault_plan is not None else None
        self.recovery: Optional[RecoveryPolicy] = (
            recovery_policy(recovery) if fault_plan is not None else None
        )
        self.tracer = ensure_tracer(tracer)
        self.metrics = metrics if metrics is not None else current_metrics()
        self.sim = Simulator(max_events=max_events, tracer=tracer)
        self.result = SimulationResult()
        self.stats: Optional[FaultStats] = (
            FaultStats() if fault_plan is not None else None
        )
        wf = schedule.workflow
        # Remaining input count per task; entry tasks are ready at t=0.
        self._pending_inputs: Dict[str, int] = {
            tid: len(wf.predecessors(tid)) for tid in wf.task_ids
        }
        # Runtime fleet: starts as the planned VMs, may grow on recovery.
        self._default_purchase = (
            self.market.purchase if self.market is not None else None
        )
        self._vms: List[_ExecVM] = [
            _ExecVM(
                id=vm.id,
                name=vm.name,
                itype=vm.itype,
                region=vm.region,
                queue=list(vm.task_ids),
                purchase=self._default_purchase,
            )
            for vm in schedule.vms
        ]
        self._vm_of: Dict[str, _ExecVM] = {}
        for evm in self._vms:
            for tid in evm.queue:
                self._vm_of[tid] = evm
        self._started: set = set()
        self._done: set = set()
        #: current attempt number per task (1-based)
        self._attempt: Dict[str, int] = {}
        #: placement generation per task — bumped when a task moves VM,
        #: so in-flight input deliveries to the old placement are ignored
        self._gen: Dict[str, int] = {tid: 0 for tid in wf.task_ids}
        #: estimated end of the currently running attempt (replan input)
        self._exp_end: Dict[str, float] = {}
        #: seconds of work checkpointed at a reclamation warning, by task
        self._ckpt: Dict[str, float] = {}
        #: warm-pool acquisitions consumed so far, by flavor name
        self._warm_used: Dict[str, int] = {}
        # whether starting a fresh VM involves a boot phase at all: the
        # platform's cold-boot switch, or plan-level cold-start/warm-pool
        # fields that only matter on non-prebooted platforms
        platform = schedule.platform
        self._boot_needed = not platform.prebooted and (
            platform.boot_seconds > 0
            or (
                fault_plan is not None
                and (fault_plan.boot_cold_seconds > 0 or fault_plan.boot_warm_pool > 0)
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _front(self, vm: _ExecVM) -> str | None:
        q = vm.queue
        i = vm.next_idx
        return q[i] if i < len(q) else None

    def _attempt_of(self, task_id: str) -> int:
        return self._attempt.get(task_id, 1)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _open_rent(self, vm: _ExecVM) -> None:
        """Open the VM's rent window and arm its crash process."""
        if vm.rent_open:
            return
        vm.rent_open = True
        vm.rent_start = self.sim.now
        vm.last_active = self.sim.now
        if self.fault_plan is not None:
            uptime = self.fault_plan.vm_crash_uptime(vm.name)
            if uptime != float("inf"):
                self.sim.after(
                    uptime, lambda v=vm: self._vm_crash(v), f"crash:{vm.name}"
                )
        self._arm_preemption(vm)

    def _arm_preemption(self, vm: _ExecVM) -> None:
        """Arm the price-correlated reclamation of a spot VM: a warning
        at the price-crossing instant, the kill a grace window later."""
        if self._spot is None or vm.purchase is None:
            return
        warn, kill = self._spot.preemption(
            vm.itype, vm.region, vm.purchase, self.sim.now
        )
        if kill == float("inf"):
            return
        if warn < kill:  # a zero-grace market kills without warning
            self.sim.after(
                warn - self.sim.now,
                lambda v=vm: self._spot_warning(v),
                f"spot_warn:{vm.name}",
            )
        self.sim.after(
            kill - self.sim.now,
            lambda v=vm: self._vm_crash(v, preempt=True),
            f"preempt:{vm.name}",
        )

    def _spot_warning(self, vm: _ExecVM) -> None:
        """The provider's reclamation warning: count it, and checkpoint
        the running attempt when the recovery policy asks for it."""
        if vm.crashed or not vm.rent_open:
            return
        assert self.stats is not None and self.recovery is not None
        now = self.sim.now
        self.stats.grace_warnings += 1
        self.result.record(TraceEvent(now, "spot_warning", vm.running or "", vm.name))
        if self.recovery.checkpoint_on_warning and vm.running is not None:
            done = max(now - self.result.task_start[vm.running], 0.0)
            if done > 0:
                self._ckpt[vm.running] = done

    def _try_start(self, task_id: str) -> None:
        if task_id in self._started or task_id in self._done:
            return
        vm = self._vm_of[task_id]
        if vm.crashed:
            return  # recovery will re-place the task
        if self._front(vm) != task_id:
            return  # an earlier queue entry still runs or waits
        if self._pending_inputs[task_id] > 0:
            return
        platform = self.schedule.platform
        if self._boot_needed and not vm.boot_done:
            # first task is ready: the VM is requested now and boots
            if not vm.boot_started:
                vm.boot_started = True
                self._open_rent(vm)
                self.result.record(TraceEvent(self.sim.now, "vm_boot", "", vm.name))
                self._boot(vm)
            return
        self._started.add(task_id)
        now = self.sim.now
        self._open_rent(vm)
        duration = platform.runtime(self.schedule.workflow.task(task_id), vm.itype)
        if self.runtime_fn is not None:
            duration = self.runtime_fn(task_id, duration)
            if duration < 0:
                raise SimulationError(
                    f"runtime_fn returned negative duration for {task_id!r}"
                )
        if self._ckpt:
            # resume from the state checkpointed at a reclamation
            # warning: only the remainder runs, plus the restore cost
            done = self._ckpt.pop(task_id, 0.0)
            if done > 0:
                assert self.recovery is not None
                duration = (
                    max(duration - done, 0.0) + self.recovery.restart_cost_seconds
                )
        self.result.record(TraceEvent(now, "task_start", task_id, vm.name))
        vm.running = task_id
        attempt = self._attempt_of(task_id)
        frac = (
            self.fault_plan.task_attempt(task_id, attempt)
            if self.fault_plan is not None
            else None
        )
        if frac is None:
            self._exp_end[task_id] = now + duration
            self.sim.after(
                duration,
                lambda a=attempt: self._finish(task_id, a),
                f"end:{task_id}",
            )
        else:
            wasted = frac * duration
            self._exp_end[task_id] = now + wasted
            self.sim.after(
                wasted,
                lambda a=attempt, w=wasted: self._task_fail(task_id, a, w),
                f"fail:{task_id}",
            )

    def _boot(self, vm: _ExecVM) -> None:
        """Run one boot attempt; on failure, re-request the VM."""
        platform = self.schedule.platform
        vm.boot_attempt += 1
        attempt = vm.boot_attempt
        delay = platform.boot_seconds
        fails = False
        if self.fault_plan is not None:
            if attempt == 1 and self.fault_plan.boot_warm_pool > 0:
                used = self._warm_used.get(vm.itype.name, 0)
                if used < self.fault_plan.boot_warm_pool:
                    self._warm_used[vm.itype.name] = used + 1
                    vm.booted_warm = True
            fails, delay = self.fault_plan.boot_delay_outcome(
                vm.name, attempt, platform.boot_seconds, warm=vm.booted_warm
            )

        def boot_complete(v=vm, failed=fails):
            if v.crashed:
                return
            if failed:
                assert self.stats is not None and self.recovery is not None
                self.stats.boot_failures += 1
                self.result.record(
                    TraceEvent(self.sim.now, "vm_boot_fail", "", v.name)
                )
                if v.boot_attempt >= self.recovery.max_attempts:
                    raise FaultError(
                        f"{v.name} failed to boot {v.boot_attempt} times"
                    )
                # acquisition failures are not billed: the rent clock
                # restarts with the re-issued request
                v.rent_start = self.sim.now
                self._boot(v)
                return
            v.boot_done = True
            v.last_active = self.sim.now
            front = self._front(v)
            if front is not None:
                self._try_start(front)

        self.sim.after(delay, boot_complete, f"boot:{vm.name}")

    def _finish(self, task_id: str, attempt: int = 0) -> None:
        if attempt and attempt != self._attempt_of(task_id):
            return  # superseded by a crash-triggered re-placement
        if task_id in self._done:
            return
        now = self.sim.now
        vm = self._vm_of[task_id]
        if vm.crashed:
            return  # the crash already failed this attempt
        self._done.add(task_id)
        vm.running = None
        vm.last_active = now
        vm.useful_seconds += now - self.result.task_start[task_id]
        self.result.record(TraceEvent(now, "task_end", task_id, vm.name))
        # Free the VM for its next queued task.
        vm.next_idx += 1
        nxt = self._front(vm)
        if nxt is not None:
            self._try_start(nxt)
        # Ship outputs to successors.
        wf = self.schedule.workflow
        for succ in wf.successors(task_id):
            dst = self._vm_of[succ]
            dt = self.schedule.platform.transfer_time(
                wf.data_gb(task_id, succ),
                vm.itype,
                dst.itype,
                same_vm=vm is dst,
                src_region=vm.region,
                dst_region=dst.region,
            )
            if dt > 0:
                self.result.record(
                    TraceEvent(now, "transfer_start", succ, dst.name, f"from:{task_id}")
                )
            self.sim.after(
                dt,
                lambda s=succ, g=self._gen[succ]: self._arrive(s, g),
                f"arrive:{succ}",
            )

    def _arrive(self, task_id: str, gen: int = 0) -> None:
        if gen != self._gen[task_id]:
            return  # delivery to an abandoned placement
        self._pending_inputs[task_id] -= 1
        if self._pending_inputs[task_id] < 0:
            raise SimulationError(f"extra input arrival for {task_id!r}")
        self._try_start(task_id)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _task_fail(self, task_id: str, attempt: int, wasted: float) -> None:
        if attempt != self._attempt_of(task_id) or task_id in self._done:
            return
        vm = self._vm_of[task_id]
        if vm.crashed:
            return  # the crash handler already recovered this task
        assert self.stats is not None and self.recovery is not None
        now = self.sim.now
        self._started.discard(task_id)
        vm.running = None
        vm.last_active = now
        self.stats.task_failures += 1
        self.stats.wasted_task_seconds += wasted
        self.result.record(
            TraceEvent(now, "task_fail", task_id, vm.name, f"attempt:{attempt}")
        )
        failure = FailureEvent(
            task_id=task_id,
            vm_id=vm.id,
            attempt=attempt,
            time=now,
            reason="task",
            vm_alive=True,
            purchase=vm.purchase,
        )
        action = self.recovery.decide(failure)
        self._log_decision(action, task_id, now)
        if action.kind == "abort":
            raise FaultError(
                f"task {task_id!r} failed {attempt} times; recovery gave up"
            )
        self._attempt[task_id] = attempt + 1
        if action.kind == "retry":
            # same VM, inputs already staged: re-run after the backoff
            self.stats.retries += 1
            self.sim.after(
                action.delay, lambda t=task_id: self._try_start(t), f"retry:{task_id}"
            )
        elif action.kind == "resubmit":
            self.stats.resubmits += 1
            self._resubmit(task_id, vm, action.delay, action.purchase)
        else:  # replan
            self.stats.replans += 1
            self._replan(action.delay)

    def _log_decision(self, action: RecoveryAction, task_id: str, now: float) -> None:
        """Append one decision-log line; market tags suffix the historic
        format, so zero-market logs are unchanged byte-for-byte."""
        assert self.stats is not None
        line = f"{action.kind}:{task_id}@{now:.3f}"
        if action.tag:
            line += f"[{action.tag}]"
            self.stats.rebids += 1
        self.stats.decisions.append(line)

    def _vm_crash(self, vm: _ExecVM, preempt: bool = False) -> None:
        if vm.crashed:
            return
        running = vm.running
        remaining = [t for t in vm.queue[vm.next_idx :] if t not in self._done]
        if running is None and not remaining:
            return  # the VM had already drained and stopped
        assert self.stats is not None and self.recovery is not None
        now = self.sim.now
        vm.crashed = True
        vm.crashed_at = now
        vm.preempted = preempt
        reason = "spot_preempt" if preempt else "vm_crash"
        if preempt:
            self.stats.preemptions += 1
            self.result.record(TraceEvent(now, "vm_preempt", "", vm.name))
        else:
            self.stats.vm_crashes += 1
            self.result.record(TraceEvent(now, "vm_crash", "", vm.name))
        if running is not None:
            attempt = self._attempt_of(running)
            wasted = max(now - self.result.task_start[running], 0.0)
            if running in self._ckpt:
                # checkpointed progress is not lost to the reclamation
                wasted = max(wasted - self._ckpt[running], 0.0)
            self.stats.task_failures += 1
            self.stats.wasted_task_seconds += wasted
            self.result.record(
                TraceEvent(now, "task_fail", running, vm.name, reason)
            )
            self._started.discard(running)
            vm.running = None
            failure = FailureEvent(
                task_id=running,
                vm_id=vm.id,
                attempt=attempt,
                time=now,
                reason=reason,
                vm_alive=False,
                purchase=vm.purchase,
            )
            action = self.recovery.decide(failure)
            self._log_decision(action, running, now)
            if action.kind == "abort":
                raise FaultError(
                    f"task {running!r} lost to a {reason} after {attempt} attempts"
                )
            self._attempt[running] = attempt + 1
        else:
            kind = "replan" if self.recovery.queue_strategy == "replan" else "resubmit"
            action = RecoveryAction(kind, 0.0)
        # the dead VM keeps only its executed prefix
        vm.queue = vm.queue[: vm.next_idx]
        if action.kind == "replan" or self.recovery.queue_strategy == "replan":
            self.stats.replans += 1
            self._replan(action.delay)
        else:
            # one replacement VM inherits the interrupted + queued work,
            # bought as the recovery directed (rebid/fallback) or on the
            # dead VM's own terms
            self.stats.resubmits += 1
            nvm = self._new_vm(vm.itype, vm.region, action.purchase or vm.purchase)
            for tid in remaining:
                self._move_task(tid, nvm, action.delay)

    # ------------------------------------------------------------------
    # recovery mechanics
    # ------------------------------------------------------------------
    def _new_vm(
        self,
        itype: InstanceType,
        region: Region,
        purchase: Optional[object] = None,
    ) -> _ExecVM:
        evm = _ExecVM(
            id=len(self._vms),
            name=f"vm{len(self._vms)}-{itype.short}",
            itype=itype,
            region=region,
            purchase=purchase if purchase is not None else self._default_purchase,
        )
        self._vms.append(evm)
        self.result.record(
            TraceEvent(self.sim.now, "vm_start", "", evm.name, "recovery")
        )
        return evm

    def _move_task(self, task_id: str, vm: _ExecVM, delay: float) -> None:
        """Re-place *task_id* on *vm* and re-stage its inputs."""
        vm.queue.append(task_id)
        self._vm_of[task_id] = vm
        self._gen[task_id] += 1
        self._restage_inputs(task_id, vm, delay)

    def _resubmit(
        self,
        task_id: str,
        old_vm: _ExecVM,
        delay: float,
        purchase: Optional[object] = None,
    ) -> None:
        """Move a failed task from *old_vm* to a freshly rented VM."""
        old_vm.queue.remove(task_id)
        nvm = self._new_vm(old_vm.itype, old_vm.region, purchase or old_vm.purchase)
        self._move_task(task_id, nvm, delay)
        nxt = self._front(old_vm)
        if nxt is not None:
            self._try_start(nxt)

    def _restage_inputs(self, task_id: str, vm: _ExecVM, delay: float) -> None:
        """Re-deliver the task's inputs to its new VM.

        Finished predecessors re-ship their output (store-and-forward
        from their VM) after the recovery *delay*; unfinished ones will
        deliver to the new placement when they complete.
        """
        wf = self.schedule.workflow
        preds = wf.predecessors(task_id)
        self._pending_inputs[task_id] = len(preds)
        gen = self._gen[task_id]
        if not preds:
            self.sim.after(
                delay, lambda t=task_id: self._try_start(t), f"kick:{task_id}"
            )
            return
        now = self.sim.now
        for pred in preds:
            if pred not in self._done:
                continue  # will ship on its own completion
            src = self._vm_of[pred]
            dt = self.schedule.platform.transfer_time(
                wf.data_gb(pred, task_id),
                src.itype,
                vm.itype,
                same_vm=src is vm,
                src_region=src.region,
                dst_region=vm.region,
            )
            if dt > 0:
                self.result.record(
                    TraceEvent(
                        now, "transfer_start", task_id, vm.name, f"restage:{pred}"
                    )
                )
            self.sim.after(
                delay + dt,
                lambda t=task_id, g=gen: self._arrive(t, g),
                f"arrive:{task_id}",
            )

    def _replan(self, delay: float) -> None:
        """Re-run the original provisioning policy on the unfinished
        sub-DAG against the surviving fleet state.

        Completed and currently-running executions are frozen at their
        realized times; every *pending* (unstarted) task — on any VM —
        is handed back to the provisioning policy, which sees the
        surviving VMs with their accumulated history and may reuse them
        or rent fresh ones.  Policy estimates for the re-placed tasks
        are approximate (the builder's clock is the schedule era, not
        the failure instant); actual timing is still re-derived
        event-by-event, so the realized trace stays exact.
        """
        from repro.core.builder import ScheduleBuilder
        from repro.core.provisioning.base import provisioning_policy as _provision

        assert self.recovery is not None
        wf = self.schedule.workflow
        name = getattr(self.recovery, "provisioning", None) or self.schedule.provisioning
        try:
            policy = _provision(name)
        except SchedulingError:
            raise FaultError(
                f"replan needs a registered provisioning policy; "
                f"{name!r} is unknown — use ReplanRemaining(provisioning=...)"
            ) from None
        pending = [
            t
            for t in wf.topological_order()
            if t not in self._done and t not in self._started
        ]
        pending_set = set(pending)
        # strip pending tasks from every surviving queue
        for evm in self._vms:
            if evm.crashed:
                continue
            evm.queue = [t for t in evm.queue if t not in pending_set]
            evm.next_idx = sum(1 for t in evm.queue if t in self._done)
        # seed a builder with the surviving fleet state
        default_itype = (
            self.schedule.vms[0].itype if self.schedule.vms else self._vms[0].itype
        )
        builder = ScheduleBuilder(
            wf,
            self.schedule.platform,
            default_itype,
            region=self.schedule.vms[0].region if self.schedule.vms else None,
        )
        survivors = [
            evm for evm in self._vms if not evm.crashed and evm.queue
        ]
        for evm in survivors:
            builder.adopt_vm(
                evm.itype,
                evm.region,
                placements=[
                    (
                        tid,
                        self.result.task_start[tid],
                        self.result.task_finish[tid]
                        if tid in self._done
                        else self._exp_end[tid],
                    )
                    for tid in evm.queue
                ],
            )
        # ghost entries for executions on crashed VMs: the policy cannot
        # place anything there, but transfer estimates need their origin
        for evm in self._vms:
            if not evm.crashed:
                continue
            builder.adopt_ghost(
                evm.itype,
                evm.region,
                placements=[
                    (
                        tid,
                        self.result.task_start[tid],
                        self.result.task_finish[tid],
                    )
                    for tid in evm.queue
                    if tid in self._done
                ],
            )
        # hand the unfinished sub-DAG back to the provisioning policy
        for tid in pending:
            builder.begin_task(tid)
            bvm = policy.select_vm(tid, builder)
            builder.place(tid, bvm)
        # map the policy's decisions back onto the runtime fleet
        bvm_to_evm: Dict[int, _ExecVM] = {
            idx: evm for idx, evm in enumerate(survivors)
        }
        for bvm in builder.vms:
            new_tasks = [t for t in bvm.order if t in pending_set]
            if not new_tasks:
                continue
            evm = bvm_to_evm.get(bvm.id)
            if evm is None:
                evm = self._new_vm(bvm.itype, bvm.region)
                bvm_to_evm[bvm.id] = evm
            for tid in new_tasks:
                prev = self._vm_of[tid]
                evm.queue.append(tid)
                if prev is not evm:
                    self._vm_of[tid] = evm
                    self._gen[tid] += 1
                    self._restage_inputs(tid, evm, delay)
                # unmoved tasks keep their (possibly in-flight) inputs
        for evm in self._vms:
            if evm.crashed:
                continue
            self.sim.after(
                delay, lambda v=evm: self._kick_front(v), f"replan:{evm.name}"
            )

    def _kick_front(self, vm: _ExecVM) -> None:
        front = self._front(vm)
        if front is not None:
            self._try_start(front)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute to completion; raises on deadlock."""
        for evm in self._vms:
            self.result.record(TraceEvent(0.0, "vm_start", "", evm.name))
            front = self._front(evm)
            if front is not None:
                self.sim.at(0.0, lambda t=front: self._try_start(t), f"kick:{front}")
        with self.tracer.span(
            "executor.run", cat="executor", workflow=self.schedule.workflow.name
        ):
            self.sim.run()
        missing = set(self.schedule.workflow.task_ids) - self._done
        if missing:
            raise SimulationError(
                f"simulation deadlocked; never completed: {sorted(missing)}"
            )
        billing = self.schedule.platform.billing
        for evm in self._vms:
            finals = [t for t in evm.queue if self._vm_of[t] is evm]
            if finals:
                starts = [self.result.task_start[t] for t in finals]
                ends = [self.result.task_finish[t] for t in finals]
                # last_active == max(ends) unless late attempts failed here
                end = max(max(ends), evm.last_active)
                window = (min(starts), evm.crashed_at if evm.crashed else end)
            elif evm.rent_open:
                # rented, but every execution attempt here was lost
                window = (
                    evm.rent_start,
                    evm.crashed_at if evm.crashed else evm.last_active,
                )
            else:
                continue  # never actually rented (e.g. replanned away)
            self.result.vm_windows[evm.name] = window
            if evm.crashed:
                # crash already recorded; rent runs to the BTU boundary
                uptime = evm.crashed_at - evm.rent_start
            else:
                self.result.record(TraceEvent(window[1], "vm_stop", "", evm.name))
                uptime = window[1] - evm.rent_start
            if self.stats is not None:
                cost = self._vm_cost(billing, evm, uptime)
                paid = billing.paid_seconds(uptime)
                self.result.vm_costs[evm.name] = cost
                self.stats.realized_cost += cost
                self.stats.paid_seconds += paid
                self.stats.wasted_btu_seconds += paid - evm.useful_seconds
        if self.stats is not None:
            self.result.faults = self.stats
        if self.tracer.enabled:
            self._emit_trace()
        if self.metrics is not None:
            self._emit_metrics()
        return self.result

    def _vm_cost(self, billing, evm: _ExecVM, uptime: float) -> float:
        """Realized rent of one VM: the fixed-price arithmetic outside
        market runs, the price integral (by purchase option) inside."""
        if self.market is None or evm.purchase is None:
            return billing.vm_cost(uptime, evm.itype, evm.region)
        assert self.fault_plan is not None
        return self.market.vm_cost(
            billing,
            self.fault_plan.seed,
            evm.rent_start,
            uptime,
            evm.itype,
            evm.region,
            evm.purchase,
        )

    def _emit_trace(self) -> None:
        """Project the replay onto simulated-time trace tracks: one
        track per VM, its rent window enclosing its task spans, with
        fault events as instants."""
        tracer = self.tracer
        # Distinct track namespace per replay: several replays sharing a
        # tracer would otherwise interleave partially-overlapping spans
        # on one "vm0" track, which the trace nesting check rejects.
        run = tracer.next_run()
        for evm in self._vms:
            window = self.result.vm_windows.get(evm.name)
            if window is not None:
                tracer.complete(
                    f"rent:{evm.name}",
                    window[0],
                    window[1] - window[0],
                    tid=f"run{run}:{evm.name}",
                    cat="sim.vm",
                    itype=evm.itype.name,
                )
        for tid, start in self.result.task_start.items():
            finish = self.result.task_finish.get(tid)
            if finish is None:
                continue
            tracer.complete(
                tid,
                start,
                finish - start,
                tid=f"run{run}:{self._vm_of[tid].name}",
                cat="sim.task",
            )
        for ev in self.result.events:
            if ev.kind in (
                "task_fail",
                "vm_crash",
                "vm_boot_fail",
                "vm_preempt",
                "spot_warning",
            ):
                tracer.instant(
                    f"{ev.kind}:{ev.task_id or ev.vm}",
                    ts=ev.time,
                    tid=f"run{run}:{ev.vm}",
                    cat="sim.fault",
                    detail=ev.detail,
                )
        tracer.counter("sim.makespan_seconds", self.result.makespan)

    def _emit_metrics(self) -> None:
        """Roll the replay's facts into the active metrics registry."""
        m = self.metrics
        assert m is not None
        billing = self.schedule.platform.billing
        rented = 0
        for evm in self._vms:
            window = self.result.vm_windows.get(evm.name)
            if window is None:
                continue
            rented += 1
            uptime = (evm.crashed_at if evm.crashed else window[1]) - evm.rent_start
            m.inc("executor.btus_billed", billing.btus(max(uptime, 0.0)))
        m.inc("executor.runs")
        m.inc("executor.vms_rented", rented)
        m.inc("executor.tasks_executed", len(self._done))
        m.inc("sim.events_processed", self.sim.processed_events)
        m.inc("sim.simulated_seconds", self.result.makespan)
        if self.stats is not None:
            m.inc("faults.task_failures", self.stats.task_failures)
            m.inc("faults.vm_crashes", self.stats.vm_crashes)
            m.inc("faults.boot_failures", self.stats.boot_failures)
            m.inc("recovery.tasks_retried", self.stats.retries)
            m.inc("recovery.tasks_resubmitted", self.stats.resubmits)
            m.inc("recovery.replans", self.stats.replans)
            # market counters only when the processes actually fired, so
            # zero-market runs keep their historical counter keys
            if self.stats.preemptions:
                m.inc("faults.preemptions", self.stats.preemptions)
            if self.stats.grace_warnings:
                m.inc("faults.grace_warnings", self.stats.grace_warnings)
            if self.stats.rebids:
                m.inc("recovery.rebids", self.stats.rebids)


def simulate_schedule(
    schedule: Schedule,
    check: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SimulationResult:
    """Replay *schedule* through the DES; with *check*, assert the
    observed timings equal the planned ones."""
    result = ScheduleExecutor(schedule, tracer=tracer, metrics=metrics).run()
    if check:
        result.check_against(schedule)
    return result


@removed_kwargs(faults="fault_plan", recovery_policy="recovery")
def run_with_faults(
    schedule: Schedule,
    fault_plan: FaultPlan,
    recovery: "str | RecoveryPolicy | None" = "retry",
    runtime_fn: Callable[[str, float], float] | None = None,
    max_events: int = 10_000_000,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SimulationResult:
    """Convenience wrapper: replay *schedule* under *fault_plan*.

    Returns a :class:`SimulationResult` whose ``faults``/``vm_costs``
    fields carry the robustness accounting.
    """
    return ScheduleExecutor(
        schedule,
        max_events=max_events,
        runtime_fn=runtime_fn,
        fault_plan=fault_plan,
        recovery=recovery,
        tracer=tracer,
        metrics=metrics,
    ).run()
