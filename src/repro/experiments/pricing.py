"""Pricing sweep: ranking provisioning policies under spot markets.

The paper prices every VM at the fixed on-demand list rate.  This
experiment re-ranks its provisioning policies when prices move: each
(policy, workflow) schedule is replayed through the market-aware
:class:`~repro.simulator.executor.ScheduleExecutor` over a grid of
price scenarios (a fixed-price control plus spot regimes, see
:func:`~repro.experiments.scenarios.price_scenarios`) crossed with
boot-delay settings (pre-booted vs cold starts with a warm pool),
replicated over market seeds.  The summary reports realized makespan
and rent per cell and the per-cell Pareto frontier — under a spot
market "cheap" and "fast" are genuinely competing objectives, because
the aggressive bidder saves rent but eats correlated reclamations.

Every cell is an independent work unit fanned out over an
:class:`~repro.experiments.parallel.ExecutionBackend` through the same
guarded map the fault sweep uses.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, strategy
from repro.experiments.parallel import (
    CellFailure,
    ExecutionBackend,
    make_backend,
    map_guarded,
)
from repro.experiments.pareto_front import dominates
from repro.experiments.result import ResultBase
from repro.experiments.scenarios import PriceScenario, price_scenarios
from repro.simulator.executor import ScheduleExecutor
from repro.simulator.faults import FaultPlan, FaultStats
from repro.util.ascii_plot import ascii_scatter
from repro.util.tables import format_table
from repro.workflows.dag import Workflow

#: the provisioning policies the pricing ranking compares (paper axis)
PRICING_POLICY_LABELS = (
    "OneVMperTask-s",
    "StartParNotExceed-s",
    "StartParExceed-s",
    "AllParNotExceed-s",
    "AllParExceed-s",
)


@dataclass(frozen=True)
class BootSetting:
    """One cold-start regime: how long a fresh VM takes to be usable."""

    name: str
    #: nominal provider boot time (platform axis; 0 keeps pre-booting)
    boot_seconds: float = 0.0
    prebooted: bool = True
    #: extra cold-start seconds on top of the nominal boot
    cold_seconds: float = 0.0
    #: boot-delay noise: "deterministic" or "lognormal"
    dist: str = "lognormal"
    #: first N acquisitions per flavor come from a warm pool
    warm_pool: int = 0
    warm_seconds: float = 0.0


def paper_boot_settings() -> Tuple[BootSetting, ...]:
    """The two boot regimes of the pricing grid: the paper's pre-booted
    ideal, and measured-EC2-style cold starts with a small warm pool."""
    return (
        BootSetting("prebooted"),
        BootSetting(
            "cold_start",
            boot_seconds=45.0,
            prebooted=False,
            cold_seconds=60.0,
            dist="lognormal",
            warm_pool=2,
            warm_seconds=5.0,
        ),
    )


@dataclass(frozen=True)
class PricingCell:
    """One (strategy, price scenario, boot setting, seed) grid unit."""

    spec: StrategySpec
    workflow_name: str
    workflow: Workflow
    platform: CloudPlatform
    scenario: PriceScenario
    boot: BootSetting
    seed: int


@dataclass(frozen=True)
class PricingCellResult:
    """Realized outcome of one market-priced replay."""

    strategy: str
    workflow: str
    scenario: str
    boot: str
    seed: int
    recovery: str
    planned_makespan: float
    planned_cost: float
    makespan: float
    cost: float
    stats: FaultStats

    @property
    def makespan_delta(self) -> float:
        return self.makespan - self.planned_makespan

    @property
    def cost_delta(self) -> float:
        return self.cost - self.planned_cost


def run_pricing_cell(cell: PricingCell) -> PricingCellResult:
    """Build the schedule and replay it under the cell's market sample
    (worker entry point — everything it touches pickles)."""
    boot = cell.boot
    platform = dataclasses.replace(
        cell.platform,
        boot_seconds=boot.boot_seconds,
        prebooted=boot.prebooted,
    )
    sched = cell.spec.run(cell.workflow, platform)
    plan = FaultPlan(
        seed=cell.seed,
        market=cell.scenario.market,
        boot_cold_seconds=boot.cold_seconds,
        boot_delay_dist=boot.dist,
        boot_warm_pool=boot.warm_pool,
        boot_warm_seconds=boot.warm_seconds,
    )
    result = ScheduleExecutor(
        sched, fault_plan=plan, recovery=cell.scenario.recovery
    ).run()
    assert result.faults is not None
    return PricingCellResult(
        strategy=cell.spec.label,
        workflow=cell.workflow_name,
        scenario=cell.scenario.name,
        boot=boot.name,
        seed=cell.seed,
        recovery=cell.scenario.recovery,
        planned_makespan=sched.makespan,
        planned_cost=sched.total_cost,
        makespan=result.makespan,
        cost=result.realized_cost,
        stats=result.faults,
    )


def pricing_cell_label(cell: PricingCell) -> str:
    return (
        f"{cell.spec.label}/{cell.workflow_name}"
        f"@{cell.scenario.name}/{cell.boot.name}#s{cell.seed}"
    )


@dataclass
class PricingSweepResult(ResultBase):
    """All cells of one pricing sweep, plus captured failures."""

    cells: List[PricingCellResult] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def strategies(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.strategy not in seen:
                seen.append(c.strategy)
        return seen

    def scenarios(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.scenario not in seen:
                seen.append(c.scenario)
        return seen

    def boots(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.boot not in seen:
                seen.append(c.boot)
        return seen

    def group(
        self, scenario: str, boot: str, strategy_label: str
    ) -> List[PricingCellResult]:
        return [
            c
            for c in self.cells
            if c.scenario == scenario
            and c.boot == boot
            and c.strategy == strategy_label
        ]

    # ------------------------------------------------------------------
    def mean_points(self, scenario: str, boot: str) -> Dict[str, Tuple[float, float]]:
        """Per-policy ``(cost, makespan)`` averaged over market seeds."""
        points: Dict[str, Tuple[float, float]] = {}
        for label in self.strategies():
            group = self.group(scenario, boot, label)
            if group:
                points[label] = (
                    _mean([g.cost for g in group]),
                    _mean([g.makespan for g in group]),
                )
        return points

    def frontier(self, scenario: str, boot: str) -> Tuple[str, ...]:
        """Non-dominated policies of one cell, fast -> cheap.

        A policy is dominated when another is at least as fast *and* as
        cheap (and strictly better on one axis) on the seed-averaged
        realized outcome.
        """
        points = self.mean_points(scenario, boot)
        metrics = {
            label: SimpleNamespace(cost=c, makespan=m)
            for label, (c, m) in points.items()
        }
        labels = list(metrics)
        dominated = {
            b
            for a in labels
            for b in labels
            if a != b and dominates(metrics[a], metrics[b])
        }
        return tuple(
            sorted(
                (l for l in labels if l not in dominated),
                key=lambda l: (points[l][1], points[l][0], l),
            )
        )

    # ------------------------------------------------------------------
    # ResultBase protocol
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The per-(scenario, boot) ranking tables and frontiers."""
        return render_pricing_sweep(self)

    def to_json(self) -> dict:
        return {
            "cells": [dataclasses.asdict(c) for c in self.cells],
            "failures": [str(f) for f in self.failures],
        }


def run_pricing_sweep(
    platform: CloudPlatform | None = None,
    workflow: Workflow | None = None,
    workflow_name: str = "montage",
    strategies: Sequence[StrategySpec] | None = None,
    scenarios: Sequence[PriceScenario] | None = None,
    boots: Sequence[BootSetting] | None = None,
    seeds: Iterable[int] | int = 3,
    jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    retries: int = 0,
    cell_timeout: float | None = None,
) -> PricingSweepResult:
    """Replay the provisioning policies across the pricing grid.

    ``seeds`` is either an iterable of market seeds or a count ``n``
    (meaning seeds ``0..n-1``).  Cells that abort (recovery budget
    exhausted under a hostile market) are captured as failures; the
    sweep still returns every surviving cell.
    """
    platform = platform or CloudPlatform.ec2()
    if workflow is None:
        from repro.experiments.config import paper_workflows

        try:
            workflow = paper_workflows()[workflow_name]
        except KeyError:
            raise ExperimentError(
                f"unknown paper workflow {workflow_name!r}"
            ) from None
    if strategies is None:
        strategies = [strategy(lbl) for lbl in PRICING_POLICY_LABELS]
    scenarios = list(scenarios) if scenarios is not None else price_scenarios()
    boots = list(boots) if boots is not None else list(paper_boot_settings())
    if isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = [int(s) for s in seeds]
    if not scenarios or not boots or not seed_list or not strategies:
        raise ExperimentError("pricing sweep needs at least one of each axis")

    cells = [
        PricingCell(
            spec=spec,
            workflow_name=workflow_name,
            workflow=workflow,
            platform=platform,
            scenario=sc,
            boot=boot,
            seed=s,
        )
        for spec in strategies
        for sc in scenarios
        for boot in boots
        for s in seed_list
    ]
    exec_backend = make_backend(backend, jobs)
    results, failures = map_guarded(
        exec_backend,
        run_pricing_cell,
        cells,
        label_fn=pricing_cell_label,
        retries=retries,
        timeout=cell_timeout,
    )
    return PricingSweepResult(
        cells=[r for r in results if r is not None],
        failures=failures,
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def render_pricing_sweep(sweep: PricingSweepResult) -> str:
    """One table per (price scenario, boot setting) cell plus the cell's
    Pareto frontier and a cost/makespan scatter of the policy menu."""
    blocks: List[str] = []
    for sc in sweep.scenarios():
        for boot in sweep.boots():
            frontier = sweep.frontier(sc, boot)
            rows: List[tuple] = []
            for label in sweep.strategies():
                group = sweep.group(sc, boot, label)
                if not group:
                    continue
                rows.append(
                    (
                        ("*" if label in frontier else " ") + label,
                        len(group),
                        _mean([g.stats.preemptions for g in group]),
                        _mean([g.stats.rebids for g in group]),
                        _mean([g.makespan for g in group]),
                        _mean([g.makespan_delta for g in group]),
                        _mean([g.cost for g in group]),
                        _mean([g.cost_delta for g in group]),
                    )
                )
            if not rows:
                continue
            table = format_table(
                [
                    "strategy (*=Pareto)",
                    "runs",
                    "preempt",
                    "rebids",
                    "makespan s",
                    "Δmakespan s",
                    "cost $",
                    "Δcost $",
                ],
                rows,
                float_fmt=".2f",
                title=f"Pricing sweep — scenario={sc}, boot={boot}",
            )
            plot = ascii_scatter(
                sweep.mean_points(sc, boot),
                xlabel="realized cost $",
                ylabel="realized makespan s",
                mark_origin=False,
                height=14,
            )
            blocks.append(
                table
                + "\nPareto frontier (fast -> cheap): "
                + (", ".join(frontier) or "(none)")
                + "\n"
                + plot
            )
    text = "\n\n".join(blocks)
    if sweep.failures:
        lost = "\n".join(f"  {f}" for f in sweep.failures)
        text += f"\n\nunrecovered cells ({len(sweep.failures)}):\n{lost}"
    return text
