"""Tests for the bag-of-tasks shape and its policy degeneracies."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.errors import WorkflowError
from repro.workflows.generators import bag_of_tasks


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestShape:
    def test_edgeless(self):
        wf = bag_of_tasks(10)
        assert len(wf) == 10
        assert wf.edges() == []
        assert wf.entry_tasks() == wf.task_ids

    def test_single_level(self):
        assert len(bag_of_tasks(7).levels()) == 1
        assert bag_of_tasks(7).max_parallelism() == 7

    def test_validation(self):
        with pytest.raises(WorkflowError):
            bag_of_tasks(0)
        with pytest.raises(WorkflowError):
            bag_of_tasks(5, work=0.0)


class TestPolicyDegeneracies:
    def test_startpar_degenerates_to_onevm(self, platform):
        """Every BoT task is an initial task, so StartPar* rents per
        task exactly like OneVMperTask."""
        wf = bag_of_tasks(12)
        one = HeftScheduler("OneVMperTask").schedule(wf, platform)
        for policy in ("StartParNotExceed", "StartParExceed"):
            sched = HeftScheduler(policy).schedule(wf, platform)
            assert sched.vm_count == one.vm_count == 12
            assert sched.total_cost == pytest.approx(one.total_cost)
            assert sched.makespan == pytest.approx(one.makespan)

    def test_allpar_also_spreads_single_level(self, platform):
        """One level of 12 parallel tasks: AllPar rents one VM each, but
        packing is impossible — the provisioning choice only matters once
        dependencies exist (the paper's BoT-vs-workflow contrast)."""
        wf = bag_of_tasks(12)
        sched = AllParScheduler(exceed=True).schedule(wf, platform)
        assert sched.vm_count == 12

    def test_short_bot_fits_single_btu_when_packed(self, platform):
        """With a second level added (a sink), AllPar can pack; without
        it, cost is n BTUs no matter the policy."""
        wf = bag_of_tasks(10, work=300.0)
        for policy in ("OneVMperTask", "StartParExceed"):
            sched = HeftScheduler(policy).schedule(wf, platform)
            assert sched.total_btus == 10
