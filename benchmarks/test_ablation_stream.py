"""Ablation: instance-intensive streams (related work: Liu et al.).

Many instances of one workflow arrive over time onto a shared elastic
fleet.  Staggered arrivals let instances reuse VMs still alive inside
their BTU horizons, cutting the cost per instance; a simultaneous burst
is the degenerate extreme — every instance finds every VM busy, reuse
collapses, and the fleet balloons back to sparse-arrival size.  This is
the throughput economics the paper's single-instance evaluation cannot
see.
"""

from benchmarks.conftest import save_artifact
from repro.simulator.stream import poisson_stream, run_stream
from repro.util.tables import format_table
from repro.workflows.generators import mapreduce

INSTANCES = 8
POLICY = "AllParExceed"
INTERARRIVALS = (30_000.0, 6_000.0, 1_000.0, 0.0)  # sparse -> burst


def _study(platform):
    wf = mapreduce(mappers=4, reducers=2)
    rows = []
    for mean_gap in INTERARRIVALS:
        subs = poisson_stream(wf, INSTANCES, mean_gap, seed=7)
        result = run_stream(subs, platform, policy=POLICY)
        rows.append(
            (
                f"{mean_gap:.0f}s",
                result.total_cost / INSTANCES,
                result.vm_count,
                result.mean_response,
                result.idle_seconds / INSTANCES,
            )
        )
    return rows


def test_stream_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    cost_per_instance = [r[1] for r in rows]
    sparse, mid, dense, burst = cost_per_instance

    # staggered arrivals reuse VMs still alive between instances: the
    # denser the staggering, the cheaper per instance
    assert dense < mid < sparse

    # the burst is the degenerate case: simultaneous instances find no
    # idle VMs, so reuse collapses back toward the sparse cost
    assert burst > dense

    # fleet size tracks the same story
    vms = [r[2] for r in rows]
    assert vms[2] < vms[1] < vms[0]

    # responses stay finite and recorded for all regimes
    assert all(r[3] > 0 for r in rows)

    save_artifact(
        artifact_dir,
        "ablation_stream.txt",
        format_table(
            ["mean gap", "cost/instance $", "VMs", "mean response s", "idle/instance s"],
            rows,
            float_fmt=".2f",
            title=f"Instance-intensive stream ({INSTANCES}x MapReduce, {POLICY})",
        ),
    )
