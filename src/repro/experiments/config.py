"""The 19 strategies and 4 workflows of the paper's evaluation.

Figure 4's legend enumerates exactly nineteen strategies: the five
provisioning policies at three instance sizes (``-s``, ``-m``, ``-l``;
xlarge is in the platform but only reachable through the dynamic
upgraders), plus CPA-Eager, GAIN, AllPar1LnS and AllPar1LnSDyn.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.allpar1lns import (
    AllPar1LnSDynScheduler,
    AllPar1LnSScheduler,
)
from repro.core.allocation.base import SchedulingAlgorithm
from repro.core.allocation.cpa_eager import CpaEagerScheduler
from repro.core.allocation.gain import GainScheduler
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.schedule import Schedule
from repro.util.suggest import unknown_name_message
from repro.errors import ExperimentError
from repro.workflows.dag import Workflow
from repro.workflows.generators import cstem, mapreduce, montage, sequential


@dataclass(frozen=True)
class StrategySpec:
    """One legend entry of Figure 4: an algorithm + instance size."""

    label: str
    algorithm_factory: Callable[[], SchedulingAlgorithm]
    itype_name: str = "small"
    #: dynamic strategies pick sizes themselves; itype is their start size
    dynamic: bool = False

    def run(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        region: Region | None = None,
    ) -> Schedule:
        algo = self.algorithm_factory()
        itype: InstanceType = platform.itype(self.itype_name)
        return algo.schedule(workflow, platform, itype=itype, region=region)


_SIZES = ("small", "medium", "large")
_SUFFIX = {"small": "s", "medium": "m", "large": "l"}


def _homogeneous_specs() -> List[StrategySpec]:
    # functools.partial instead of lambdas so a StrategySpec pickles
    # across process-pool workers (repro.experiments.parallel).
    specs: List[StrategySpec] = []
    for size in _SIZES:
        sfx = _SUFFIX[size]
        specs.append(
            StrategySpec(
                f"StartParNotExceed-{sfx}",
                partial(HeftScheduler, "StartParNotExceed"),
                size,
            )
        )
        specs.append(
            StrategySpec(
                f"StartParExceed-{sfx}",
                partial(HeftScheduler, "StartParExceed"),
                size,
            )
        )
        specs.append(
            StrategySpec(
                f"AllParExceed-{sfx}", partial(AllParScheduler, exceed=True), size
            )
        )
        specs.append(
            StrategySpec(
                f"AllParNotExceed-{sfx}", partial(AllParScheduler, exceed=False), size
            )
        )
        specs.append(
            StrategySpec(
                f"OneVMperTask-{sfx}", partial(HeftScheduler, "OneVMperTask"), size
            )
        )
    return specs


def _dynamic_specs() -> List[StrategySpec]:
    return [
        StrategySpec("CPA-Eager", CpaEagerScheduler, "small", dynamic=True),
        StrategySpec("GAIN", GainScheduler, "small", dynamic=True),
        StrategySpec("AllPar1LnS", AllPar1LnSScheduler, "small", dynamic=False),
        StrategySpec("AllPar1LnSDyn", AllPar1LnSDynScheduler, "small", dynamic=True),
    ]


def paper_strategies() -> List[StrategySpec]:
    """The nineteen Figure-4 strategies, in the paper's legend order."""
    order = [
        "StartParNotExceed-s",
        "StartParExceed-s",
        "AllParExceed-s",
        "AllParNotExceed-s",
        "OneVMperTask-s",
        "StartParNotExceed-m",
        "StartParExceed-m",
        "AllParExceed-m",
        "AllParNotExceed-m",
        "OneVMperTask-m",
        "StartParNotExceed-l",
        "StartParExceed-l",
        "AllParExceed-l",
        "AllParNotExceed-l",
        "OneVMperTask-l",
    ]
    by_label = {s.label: s for s in _homogeneous_specs()}
    return [by_label[lbl] for lbl in order] + _dynamic_specs()


def strategy(label: str) -> StrategySpec:
    """Look up one of the paper's strategies by its Figure-4 label."""
    specs = paper_strategies()
    for spec in specs:
        if spec.label.lower() == label.lower():
            return spec
    raise ExperimentError(
        unknown_name_message("strategy label", label, (s.label for s in specs))
    )


def paper_workflows() -> Dict[str, Workflow]:
    """The four Figure-2 workflow shapes with their default sizes."""
    return {
        "montage": montage(),
        "cstem": cstem(),
        "mapreduce": mapreduce(),
        "sequential": sequential(),
    }
