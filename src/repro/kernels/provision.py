"""Fused columnar placement kernels for the paper's provisioning loops.

Each kernel runs one (allocation order x provisioning policy) pass with
all per-task and per-VM state held in flat Python lists over the
:class:`~repro.kernels.columnar.ColumnarDAG` index — no ``BuilderVM``
objects, no per-placement dicts, no memo-dict lookups in
``platform.transfer_time`` — and assembles the final :class:`Schedule`
plus a vectorized feasibility validation at the end.

The kernels are *transcriptions*, not re-designs: every branch mirrors
the corresponding :class:`~repro.core.builder.ScheduleBuilder` query and
the policy's ``select_vm`` exactly, including

* the float operations (single additions, ``max`` folds over the same
  operands, the ``1e-9`` reuse/fit epsilons, BTU rounding via
  ``max(1, ceil(uptime/btu - 1e-9))``),
* the heap/pool disciplines (stale-stamp entries dropped on pop,
  rejected candidates deferred, the chosen level-pool entry consumed,
  the chosen busy-heap entry kept),
* and the ``MetricsRegistry`` counter semantics — one data-ready memo
  miss per task on its first generic evaluation, a hit per repeat, no
  counters on the exact predecessor-hosting path, totals flushed once
  at the end (key-identical because zero totals are not flushed).

Eligibility is decided by the dispatch sites (size threshold + stock
model types + no fleet/region-chooser/metrics-kwarg extras — see
:mod:`repro.kernels.dispatch`); the property tests in
``tests/core/test_kernel_equivalence.py`` assert byte-identical
schedules and counters against the indexed kernels.
"""

from __future__ import annotations

import heapq
import math
from typing import List

import numpy as np

from repro.cloud.vm import VM, Placement
from repro.core.schedule import Schedule
from repro.errors import InvalidScheduleError
from repro.kernels.columnar import (
    get_columnar,
    remote_transfer_seconds,
    upward_rank_values,
)
from repro.obs.metrics import current as current_metrics

__all__ = ["fused_level_schedule", "fused_heft_schedule"]

_INF = float("inf")
_EPS = 1e-6


class _State:
    """Shared flat state + closures of one fused placement run."""

    __slots__ = (
        "n",
        "runt",
        "runt_v",
        "pp",
        "pi",
        "rtr",
        "sr",
        "tstart",
        "tfin",
        "tvm",
        "dr_gen",
        "pred_vms",
        "vm_order",
        "vm_busy",
        "vm_ready",
        "vm_startt",
        "vm_paid",
        "stamps",
        "ctr",
        "cold",
        "boot",
        "btu",
        "rent",
        "reuse_pred",
        "reuse_pool",
    )

    def __init__(self, cd, platform, itype) -> None:
        self.n = cd.n
        self.runt_v = cd.works / itype.speedup
        self.runt = self.runt_v.tolist()
        self.pp = cd.pred_ptr.tolist()
        self.pi = cd.pred_idx.tolist()
        self.rtr = remote_transfer_seconds(cd.pred_gb, platform, itype).tolist()
        self.sr = cd.str_rank.tolist()
        n = self.n
        self.tstart = [0.0] * n
        self.tfin = [0.0] * n
        self.tvm = [-1] * n
        #: per-task memoized generic (non-predecessor-hosting) data-ready
        self.dr_gen: List = [None] * n
        #: per-task memoized set of predecessor-hosting VM ids (fixed
        #: once the predecessors are placed — allocation order is
        #: topological); keeps ``es`` O(1) on wide fan-in tasks
        self.pred_vms: List = [None] * n
        # preallocated to the VM-count ceiling (one per task); only the
        # first ``len(vm_order)`` slots are live
        self.vm_order: List[List[int]] = []
        self.vm_busy: List[float] = [0.0] * n
        self.vm_ready: List[float] = [0.0] * n
        self.vm_startt: List[float] = [0.0] * n
        self.vm_paid: List[float] = [_INF] * n
        self.stamps: List[int] = [0] * n
        #: [memo misses, memo hits]
        self.ctr = [0, 0]
        self.cold = not platform.prebooted
        self.boot = platform.boot_seconds
        self.btu = platform.billing.btu_seconds
        self.rent = 0
        self.reuse_pred = 0
        self.reuse_pool = 0

    # ------------------------------------------------------------------
    def es(self, t: int, v: int) -> float:
        """``ScheduleBuilder.earliest_start`` over the flat state —
        including the per-call data-ready counter semantics."""
        pp = self.pp
        lo = pp[t]
        hi = pp[t + 1]
        ready = self.vm_ready[v]
        if lo != hi:
            pi = self.pi
            tvm = self.tvm
            tfin = self.tfin
            pv = self.pred_vms[t]
            if pv is None:
                pv = self.pred_vms[t] = {tvm[pi[e]] for e in range(lo, hi)}
            if v in pv:
                # exact per-predecessor pass (same_vm transfers are 0.0;
                # fin + 0.0 == fin for fin > 0), never counted
                rtr = self.rtr
                best = 0.0
                for e in range(lo, hi):
                    p = pi[e]
                    cand = tfin[p] if tvm[p] == v else tfin[p] + rtr[e]
                    if cand > best:
                        best = cand
            else:
                # all candidate VMs share one (flavor, region): the
                # builder's per-task memo collapses to a single slot
                best = self.dr_gen[t]
                if best is None:
                    self.ctr[0] += 1
                    rtr = self.rtr
                    best = 0.0
                    for e in range(lo, hi):
                        cand = tfin[pi[e]] + rtr[e]
                        if cand > best:
                            best = cand
                    self.dr_gen[t] = best
                else:
                    self.ctr[1] += 1
            if best > ready:
                ready = best
        if self.cold and not self.vm_order[v]:
            ready += self.boot
        return ready

    def new_vm(self) -> int:
        # slots are preallocated with fresh-VM defaults and never
        # recycled, so claiming one is just growing the order list
        v = len(self.vm_order)
        self.vm_order.append([])
        return v

    def place(self, t: int, v: int) -> None:
        """``ScheduleBuilder.place`` + eager paid-horizon maintenance."""
        s = self.es(t, v)
        d = self.runt[t]
        f = s + d
        order = self.vm_order[v]
        if not order:
            self.vm_startt[v] = s
        order.append(t)
        self.tvm[t] = v
        self.tstart[t] = s
        self.tfin[t] = f
        self.vm_ready[v] = f
        self.vm_busy[v] += d
        self.stamps[v] += 1
        up = f - self.vm_startt[v]
        btu = self.btu
        k = math.ceil(up / btu - 1e-9)
        if k < 1:
            k = 1
        self.vm_paid[v] = self.vm_startt[v] + k * btu

    def largest_pred_vm(self, t: int) -> int:
        """``vm_of_largest_predecessor``: max over placed predecessors by
        ``(execution time, id)`` — ids are unique, so the max is too."""
        lo = self.pp[t]
        hi = self.pp[t + 1]
        if lo == hi:
            return -1
        pi = self.pi
        tfin = self.tfin
        tstart = self.tstart
        sr = self.sr
        bd = -1.0
        bs = -1
        pv = -1
        for e in range(lo, hi):
            p = pi[e]
            d = tfin[p] - tstart[p]
            if d > bd or (d == bd and sr[p] > bs):
                bd = d
                bs = sr[p]
                pv = self.tvm[p]
        return pv

    def flush_metrics(self) -> None:
        metrics = current_metrics()
        if metrics is None:
            return
        metrics.inc("builder.vms_rented", len(self.vm_order))
        metrics.inc("builder.tasks_placed", self.n)
        if self.ctr[0]:
            metrics.inc("builder.data_ready_memo_misses", self.ctr[0])
        if self.ctr[1]:
            metrics.inc("builder.data_ready_memo_hits", self.ctr[1])
        if self.rent:
            metrics.inc("provision.rent", self.rent)
        if self.reuse_pred:
            metrics.inc("provision.reuse_pred", self.reuse_pred)
        if self.reuse_pool:
            metrics.inc("provision.reuse_pool", self.reuse_pool)


# ----------------------------------------------------------------------
# AllPar[Not]Exceed over level order
# ----------------------------------------------------------------------
def fused_level_schedule(
    workflow,
    platform,
    itype,
    region,
    exceed: bool,
    descending_exec: bool,
    algorithm: str,
    provisioning: str,
) -> Schedule:
    """Level-ranked AllPar[Not]Exceed as one fused pass."""
    cd = get_columnar(workflow)
    st = _State(cd, platform, itype)
    es = st.es
    place = st.place
    runt = st.runt
    stamps = st.stamps
    vm_paid = st.vm_paid
    vm_order = st.vm_order
    require_fit = not exceed
    order, lv_starts = cd.level_groups()
    neg_runt = -st.runt_v
    sr_v = cd.str_rank
    #: per-VM last hosted level — levels are packed in ascending order,
    #: so "hosts the current level" is exactly ``vm_lastlvl == lvl``
    vm_lastlvl: List[int] = []
    pool: list = []
    pool_lvl = -1

    for lvl in range(cd.n_levels):
        nodes = order[lv_starts[lvl] : lv_starts[lvl + 1]]
        if descending_exec:
            sel = np.lexsort((sr_v[nodes], neg_runt[nodes]))
        else:
            sel = np.lexsort((sr_v[nodes], st.runt_v[nodes]))
        tasks = nodes[sel].tolist()
        parallel = len(tasks) > 1
        for t in tasks:
            pv = st.largest_pred_vm(t)
            if parallel:
                # qualifies_for_level on the largest predecessor's VM:
                # level exclusion, then is_reusable, then the fit —
                # each with its own earliest-start evaluation
                ok = False
                if pv != -1 and vm_lastlvl[pv] != lvl:
                    ok = es(t, pv) <= vm_paid[pv] + 1e-9
                    if ok and require_fit:
                        ok = es(t, pv) + runt[t] <= vm_paid[pv] + 1e-9
                if ok:
                    st.reuse_pred += 1
                    place(t, pv)
                    vm_lastlvl[pv] = lvl
                    continue
                # best_level_candidate: pool rebuilt on first query per
                # level, stale/claimed entries dropped, task-specific
                # rejections deferred, the chosen entry consumed
                if pool_lvl != lvl:
                    pool = [
                        (-st.vm_busy[v], v, stamps[v])
                        for v in range(len(vm_order))
                        if vm_order[v] and vm_lastlvl[v] != lvl
                    ]
                    heapq.heapify(pool)
                    pool_lvl = lvl
                chosen = -1
                deferred = []
                while pool:
                    entry = heapq.heappop(pool)
                    vid = entry[1]
                    if entry[2] != stamps[vid] or vm_lastlvl[vid] == lvl:
                        continue
                    ok = es(t, vid) <= vm_paid[vid] + 1e-9
                    if ok and require_fit:
                        ok = es(t, vid) + runt[t] <= vm_paid[vid] + 1e-9
                    if ok:
                        chosen = vid
                        break
                    deferred.append(entry)
                for entry in deferred:
                    heapq.heappush(pool, entry)
                if chosen != -1:
                    st.reuse_pool += 1
                    place(t, chosen)
                    vm_lastlvl[chosen] = lvl
                else:
                    st.rent += 1
                    v = st.new_vm()
                    vm_lastlvl.append(-1)
                    place(t, v)
                    vm_lastlvl[v] = lvl
            else:
                # sequential task: largest predecessor's VM when it is
                # still alive (and fits, for NotExceed), else rent
                ok = False
                if pv != -1:
                    ok = es(t, pv) <= vm_paid[pv] + 1e-9
                    if ok and require_fit:
                        ok = es(t, pv) + runt[t] <= vm_paid[pv] + 1e-9
                if ok:
                    st.reuse_pred += 1
                    place(t, pv)
                    vm_lastlvl[pv] = lvl
                else:
                    st.rent += 1
                    v = st.new_vm()
                    vm_lastlvl.append(-1)
                    place(t, v)
                    vm_lastlvl[v] = lvl

    st.flush_metrics()
    return _assemble(workflow, platform, itype, region, cd, st, algorithm, provisioning)


# ----------------------------------------------------------------------
# StartPar[Not]Exceed / OneVMperTask over HEFT order
# ----------------------------------------------------------------------
def fused_heft_schedule(
    workflow,
    platform,
    itype,
    region,
    policy: str,
    exceed: bool,
    include_transfers: bool,
    algorithm: str,
    provisioning: str,
) -> Schedule:
    """Rank-ordered StartPar*/OneVMperTask as one fused pass.

    *policy* is ``"startpar"`` or ``"onevm"``; *exceed* only applies to
    the former (the ``try_all_vms`` variant is not fused — the dispatch
    site keeps it on the indexed kernels).
    """
    cd = get_columnar(workflow)
    st = _State(cd, platform, itype)
    es = st.es
    place = st.place
    runt = st.runt
    pp = st.pp
    stamps = st.stamps
    vm_paid = st.vm_paid
    vm_order = st.vm_order
    ranks = upward_rank_values(workflow, platform, itype, include_transfers)
    order = np.lexsort((cd.str_rank, -ranks)).tolist()

    if policy == "onevm":
        # never queries the busy heap, so (like the lazy indexed
        # builder) none is ever built
        for t in order:
            st.rent += 1
            place(t, st.new_vm())
        st.flush_metrics()
        return _assemble(
            workflow, platform, itype, region, cd, st, algorithm, provisioning
        )

    busy_heap: list = []
    heap_live = False

    for t in order:
        if pp[t] == pp[t + 1]:  # entry task: always its own VM
            st.rent += 1
            v = st.new_vm()
            place(t, v)
            if heap_live:
                heapq.heappush(busy_heap, (-st.vm_busy[v], v, stamps[v]))
            continue
        # busiest_reusable: built lazily on first query; the current
        # entry is kept (deferred) whether or not it is chosen
        if not heap_live:
            busy_heap = [
                (-st.vm_busy[v], v, stamps[v])
                for v in range(len(vm_order))
                if vm_order[v]
            ]
            heapq.heapify(busy_heap)
            heap_live = True
        target = -1
        deferred = []
        while busy_heap:
            entry = heapq.heappop(busy_heap)
            vid = entry[1]
            if entry[2] != stamps[vid]:
                continue
            deferred.append(entry)
            if es(t, vid) <= vm_paid[vid] + 1e-9:
                target = vid
                break
        for entry in deferred:
            heapq.heappush(busy_heap, entry)
        if target == -1:
            st.rent += 1
            v = st.new_vm()
        elif exceed or es(t, target) + runt[t] <= vm_paid[target] + 1e-9:
            st.reuse_pool += 1
            v = target
        else:
            st.rent += 1
            v = st.new_vm()
        place(t, v)
        heapq.heappush(busy_heap, (-st.vm_busy[v], v, stamps[v]))

    st.flush_metrics()
    return _assemble(workflow, platform, itype, region, cd, st, algorithm, provisioning)


# ----------------------------------------------------------------------
# schedule assembly + vectorized validation
# ----------------------------------------------------------------------
def _assemble(
    workflow, platform, itype, region, cd, st: _State, algorithm: str, provisioning: str
) -> Schedule:
    """Freeze the flat state into a validated :class:`Schedule`.

    Mirrors ``ScheduleBuilder.build`` (placement end is
    ``start + (finish - start)``, the exact IEEE ops of the indexed
    freeze) and ``Schedule.validate`` (durations, per-VM serialization,
    dependency + transfer feasibility), then marks the schedule checked
    so the object-walking ``validate()`` short-circuits.
    """
    n = st.n
    starts = np.asarray(st.tstart)
    fins = np.asarray(st.tfin)
    ends = starts + (fins - starts)
    runt_v = st.runt_v
    ids = cd.ids
    region = region or platform.default_region

    def vm_name(v: int) -> str:
        return f"vm{v}-{itype.short}"

    # (c) durations equal work / speedup
    bad = np.flatnonzero(np.abs((ends - starts) - runt_v) > _EPS * np.maximum(1.0, runt_v))
    if bad.size:
        t = int(bad[0])
        expect = float(runt_v[t])
        got = float(ends[t] - starts[t])
        raise InvalidScheduleError(
            f"{vm_name(st.tvm[t])}: {ids[t]!r} runs {got:.6f}s, "
            f"expected {expect:.6f}s on {itype.name}"
        )
    # (a) per-VM non-overlap: placements are appended in start order, so
    # adjacent rows of the per-VM sequences are the sorted pairs
    if n > 1:
        seq = np.fromiter(
            (t for o in st.vm_order for t in o), dtype=np.int64, count=n
        )
        lens = np.fromiter(
            (len(o) for o in st.vm_order), dtype=np.int64, count=len(st.vm_order)
        )
        inner = np.ones(n - 1, dtype=bool)
        inner[np.cumsum(lens)[:-1] - 1] = False
        a = seq[:-1]
        b = seq[1:]
        viol = inner & (ends[a] > starts[b] + _EPS)
        if viol.any():
            i = int(np.flatnonzero(viol)[0])
            raise InvalidScheduleError(
                f"{vm_name(st.tvm[seq[i]])}: {ids[seq[i]]!r} and "
                f"{ids[seq[i + 1]]!r} overlap"
            )
    # (b) dependencies + transfers
    if cd.n_edges:
        u = np.repeat(np.arange(n, dtype=np.int64), np.diff(cd.succ_ptr))
        v = cd.succ_idx
        tvm_v = np.asarray(st.tvm)
        dt = np.where(
            tvm_v[u] == tvm_v[v],
            0.0,
            remote_transfer_seconds(cd.succ_gb, platform, itype),
        )
        viol = starts[v] + _EPS < ends[u] + dt
        if viol.any():
            i = int(np.flatnonzero(viol)[0])
            raise InvalidScheduleError(
                f"dependency violated: {ids[int(v[i])]!r} starts at "
                f"{float(starts[v[i]]):.3f} but {ids[int(u[i])]!r} finishes at "
                f"{float(ends[u[i]]):.3f} + transfer {float(dt[i]):.3f}"
            )

    starts_l = starts.tolist()
    ends_l = ends.tolist()
    boot = platform.boot_seconds
    vms: List[VM] = []
    task_vm: dict = {}
    task_placement: dict = {}
    new_vm = VM.__new__
    new_p = Placement.__new__
    for o in st.vm_order:
        # direct dict fill skips the frozen-dataclass init; the
        # ``__post_init__`` range invariant (0 <= start <= end) holds by
        # construction — starts are chained ``max`` folds over values
        # >= 0 and the duration check above pinned ``end - start`` to
        # the non-negative runtime
        placements = []
        addp = placements.append
        for t in o:
            p = new_p(Placement)
            d = p.__dict__
            d["task_id"] = ids[t]
            d["start"] = starts_l[t]
            d["end"] = ends_l[t]
            addp(p)
        # direct construction: same state ``VM(...)`` would produce
        # (placements appended in start order, so ``_max_end`` is the
        # last end), without 50k dataclass-init walks
        vm = new_vm(VM)
        vm.id = len(vms)
        vm.itype = itype
        vm.region = region
        vm.boot_seconds = boot
        vm.placements = placements
        vm._max_end = placements[-1].end if placements else float("-inf")
        vms.append(vm)
        for t, p in zip(o, placements):
            tid = ids[t]
            task_vm[tid] = vm
            task_placement[tid] = p
    # the pre-built maps cover every task exactly once by construction,
    # so ``__post_init__`` skips its indexing walk
    sched = Schedule(
        workflow=workflow,
        platform=platform,
        vms=vms,
        algorithm=algorithm,
        provisioning=provisioning,
        _task_vm=task_vm,
        _task_placement=task_placement,
    )
    object.__setattr__(sched, "_checked", True)
    return sched
