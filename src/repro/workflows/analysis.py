"""Structural and workload analysis of workflows.

The statistics behind the paper's workflow taxonomy (Sect. IV-B / Table
V): parallelism profile, cross-level "intermingledness" (Montage),
serial fraction (CSTEM/Sequential), runtime heterogeneity, and the
communication-to-computation ratio that separates CPU-intensive from
data-intensive instances.  Used by :mod:`repro.core.adaptive` and
available standalone for workload characterization studies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict

from repro.workflows.dag import Workflow


@dataclass(frozen=True)
class WorkflowProfile:
    """Quantitative fingerprint of one workflow instance."""

    name: str
    tasks: int
    edges: int
    levels: int
    max_width: int
    #: mean tasks per level — the paper's effective parallelism
    avg_width: float
    #: fraction of levels holding exactly one task
    serial_fraction: float
    #: fraction of edges skipping at least one level
    level_skip_fraction: float
    #: coefficient of variation of task runtimes
    runtime_cv: float
    mean_runtime: float
    total_work: float
    critical_path_seconds: float
    #: total data volume (GB) over all edges
    total_data_gb: float
    #: communication-to-computation ratio: total transfer seconds on a
    #: 1 Gb/s link over total work seconds
    ccr: float

    @property
    def parallel_efficiency(self) -> float:
        """total work / (critical path * max width): 1.0 means the DAG
        keeps its widest fleet perfectly busy."""
        denom = self.critical_path_seconds * self.max_width
        return self.total_work / denom if denom > 0 else 0.0


def profile(wf: Workflow, link_gbps: float = 1.0) -> WorkflowProfile:
    """Compute the :class:`WorkflowProfile` of *wf*."""
    wf.validate()
    levels = wf.levels()
    level_of = wf.level_of()
    edges = wf.edges()
    works = [t.work for t in wf.tasks]
    mean_rt = statistics.fmean(works)
    cv = statistics.pstdev(works) / mean_rt if mean_rt > 0 else 0.0
    skip = (
        sum(1 for u, v, _ in edges if level_of[v] - level_of[u] > 1) / len(edges)
        if edges
        else 0.0
    )
    total_work = sum(works)
    total_gb = sum(gb for _, _, gb in edges)
    transfer_seconds = total_gb * 8.0 / link_gbps
    _, cp = wf.critical_path()
    return WorkflowProfile(
        name=wf.name,
        tasks=len(wf),
        edges=len(edges),
        levels=len(levels),
        max_width=wf.max_parallelism(),
        avg_width=len(wf) / len(levels),
        serial_fraction=sum(1 for lvl in levels if len(lvl) == 1) / len(levels),
        level_skip_fraction=skip,
        runtime_cv=cv,
        mean_runtime=mean_rt,
        total_work=total_work,
        critical_path_seconds=cp,
        total_data_gb=total_gb,
        ccr=transfer_seconds / total_work if total_work > 0 else 0.0,
    )


def compare_profiles(workflows: Dict[str, Workflow]) -> Dict[str, WorkflowProfile]:
    """Profile several workflows at once (keyed as given)."""
    return {name: profile(wf) for name, wf in workflows.items()}
