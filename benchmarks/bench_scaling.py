"""Large-workflow scaling benchmark and perf-regression gate.

Times the full generate -> provision -> allocate -> validate pipeline at
1k / 10k / 50k / 200k tasks for each provisioning family (AllPar* under
the level scheduler, StartPar* and OneVMperTask under HEFT), plus the
pre-index ``*Reference`` kernels at 10k tasks so the speedup of the
indexed kernels is measured, not asserted.  Trace equivalence is
measured on every run, complementing the property tests: at 1k tasks
the indexed kernels are compared to the quadratic reference, and at 50k
the columnar fused kernels (the default at that size) are compared to
the indexed ones.  A full refresh also runs a single-shot 1M-task
completion smoke through one policy.

Results go to ``BENCH_scaling.json`` at the repo root (``make
bench-scaling`` refreshes it).  ``--check`` re-runs the small sizes and
fails when any cell is more than ``--tolerance`` (default 25%) slower
than the committed baseline — the ``make bench-check`` regression gate.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling.py
    PYTHONPATH=src python benchmarks/bench_scaling.py --check
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.cloud.platform import CloudPlatform
from repro.core.allocation import HeftScheduler, LevelScheduler
from repro.core.provisioning import PROVISIONING_POLICIES, REFERENCE_POLICIES
from repro.kernels.dispatch import columnar_disabled
from repro.workflows.generators import mapreduce, montage

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_scaling.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: montage(p) has 3p + 6 tasks — parameters chosen so the generated DAG
#: lands on ~the advertised task count
SIZES = {
    "1k": 332,      # montage(332)   -> 1002 tasks
    "10k": 3332,    # montage(3332)  -> 10002 tasks
    "50k": 16665,   # montage(16665) -> 50001 tasks
    "200k": 66665,  # montage(66665) -> 200001 tasks
}

#: the 1M-task smoke: one policy, one shot — proves the columnar path
#: completes at paper-beyond scale, not a timing cell
SMOKE_1M_PROJECTIONS = 333331  # montage(333331) -> 999999 tasks
SMOKE_1M_POLICY = ("AllParExceed", "level")

#: minimum absolute slowdown (on top of the ratio tolerance) before the
#: regression gate fires — sub-second cells swing by ~100ms from
#: scheduler jitter alone on a shared 1-core host
ABS_SLACK_SECONDS = 0.15

#: the paper's pairing: AllPar* needs level knowledge, the rest HEFT
FAMILIES = [
    ("AllParExceed", "level"),
    ("AllParNotExceed", "level"),
    ("StartParExceed", "heft"),
    ("StartParNotExceed", "heft"),
    ("OneVMperTask", "heft"),
]

#: reference kernels are quadratic: only timed at this size
REFERENCE_SIZE = "10k"
#: trace equivalence vs the quadratic *Reference kernels at this size
EQUIVALENCE_SIZE = "1k"
#: trace equivalence of the columnar kernels vs the indexed kernels at
#: this size (the quadratic reference is infeasible here, but the
#: indexed kernels are themselves reference-identical — see the 1k
#: column — so the chain closes)
COLUMNAR_EQUIVALENCE_SIZE = "50k"


def _scheduler(kind: str, policy) -> object:
    cls = LevelScheduler if kind == "level" else HeftScheduler
    return cls(policy)


def _fingerprint(schedule):
    return (
        tuple(
            (
                vm.id,
                vm.itype.name,
                vm.region.name,
                vm.boot_seconds,
                tuple((p.task_id, p.start, p.end) for p in vm.placements),
            )
            for vm in schedule.vms
        ),
        schedule.makespan,
        schedule.total_cost,
    )


#: best-of-N repeats per size — single-shot wall timings swing by tens
#: of percent on shared containers, which is noise the 25% gate cannot
#: absorb; the 200k cell stays single-shot to keep refreshes bounded
REPEATS = {"1k": 3, "10k": 3, "50k": 3, "200k": 1}


def _time_pipeline(projections: int, kind: str, policy_factory, platform,
                   repeats: int = 1):
    """Best-of-*repeats* wall-clock of the full pipeline; returns
    (seconds, schedule).  A fresh policy instance per repeat."""
    best, schedule = None, None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        wf = montage(projections)
        schedule = _scheduler(kind, policy_factory()).schedule(wf, platform)
        seconds = time.perf_counter() - t0
        best = seconds if best is None else min(best, seconds)
    return best, schedule


def bench(sizes: dict) -> dict:
    platform = CloudPlatform.ec2()
    cells = {}
    for policy_name, kind in FAMILIES:
        row = {}
        for size_label, projections in sizes.items():
            seconds, schedule = _time_pipeline(
                projections,
                kind,
                PROVISIONING_POLICIES[policy_name],
                platform,
                repeats=REPEATS.get(size_label, 1),
            )
            entry = {
                "seconds": round(seconds, 4),
                "tasks": len(schedule.workflow.task_ids),
                "vms": schedule.vm_count,
                "makespan": round(schedule.makespan, 2),
            }
            if size_label == REFERENCE_SIZE:
                ref_seconds, _ = _time_pipeline(
                    projections, kind, REFERENCE_POLICIES[policy_name], platform
                )
                entry["reference_seconds"] = round(ref_seconds, 4)
                entry["speedup_vs_reference"] = round(ref_seconds / seconds, 2)
            if size_label == EQUIVALENCE_SIZE:
                _, opt = _time_pipeline(
                    projections, kind, PROVISIONING_POLICIES[policy_name], platform
                )
                _, ref = _time_pipeline(
                    projections, kind, REFERENCE_POLICIES[policy_name], platform
                )
                entry["identical_to_reference"] = (
                    _fingerprint(opt) == _fingerprint(ref)
                )
            if size_label == COLUMNAR_EQUIVALENCE_SIZE:
                # the timed run above went through the columnar fused
                # kernels (the default at this size); one indexed run
                # pins the trace
                with columnar_disabled():
                    _, indexed = _time_pipeline(
                        projections, kind, PROVISIONING_POLICIES[policy_name],
                        platform,
                    )
                entry["identical_to_reference"] = (
                    _fingerprint(schedule) == _fingerprint(indexed)
                )
            row[size_label] = entry
        cells[policy_name] = row

    # one non-montage shape at 10k so fan-in DAGs are represented
    mr_row = {}
    for policy_name, kind in FAMILIES:
        t0 = time.perf_counter()
        wf = mapreduce(4999, 2)
        s = _scheduler(kind, PROVISIONING_POLICIES[policy_name]()).schedule(
            wf, platform
        )
        mr_row[policy_name] = {
            "seconds": round(time.perf_counter() - t0, 4),
            "tasks": len(s.workflow.task_ids),
            "vms": s.vm_count,
        }

    record = {
        "benchmark": "large-workflow scaling (generate+provision+allocate+validate)",
        "sizes": {k: {"projections": v} for k, v in sizes.items()},
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "cells": cells,
        "mapreduce_10k": mr_row,
    }

    if "200k" in sizes:  # full refresh only: the 1M completion smoke
        policy_name, kind = SMOKE_1M_POLICY
        t0 = time.perf_counter()
        wf = montage(SMOKE_1M_PROJECTIONS)
        s = _scheduler(kind, PROVISIONING_POLICIES[policy_name]()).schedule(
            wf, platform
        )
        record["smoke_1m"] = {
            "policy": policy_name,
            "seconds": round(time.perf_counter() - t0, 4),
            "tasks": len(s.workflow.task_ids),
            "vms": s.vm_count,
        }
    return record


def check(baseline_path: Path, tolerance: float) -> int:
    """Regression gate: re-run the small sizes, compare to baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run without --check first")
        return 2
    baseline = json.loads(baseline_path.read_text())
    small = {k: v for k, v in SIZES.items() if k in ("1k", "10k")}
    current = bench(small)
    failures = []
    for policy_name, row in current["cells"].items():
        for size_label, entry in row.items():
            base = baseline["cells"].get(policy_name, {}).get(size_label)
            if base is None:
                continue
            if entry.get("identical_to_reference") is False:
                failures.append(f"{policy_name}/{size_label}: trace diverged")
            # sub-50ms cells are timer noise, not signal
            if base["seconds"] < 0.05:
                continue
            ratio = entry["seconds"] / base["seconds"]
            # a regression must clear the ratio AND an absolute slack:
            # the columnar kernels pushed 10k cells to ~0.15s, where
            # ±100ms of scheduler jitter on this 1-core box flips the
            # ratio alone; a real algorithmic slowdown shows a far
            # larger absolute delta
            slack = entry["seconds"] - base["seconds"]
            regressed = ratio > 1 + tolerance and slack > ABS_SLACK_SECONDS
            status = "OK" if not regressed else "REGRESSION"
            print(
                f"{policy_name:20s} {size_label:4s} "
                f"base {base['seconds']:8.3f}s  now {entry['seconds']:8.3f}s  "
                f"x{ratio:5.2f}  {status}"
            )
            if regressed:
                failures.append(
                    f"{policy_name}/{size_label}: {ratio:.2f}x baseline "
                    f"(+{slack:.3f}s; tolerance {1 + tolerance:.2f}x "
                    f"and +{ABS_SLACK_SECONDS:.2f}s)"
                )
    if failures:
        print("\nperf regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nperf regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed slowdown fraction for --check (default 0.25)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.check:
        return check(args.out, args.tolerance)

    record = bench(SIZES)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    history_row = {
        "date": datetime.date.today().isoformat(),
        "benchmark": "scaling",
        "cells": {
            pol: {sz: e["seconds"] for sz, e in row.items()}
            for pol, row in record["cells"].items()
        },
    }
    if "smoke_1m" in record:
        history_row["smoke_1m_seconds"] = record["smoke_1m"]["seconds"]
    with HISTORY.open("a") as fh:
        fh.write(json.dumps(history_row) + "\n")
    for policy_name, row in record["cells"].items():
        parts = [f"{sz} {e['seconds']:.2f}s" for sz, e in row.items()]
        extra = row.get(REFERENCE_SIZE, {})
        if "speedup_vs_reference" in extra:
            parts.append(f"[{extra['speedup_vs_reference']:.0f}x vs reference @10k]")
        ident = row.get(EQUIVALENCE_SIZE, {}).get("identical_to_reference")
        ident_50k = row.get(COLUMNAR_EQUIVALENCE_SIZE, {}).get(
            "identical_to_reference"
        )
        parts.append(f"identical={ident}/{ident_50k}@50k")
        print(f"{policy_name:20s} " + "  ".join(parts))
    if "smoke_1m" in record:
        sm = record["smoke_1m"]
        print(
            f"smoke_1m             {sm['policy']} {sm['tasks']} tasks "
            f"in {sm['seconds']:.2f}s ({sm['vms']} vms)"
        )
    print(f"wrote {args.out}")
    ok = all(
        row.get(EQUIVALENCE_SIZE, {}).get("identical_to_reference", True)
        and row.get(COLUMNAR_EQUIVALENCE_SIZE, {}).get(
            "identical_to_reference", True
        )
        for row in record["cells"].values()
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
