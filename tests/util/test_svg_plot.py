"""Tests for the SVG chart writers."""

import xml.etree.ElementTree as ET

import pytest

from repro.util.svg_plot import svg_bars, svg_scatter


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgScatter:
    def test_well_formed_xml(self):
        root = _parse(svg_scatter({"a": (1.0, 2.0), "b": (-3.0, 4.0)}))
        assert root.tag.endswith("svg")

    def test_one_marker_per_point_plus_legend(self):
        svg = svg_scatter({"a": (1.0, 2.0), "b": (3.0, 4.0)})
        root = _parse(svg)
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == 4  # 2 data + 2 legend

    def test_labels_escaped(self):
        svg = svg_scatter({"a<b>&c": (0.0, 0.0)}, title="t<i>tle")
        _parse(svg)  # would raise on unescaped markup
        assert "a<b>&c" not in svg

    def test_origin_lines_present(self):
        svg = svg_scatter({"a": (-5.0, -5.0), "b": (5.0, 5.0)})
        assert svg.count("stroke-dasharray") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_scatter({})

    def test_axis_labels(self):
        svg = svg_scatter({"a": (1.0, 1.0)}, xlabel="gain", ylabel="loss")
        assert ">gain<" in svg and ">loss<" in svg


class TestSvgBars:
    def test_well_formed_and_one_rect_per_bar(self):
        svg = svg_bars({"x": 10.0, "y": 20.0, "z": 0.0})
        root = _parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 3

    def test_longest_bar_spans_plot(self):
        svg = svg_bars({"small": 1.0, "big": 100.0}, width=720)
        root = _parse(svg)
        widths = sorted(
            float(r.get("width")) for r in
            root.findall(".//{http://www.w3.org/2000/svg}rect")
        )
        assert widths[-1] == pytest.approx(720 - 200 - 90)
        assert widths[0] == pytest.approx(widths[-1] / 100, rel=0.01)

    def test_unit_rendered(self):
        assert "3,600s" in svg_bars({"x": 3600.0}, unit="s")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_bars({})


class TestFigureSvgIntegration:
    def test_figure_svgs_from_sweep(self):
        from repro.cloud.platform import CloudPlatform
        from repro.experiments.config import paper_workflows, strategy
        from repro.experiments.figures import figure4_svg, figure5_svg
        from repro.experiments.runner import run_sweep
        from repro.experiments.scenarios import scenario

        platform = CloudPlatform.ec2()
        sweep = run_sweep(
            platform=platform,
            workflows={"montage": paper_workflows()["montage"]},
            scenarios=[scenario("pareto", platform)],
            strategies=[strategy("OneVMperTask-s"), strategy("GAIN")],
            seed=2,
        )
        for svg in (
            figure4_svg(sweep, "montage"),
            figure5_svg(sweep, "montage"),
        ):
            _parse(svg)
            assert "GAIN" in svg
