"""Store-and-forward network model (paper Sect. IV-A).

``transfer_time = size / bandwidth + latency``; the effective bandwidth
between two VMs is the slower of their NIC links (1 Gb/s for small and
medium instances, 10 Gb/s for large and xlarge).  Bandwidth sharing is
deliberately not modelled, matching the paper's simplification.
Transfers between tasks on the *same VM* are free and instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import InstanceType
from repro.errors import PlatformError

_GB_TO_GBIT = 8.0


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the simulated interconnect."""

    intra_region_latency_s: float = 0.1
    inter_region_latency_s: float = 0.5

    def __post_init__(self) -> None:
        if self.intra_region_latency_s < 0 or self.inter_region_latency_s < 0:
            raise PlatformError("latencies must be >= 0")

    def bandwidth_gbps(self, src: InstanceType, dst: InstanceType) -> float:
        """Bottleneck link speed between two instance types."""
        return min(src.link_gbps, dst.link_gbps)

    def transfer_time(
        self,
        size_gb: float,
        src: InstanceType,
        dst: InstanceType,
        same_vm: bool = False,
        same_region: bool = True,
    ) -> float:
        """Seconds to ship *size_gb* between two placements."""
        if size_gb < 0:
            raise PlatformError(f"negative transfer size {size_gb}")
        if same_vm:
            return 0.0
        latency = (
            self.intra_region_latency_s if same_region else self.inter_region_latency_s
        )
        if size_gb == 0:
            # A pure control dependency still pays one latency.
            return latency
        return size_gb * _GB_TO_GBIT / self.bandwidth_gbps(src, dst) + latency
