"""Table III — classification of strategies into savings-dominant /
gain-dominant / balanced per (scenario, workflow).

Shape checks against the paper's entries: in the worst case the
NotExceed policies converge onto the reference (balanced at 0); in the
Pareto case AllPar*-s are savings-dominant; the best case puts the most
strategies into the gain column of any scenario.
"""

from benchmarks.conftest import save_artifact
from repro.experiments.tables import render_table3, table3


def test_table3(benchmark, paper_sweep, artifact_dir):
    t3 = benchmark(table3, paper_sweep)
    assert len(t3) == 12  # 3 scenarios x 4 workflows

    # Pareto: AllPar[Not]Exceed-s offer savings for every workflow
    # (Table III lists them for Montage, CSTEM, MapReduce; sequential
    # degenerates them into the same savings bucket too)
    for wf in ("montage", "cstem", "mapreduce"):
        cls = t3[("pareto", wf)]
        for label in ("AllParExceed-s", "AllParNotExceed-s"):
            assert label in cls.savings_dominant + cls.balanced, (wf, label, cls)

    # worst case: StartParNotExceed = AllParNotExceed = OneVMperTask = 0
    # -> they sit in the balanced column at the origin
    for wf in ("montage", "cstem", "mapreduce", "sequential"):
        cls = t3[("worst", wf)]
        assert "AllParNotExceed-s" in cls.balanced
        assert "StartParNotExceed-s" in cls.balanced
        assert not cls.gain_dominant  # "No SA falls in this situation
        # for the worst case" (gain column empty)

    # worst case: AllPar1LnS[Dyn] are the only ones that can still save
    cls = t3[("worst", "montage")]
    assert set(cls.savings_dominant) <= {"AllPar1LnS", "AllPar1LnSDyn"}

    # "the best case has the most of them" (gain-dominant strategies)
    def gain_count(scenario):
        return sum(len(t3[(scenario, wf)].gain_dominant) for wf in
                   ("montage", "cstem", "mapreduce", "sequential"))

    assert gain_count("best") >= gain_count("worst")

    save_artifact(artifact_dir, "table3.txt", render_table3(paper_sweep))
