"""Synthetic workflow generators for the paper's future-work axis
("custom workflows ... with various properties"): parameterized
fork-join shapes and random layered DAGs."""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.util.rng import ensure_rng
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_DATA_GB = 0.05


def fork_join(width: int = 8, stages: int = 3, name: str = "fork_join") -> Workflow:
    """Alternating fan-out/fan-in: a join task between each parallel stage.

    ``stages`` parallel stages of ``width`` tasks each, separated by
    single synchronization tasks, with one entry and one exit task.
    """
    if width < 1 or stages < 1:
        raise WorkflowError("fork_join needs width >= 1 and stages >= 1")
    wf = Workflow(name)
    prev_join = wf.add_task(Task("source", 500.0, "sync"))
    for s in range(stages):
        members = [
            wf.add_task(Task(f"stage{s}_task{i}", 1000.0, "work"))
            for i in range(width)
        ]
        for m in members:
            wf.add_dependency(prev_join.id, m.id, _DATA_GB)
        join = wf.add_task(Task(f"join_{s}", 500.0, "sync"))
        for m in members:
            wf.add_dependency(m.id, join.id, _DATA_GB)
        prev_join = join
    return wf.validate()


def random_layered(
    layers: int = 5,
    width_range: tuple[int, int] = (1, 6),
    edge_density: float = 0.5,
    seed=None,
    name: str = "random_layered",
) -> Workflow:
    """Random layered DAG: each task links to >= 1 task of the previous
    layer, plus extra previous-layer edges with probability
    *edge_density*.  Work is uniform in [500, 2000) s so the shape, not
    the durations, drives structure-sensitive comparisons.
    """
    if layers < 1:
        raise WorkflowError("random_layered needs layers >= 1")
    lo, hi = width_range
    if not (1 <= lo <= hi):
        raise WorkflowError(f"bad width_range {width_range}")
    if not (0.0 <= edge_density <= 1.0):
        raise WorkflowError(f"edge_density must be in [0, 1], got {edge_density}")
    rng = ensure_rng(seed)
    wf = Workflow(name)
    previous: list[Task] = []
    for layer in range(layers):
        width = int(rng.integers(lo, hi + 1))
        current = [
            wf.add_task(
                Task(f"L{layer}_T{i}", float(rng.uniform(500.0, 2000.0)), "work")
            )
            for i in range(width)
        ]
        if previous:
            for t in current:
                anchor = previous[int(rng.integers(0, len(previous)))]
                wf.add_dependency(anchor.id, t.id, _DATA_GB)
                for p in previous:
                    if p.id != anchor.id and rng.random() < edge_density:
                        wf.add_dependency(p.id, t.id, _DATA_GB)
        previous = current
    return wf.validate()
