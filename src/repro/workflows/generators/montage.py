"""Montage astronomical-mosaic workflow (paper Fig. 2a).

Standard Pegasus Montage phase structure:

    mProject x p  ->  mDiffFit x p  ->  mConcatFit  ->  mBgModel
        ->  mBackground x p  ->  mImgtbl  ->  mAdd  ->  mShrink  ->  mJPEG

Each ``mDiffFit`` compares two cyclically adjacent projections (the
"intermingled, not only from one level" dependencies the paper points
out), and each ``mBackground`` corrects one projection using the global
background model.  Total task count is ``3p + 6``; the paper's 24-task
instance is ``p = 6``.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

# Nominal reference runtimes (seconds on a small instance) per phase,
# loosely scaled from published Montage task profiles; experiment
# scenarios overwrite them via Workflow.with_works().
_DEFAULT_WORK = {
    "mProject": 1200.0,
    "mDiffFit": 300.0,
    "mConcatFit": 600.0,
    "mBgModel": 900.0,
    "mBackground": 300.0,
    "mImgtbl": 200.0,
    "mAdd": 1500.0,
    "mShrink": 400.0,
    "mJPEG": 200.0,
}

# Nominal data volumes (GB) shipped along each edge class.
_DEFAULT_DATA = {
    "project->diff": 0.2,
    "project->background": 0.2,
    "diff->concat": 0.01,
    "concat->bgmodel": 0.01,
    "bgmodel->background": 0.01,
    "background->imgtbl": 0.2,
    "imgtbl->add": 0.01,
    "background->add": 0.2,
    "add->shrink": 1.0,
    "shrink->jpeg": 0.3,
}


def montage(projections: int = 6, name: str = "montage") -> Workflow:
    """Build a Montage workflow with *projections* parallel images.

    ``projections = 6`` yields the paper's 24-task instance.
    """
    if projections < 2:
        raise WorkflowError("montage needs at least 2 projections")
    p = projections
    wf = Workflow(name)

    # batch construction: task and edge insertion order matches the
    # historical per-call build exactly, at a fraction of the cost on
    # the 50k-1M benchmark instances
    projects = wf.add_tasks(
        Task(f"mProject_{i}", _DEFAULT_WORK["mProject"], "mProject")
        for i in range(p)
    )
    diffs = wf.add_tasks(
        Task(f"mDiffFit_{i}", _DEFAULT_WORK["mDiffFit"], "mDiffFit")
        for i in range(p)
    )
    concat = wf.add_task(Task("mConcatFit", _DEFAULT_WORK["mConcatFit"], "mConcatFit"))
    bgmodel = wf.add_task(Task("mBgModel", _DEFAULT_WORK["mBgModel"], "mBgModel"))
    backgrounds = wf.add_tasks(
        Task(f"mBackground_{i}", _DEFAULT_WORK["mBackground"], "mBackground")
        for i in range(p)
    )
    imgtbl = wf.add_task(Task("mImgtbl", _DEFAULT_WORK["mImgtbl"], "mImgtbl"))
    madd = wf.add_task(Task("mAdd", _DEFAULT_WORK["mAdd"], "mAdd"))
    shrink = wf.add_task(Task("mShrink", _DEFAULT_WORK["mShrink"], "mShrink"))
    jpeg = wf.add_task(Task("mJPEG", _DEFAULT_WORK["mJPEG"], "mJPEG"))

    deps = []
    # mDiffFit_i overlaps projections i and (i+1) mod p: cross-level,
    # intermingled dependencies.
    for i in range(p):
        deps.append((projects[i].id, diffs[i].id, _DEFAULT_DATA["project->diff"]))
        deps.append(
            (projects[(i + 1) % p].id, diffs[i].id, _DEFAULT_DATA["project->diff"])
        )
        deps.append((diffs[i].id, concat.id, _DEFAULT_DATA["diff->concat"]))
    deps.append((concat.id, bgmodel.id, _DEFAULT_DATA["concat->bgmodel"]))
    for i in range(p):
        # mBackground needs its own projection (skipping a level) plus the
        # global background model.
        deps.append(
            (projects[i].id, backgrounds[i].id, _DEFAULT_DATA["project->background"])
        )
        deps.append(
            (bgmodel.id, backgrounds[i].id, _DEFAULT_DATA["bgmodel->background"])
        )
        deps.append(
            (backgrounds[i].id, imgtbl.id, _DEFAULT_DATA["background->imgtbl"])
        )
        deps.append((backgrounds[i].id, madd.id, _DEFAULT_DATA["background->add"]))
    deps.append((imgtbl.id, madd.id, _DEFAULT_DATA["imgtbl->add"]))
    deps.append((madd.id, shrink.id, _DEFAULT_DATA["add->shrink"]))
    deps.append((shrink.id, jpeg.id, _DEFAULT_DATA["shrink->jpeg"]))
    wf.add_dependencies(deps)
    return wf.validate()
