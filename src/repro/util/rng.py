"""Seeded random-number-generator helpers.

All stochastic code in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``, and normalizes it
through :func:`ensure_rng`.  Experiments spawn independent child streams
with :func:`spawn_rngs` so that adding a new strategy to a sweep does not
perturb the random draws of the existing ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` gives a fresh OS-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new PCG64 stream; an
    existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_seeds(seed, n: int) -> Sequence[np.random.SeedSequence]:
    """Spawn *n* independent child :class:`~numpy.random.SeedSequence`\\ s.

    The cheap, picklable form of :func:`spawn_rngs`: experiment runners
    ship one child per work unit to (possibly remote) workers, and
    ``np.random.default_rng(child)`` there yields exactly the generator
    :func:`spawn_rngs` would have built locally — execution order cannot
    change the draws.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif seed is None or isinstance(seed, (int, np.integer)):
        ss = np.random.SeedSequence(seed)
    else:
        raise TypeError("spawn_seeds needs an int, SeedSequence or None seed")
    return ss.spawn(n)


def spawn_rngs(seed, n: int) -> Sequence[np.random.Generator]:
    """Spawn *n* statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so each child stream
    is stable under insertion/removal of sibling streams drawn later.
    """
    try:
        children = spawn_seeds(seed, n)
    except TypeError:
        raise TypeError("spawn_rngs needs an int, SeedSequence or None seed") from None
    return [np.random.default_rng(child) for child in children]
