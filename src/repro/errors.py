"""Exception hierarchy for :mod:`repro`.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class WorkflowError(ReproError):
    """A workflow definition is structurally invalid (cycle, missing task,
    duplicate id, dangling edge, negative work...)."""


class WorkflowParseError(WorkflowError):
    """A workflow description (DAX XML, DOT...) could not be parsed."""


class PlatformError(ReproError):
    """The cloud platform model was configured or used inconsistently
    (unknown region, unknown instance type, non-positive BTU...)."""


class BillingError(PlatformError):
    """Invalid billing operation (negative uptime, unknown price...)."""


class SchedulingError(ReproError):
    """A scheduling algorithm or provisioning policy produced or was given
    an invalid input (task not ready, unknown policy name...)."""


class InvalidScheduleError(SchedulingError):
    """A produced schedule violates a structural invariant: a task is
    unassigned or double-assigned, per-VM executions overlap, or a task
    starts before its inputs are available."""


class BudgetExceededError(SchedulingError):
    """A budget-constrained algorithm was asked to commit a configuration
    whose cost exceeds its budget."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state
    (event in the past, deadlock with pending tasks...)."""


class FaultError(SimulationError):
    """A fault-injected run could not recover: a task exhausted its
    recovery policy's attempt budget, or a replan was requested for a
    schedule whose provisioning policy is unknown."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a sweep failed."""
