"""Replication bench: the paper's headline conclusions across 10
independent Pareto draws, with bootstrap confidence intervals.

A single-seed evaluation can get lucky; this bench re-establishes the
key claims distributionally: AllPar*-small saves in *every* draw, the
dynamic upgraders' loss CI sits inside the reported [45, 100]% band, and
the medium/large stable gains are seed-independent identities.
"""

from benchmarks.conftest import save_artifact
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.replication import render_replication, replicate

SEEDS = range(10)
LABELS = [
    "OneVMperTask-s",
    "AllParExceed-s",
    "AllParNotExceed-s",
    "AllParExceed-m",
    "OneVMperTask-l",
    "GAIN",
    "CPA-Eager",
    "AllPar1LnSDyn",
]


def _run(platform):
    wfs = paper_workflows()
    return replicate(
        seeds=SEEDS,
        platform=platform,
        workflows={"montage": wfs["montage"], "mapreduce": wfs["mapreduce"]},
        strategies=[strategy(l) for l in LABELS],
    )


def test_replicated_conclusions(benchmark, platform, artifact_dir):
    results = benchmark(_run, platform)

    for wf in ("montage", "mapreduce"):
        # AllPar*-small saves in every single draw
        for label in ("AllParExceed-s", "AllParNotExceed-s"):
            assert results[(wf, label)].always_saves, (wf, label)

        # dynamic upgraders: loss CI inside the paper's [45, 100]% band
        for label in ("GAIN", "CPA-Eager"):
            lo, hi = results[(wf, label)].loss_ci()
            assert 45.0 <= lo and hi <= 100.0 + 1e-6, (wf, label, lo, hi)

        # AllPar1LnSDyn never costs more than the reference, in any draw
        assert results[(wf, "AllPar1LnSDyn")].always_saves

        # OneVMperTask-l: the speed-up identity gain in every draw, and
        # the paper's "large loss of 200-300%" (exactly 300% when no
        # task crosses a BTU on small; Pareto tails occasionally save a
        # BTU on the faster instance)
        m = results[(wf, "OneVMperTask-l")]
        assert abs(m.mean_gain - (1 - 1 / 2.1) * 100) < 0.5
        assert all(200.0 <= loss <= 300.0 + 1e-9 for loss in m.losses)

    save_artifact(artifact_dir, "replication.txt", render_replication(results))
