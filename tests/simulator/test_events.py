"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.push(5.0, lambda: fired.append("late"))
        q.push(1.0, lambda: fired.append("early"))
        while q:
            q.pop().action()
        assert fired == ["early", "late"]

    def test_fifo_for_simultaneous(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, lambda i=i: fired.append(i))
        while q:
            q.pop().action()
        assert fired == [0, 1, 2, 3, 4]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, lambda: None)
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, lambda: None)
        assert q and len(q) == 1

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)
