#!/usr/bin/env python
"""Quickstart: schedule the paper's 24-task Montage workflow on the EC2
platform model under every provisioning policy, compare makespan / cost
/ idle time against the HEFT + OneVMperTask-small reference, and verify
each schedule by replaying it through the discrete-event simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    AllParScheduler,
    CloudPlatform,
    HeftScheduler,
    compare_to_reference,
    montage,
    reference_schedule,
    simulate_schedule,
)
from repro.util.tables import format_table


def main() -> None:
    # 1. A workflow: the paper's Montage instance (24 tasks, 6 images).
    workflow = montage()
    print(f"workflow: {workflow.name}, {len(workflow)} tasks, "
          f"max parallelism {workflow.max_parallelism()}")

    # 2. A platform: EC2 with the paper's Table II prices, BTU = 3600 s.
    platform = CloudPlatform.ec2()

    # 3. The reference: HEFT ordering, one small VM per task.
    reference = reference_schedule(workflow, platform)

    # 4. Each provisioning policy, on medium instances.
    strategies = {
        "OneVMperTask-m": HeftScheduler("OneVMperTask"),
        "StartParNotExceed-m": HeftScheduler("StartParNotExceed"),
        "StartParExceed-m": HeftScheduler("StartParExceed"),
        "AllParExceed-m": AllParScheduler(exceed=True),
        "AllParNotExceed-m": AllParScheduler(exceed=False),
    }
    rows = []
    for label, scheduler in strategies.items():
        schedule = scheduler.schedule(
            workflow, platform, itype=platform.itype("medium")
        )
        schedule.validate()  # structural + dependency feasibility
        simulate_schedule(schedule)  # DES replay must match the plan
        m = compare_to_reference(schedule, reference, label=label)
        rows.append(
            (
                label,
                m.makespan,
                m.cost,
                m.gain_pct,
                m.savings_pct,
                m.idle_seconds,
                m.vm_count,
            )
        )

    print()
    print(
        format_table(
            ["strategy", "makespan s", "cost $", "gain %", "savings %", "idle s", "VMs"],
            rows,
            title="Montage-24 on EC2 medium instances vs OneVMperTask-small",
        )
    )
    print("\nAll schedules validated and replayed through the DES simulator.")


if __name__ == "__main__":
    main()
