"""Figure 5 — total paid-but-idle VM time per strategy per workflow
(Pareto scenario).

Shape checks from the paper: OneVMperTask*, GAIN and CPA-Eager produce
the largest idle; most strategies waste between ~3 and ~13 hours with
Montage reaching beyond; the sequential workflow shows no significant
idle for the packing strategies.
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.experiments.figures import figure5_idle, render_figure5


@pytest.mark.parametrize("workflow", ["montage", "cstem", "mapreduce", "sequential"])
def test_figure5(benchmark, paper_sweep, artifact_dir, workflow):
    idle = benchmark(figure5_idle, paper_sweep, workflow, "pareto")

    # the heavy wasters: OneVMperTask-*, GAIN, CPA-Eager dominate the top
    heavy = {"OneVMperTask-s", "OneVMperTask-m", "OneVMperTask-l", "GAIN", "CPA-Eager"}
    top5 = sorted(idle, key=idle.get, reverse=True)[:5]
    assert len(set(top5) & heavy) >= 4, f"top idle wasters {top5} not the paper's"

    # packing strategies waste the least
    assert idle["StartParExceed-s"] <= min(
        idle["OneVMperTask-s"], idle["GAIN"], idle["CPA-Eager"]
    )

    if workflow == "sequential":
        # "its serialized nature is the reason why for most methods there
        # is no significant idle time" — the packed small strategies
        # waste under one BTU
        assert idle["StartParExceed-s"] <= 3600.0
        assert idle["AllParExceed-s"] <= 2 * 3600.0

    if workflow == "montage":
        # Montage produces the largest heavy-waster idle of all shapes
        other_max = max(
            figure5_idle(paper_sweep, w, "pareto")["OneVMperTask-s"]
            for w in ("cstem", "mapreduce", "sequential")
        )
        assert idle["OneVMperTask-s"] >= other_max

    save_artifact(
        artifact_dir,
        f"figure5_{workflow}.txt",
        render_figure5(paper_sweep, scenario="pareto"),
    )
    from repro.experiments.figures import figure5_svg

    save_artifact(
        artifact_dir, f"figure5_{workflow}.svg", figure5_svg(paper_sweep, workflow)
    )
