"""Dynamic replay of a static schedule.

The executor takes only the schedule's *decisions* — which VM runs each
task and in what per-VM order — and re-derives all timing through
discrete events: a task starts when it reaches the front of its VM's
queue **and** its last input has arrived; finishing a task triggers the
store-and-forward transfers to its successors' VMs.  VMs are pre-booted
(the paper's static-scheduling argument), so they are available from
t=0 and their rent window is measured from their first task start.

Because the :class:`~repro.core.builder.ScheduleBuilder` uses exactly
this recurrence, a valid static schedule replays with identical times;
:func:`simulate_schedule` asserts that when ``check=True``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.simulator.engine import Simulator
from repro.simulator.trace import SimulationResult, TraceEvent


class ScheduleExecutor:
    """Replays one :class:`Schedule` on a fresh :class:`Simulator`.

    *runtime_fn*, when given, maps ``(task_id, planned_duration)`` to the
    *actual* duration — the hook for robustness studies where execution
    times deviate from the static scheduler's estimates.  The per-VM
    queue and dependency disciplines absorb any deviation, so execution
    always stays feasible; only the timings shift.
    """

    def __init__(
        self,
        schedule: Schedule,
        max_events: int = 10_000_000,
        runtime_fn: Callable[[str, float], float] | None = None,
    ) -> None:
        self.schedule = schedule
        self.runtime_fn = runtime_fn
        self.sim = Simulator(max_events=max_events)
        self.result = SimulationResult()
        wf = schedule.workflow
        # Remaining input count per task; entry tasks are ready at t=0.
        self._pending_inputs: Dict[str, int] = {
            tid: len(wf.predecessors(tid)) for tid in wf.task_ids
        }
        # Per-VM queue position.
        self._queues: Dict[int, List[str]] = {
            vm.id: list(vm.task_ids) for vm in schedule.vms
        }
        self._next_idx: Dict[int, int] = {vm.id: 0 for vm in schedule.vms}
        self._started: set = set()
        self._done: set = set()
        # cold-start bookkeeping: VMs whose boot has been triggered
        self._boot_started: set = set()
        self._boot_done: set = set()

    # ------------------------------------------------------------------
    def _vm_front(self, vm_id: int) -> str | None:
        q = self._queues[vm_id]
        i = self._next_idx[vm_id]
        return q[i] if i < len(q) else None

    def _try_start(self, task_id: str) -> None:
        if task_id in self._started:
            return
        vm = self.schedule.vm_of(task_id)
        if self._vm_front(vm.id) != task_id:
            return  # an earlier queue entry still runs or waits
        if self._pending_inputs[task_id] > 0:
            return
        platform = self.schedule.platform
        if (
            not platform.prebooted
            and platform.boot_seconds > 0
            and vm.id not in self._boot_done
        ):
            # first task is ready: the VM is requested now and boots
            if vm.id not in self._boot_started:
                self._boot_started.add(vm.id)
                self.result.record(TraceEvent(self.sim.now, "vm_boot", "", vm.name))

                def boot_complete(vm_id=vm.id, tid=task_id):
                    self._boot_done.add(vm_id)
                    self._try_start(tid)

                self.sim.after(platform.boot_seconds, boot_complete, f"boot:{vm.name}")
            return
        self._started.add(task_id)
        now = self.sim.now
        duration = self.schedule.platform.runtime(
            self.schedule.workflow.task(task_id), vm.itype
        )
        if self.runtime_fn is not None:
            duration = self.runtime_fn(task_id, duration)
            if duration < 0:
                raise SimulationError(
                    f"runtime_fn returned negative duration for {task_id!r}"
                )
        self.result.record(TraceEvent(now, "task_start", task_id, vm.name))
        self.sim.after(duration, lambda: self._finish(task_id), f"end:{task_id}")

    def _finish(self, task_id: str) -> None:
        now = self.sim.now
        vm = self.schedule.vm_of(task_id)
        self._done.add(task_id)
        self.result.record(TraceEvent(now, "task_end", task_id, vm.name))
        # Free the VM for its next queued task.
        self._next_idx[vm.id] += 1
        nxt = self._vm_front(vm.id)
        if nxt is not None:
            self._try_start(nxt)
        # Ship outputs to successors.
        wf = self.schedule.workflow
        for succ in wf.successors(task_id):
            dst = self.schedule.vm_of(succ)
            dt = self.schedule.platform.transfer_time(
                wf.data_gb(task_id, succ),
                vm.itype,
                dst.itype,
                same_vm=vm is dst,
                src_region=vm.region,
                dst_region=dst.region,
            )
            if dt > 0:
                self.result.record(
                    TraceEvent(now, "transfer_start", succ, dst.name, f"from:{task_id}")
                )
            self.sim.after(dt, lambda s=succ: self._arrive(s), f"arrive:{succ}")

    def _arrive(self, task_id: str) -> None:
        self._pending_inputs[task_id] -= 1
        if self._pending_inputs[task_id] < 0:
            raise SimulationError(f"extra input arrival for {task_id!r}")
        self._try_start(task_id)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute to completion; raises on deadlock."""
        for vm in self.schedule.vms:
            self.result.record(TraceEvent(0.0, "vm_start", "", vm.name))
            front = self._vm_front(vm.id)
            if front is not None:
                self.sim.at(0.0, lambda t=front: self._try_start(t), f"kick:{front}")
        self.sim.run()
        missing = set(self.schedule.workflow.task_ids) - self._done
        if missing:
            raise SimulationError(
                f"simulation deadlocked; never completed: {sorted(missing)}"
            )
        for vm in self.schedule.vms:
            starts = [self.result.task_start[t] for t in vm.task_ids]
            ends = [self.result.task_finish[t] for t in vm.task_ids]
            window = (min(starts), max(ends))
            self.result.vm_windows[vm.name] = window
            self.result.record(TraceEvent(window[1], "vm_stop", "", vm.name))
        return self.result


def simulate_schedule(schedule: Schedule, check: bool = True) -> SimulationResult:
    """Replay *schedule* through the DES; with *check*, assert the
    observed timings equal the planned ones."""
    result = ScheduleExecutor(schedule).run()
    if check:
        result.check_against(schedule)
    return result
