"""Price-process determinism and arithmetic.

The contract under test: a realized price path is a pure function of
``(process, seed, flavor, region)`` — same inputs, identical values,
whatever the order or backend asking — and its integral/crossing
queries are exact piecewise-constant arithmetic.
"""

import math

import pytest

from repro.errors import SimulationError
from repro.market import (
    ConstantPrice,
    MeanRevertingPrice,
    StepTracePrice,
    price_path,
)


class TestConstantPrice:
    def test_flat_path(self):
        path = price_path(ConstantPrice(0.4), 0, "small", "us-east")
        assert path.is_constant
        assert path.multiplier_at(0.0) == 0.4
        assert path.multiplier_at(1e9) == 0.4
        assert path.integral(100.0, 3700.0) == pytest.approx(0.4 * 3600.0)

    def test_never_crosses_above_itself(self):
        path = price_path(ConstantPrice(0.4), 0, "small", "us-east")
        assert math.isinf(path.next_crossing_above(0.4, 0.0, 1e9))
        assert path.next_crossing_above(0.39, 500.0, 1e9) == 500.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            ConstantPrice(-1.0)
        ConstantPrice(0.0)  # a free market is degenerate but legal


class TestStepTracePrice:
    TRACE = StepTracePrice((0.0, 600.0, 4200.0), (0.3, 1.2, 0.3))

    def test_lookup(self):
        path = price_path(self.TRACE, 0, "small", "us-east")
        assert path.multiplier_at(0.0) == 0.3
        assert path.multiplier_at(599.9) == 0.3
        assert path.multiplier_at(600.0) == 1.2
        assert path.multiplier_at(4200.0) == 0.3

    def test_integral_exact(self):
        path = price_path(self.TRACE, 0, "small", "us-east")
        # 600 s at 0.3, 3600 s at 1.2, 800 s at 0.3
        expected = 600 * 0.3 + 3600 * 1.2 + 800 * 0.3
        assert path.integral(0.0, 5000.0) == pytest.approx(expected)

    def test_crossing(self):
        path = price_path(self.TRACE, 0, "small", "us-east")
        assert path.next_crossing_above(0.5, 0.0, 1e6) == 600.0
        # already above at the query time
        assert path.next_crossing_above(0.5, 700.0, 1e6) == 700.0
        # recovered; next spike never comes
        assert math.isinf(path.next_crossing_above(0.5, 4200.0, 1e6))
        # horizon cuts the scan short
        assert math.isinf(path.next_crossing_above(0.5, 0.0, 599.0))

    def test_validation(self):
        with pytest.raises(SimulationError):
            StepTracePrice((100.0,), (1.0,))  # must start at 0
        with pytest.raises(SimulationError):
            StepTracePrice((0.0, 0.0), (1.0, 2.0))  # strictly increasing
        with pytest.raises(SimulationError):
            StepTracePrice((0.0, 10.0), (1.0,))  # length mismatch
        with pytest.raises(SimulationError):
            StepTracePrice((0.0,), (-0.5,))  # non-negative


class TestWalkDeterminism:
    PROC = MeanRevertingPrice()

    def test_same_key_same_path(self):
        a = price_path(self.PROC, 7, "small", "us-east")
        b = price_path(self.PROC, 7, "small", "us-east")
        assert a is b  # shared cache instance

    def test_values_reproducible_across_instances(self):
        from repro.market.prices import _WalkPath

        # two independent realizations (bypassing the cache) of the
        # same identity draw identical values
        a = _WalkPath(self.PROC, 7, "small", "us-east")
        b = _WalkPath(MeanRevertingPrice(), 7, "small", "us-east")
        a._ensure(64)
        b._ensure(64)
        assert list(a.values[:64]) == list(b.values[:64])

    def test_seed_and_identity_matter(self):
        a = price_path(self.PROC, 7, "small", "us-east")
        b = price_path(self.PROC, 8, "small", "us-east")
        c = price_path(self.PROC, 7, "large", "us-east")
        d = price_path(self.PROC, 7, "small", "eu-west")
        for p in (a, b, c, d):
            p._ensure(32)
        assert list(b.values[:32]) != list(a.values[:32])
        assert list(c.values[:32]) != list(a.values[:32])
        assert list(d.values[:32]) != list(a.values[:32])

    def test_extension_never_perturbs_prefix(self):
        path = price_path(self.PROC, 11, "small", "us-east")
        path._ensure(10)
        prefix = list(path.values[:10])
        path._ensure(2000)  # multiple chunk extensions
        assert list(path.values[:10]) == prefix

    def test_walk_respects_bounds(self):
        proc = MeanRevertingPrice(sigma=1.5, floor=0.2, cap=0.9)
        path = price_path(proc, 3, "small", "us-east")
        path._ensure(512)
        assert all(0.2 <= v <= 0.9 for v in path.values)

    def test_crossing_inf_when_threshold_at_cap(self):
        proc = MeanRevertingPrice(cap=1.0)
        path = price_path(proc, 3, "small", "us-east")
        assert math.isinf(path.next_crossing_above(1.0, 0.0, 1e9))
        assert math.isinf(path.next_crossing_above(2.0, 0.0, 1e9))

    def test_integral_matches_step_sum(self):
        proc = MeanRevertingPrice(step_seconds=100.0)
        path = price_path(proc, 5, "small", "us-east")
        path._ensure(12)
        expected = sum(path.values[i] * 100.0 for i in range(10))
        assert path.integral(0.0, 1000.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MeanRevertingPrice(sigma=-0.1)
        with pytest.raises(SimulationError):
            MeanRevertingPrice(step_seconds=0.0)
        with pytest.raises(SimulationError):
            MeanRevertingPrice(floor=0.5, cap=0.4)
