"""Tests for gain/loss/savings metrics (paper Fig. 4 axes)."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.baseline import reference_schedule
from repro.core.metrics import ScheduleMetrics, compare_to_reference, evaluate
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestEvaluate:
    def test_raw_metrics(self, diamond, platform):
        sched = reference_schedule(diamond, platform)
        m = evaluate(sched)
        assert m.makespan == pytest.approx(sched.makespan)
        assert m.cost == pytest.approx(sched.total_cost)
        assert m.idle_seconds == pytest.approx(sched.total_idle_seconds)
        assert m.vm_count == 4
        assert m.gain_pct == 0.0 and m.loss_pct == 0.0

    def test_label_override(self, diamond, platform):
        m = evaluate(reference_schedule(diamond, platform), label="ref")
        assert m.label == "ref"


class TestCompare:
    def test_reference_vs_itself_is_origin(self, diamond, platform):
        ref = reference_schedule(diamond, platform)
        m = compare_to_reference(ref, ref)
        assert m.gain_pct == 0.0
        assert m.loss_pct == 0.0
        assert m.in_target_square

    def test_faster_gives_positive_gain(self, diamond, platform):
        ref = reference_schedule(diamond, platform)
        fast = HeftScheduler("OneVMperTask").schedule(
            diamond, platform, itype=platform.itype("large")
        )
        m = compare_to_reference(fast, ref)
        assert m.gain_pct > 0
        assert m.loss_pct > 0  # large costs 4x

    def test_cheaper_gives_savings(self, diamond, platform):
        ref = reference_schedule(diamond, platform)
        packed = HeftScheduler("StartParExceed").schedule(diamond, platform)
        m = compare_to_reference(packed, ref)
        assert m.savings_pct > 0
        assert m.savings_pct == -m.loss_pct

    def test_gain_formula(self, diamond, platform):
        ref = reference_schedule(diamond, platform)
        other = HeftScheduler("StartParExceed").schedule(diamond, platform)
        m = compare_to_reference(other, ref)
        expected = (ref.makespan - other.makespan) / ref.makespan * 100
        assert m.gain_pct == pytest.approx(expected)

    def test_degenerate_reference_rejected(self, diamond, platform):
        ref = reference_schedule(diamond, platform)
        fake = ScheduleMetrics("x", 0.0, 0.0, 0.0, 0, 0)
        # build a broken "reference" by abusing the API surface

        class Fake:
            makespan = 0.0
            total_cost = 0.0

        with pytest.raises(SchedulingError):
            compare_to_reference(ref, Fake())  # type: ignore[arg-type]


class TestTargetSquare:
    def test_quadrants(self):
        inside = ScheduleMetrics("a", 1, 1, 0, 1, 1, gain_pct=5.0, loss_pct=-5.0)
        slower = ScheduleMetrics("b", 1, 1, 0, 1, 1, gain_pct=-5.0, loss_pct=-5.0)
        dearer = ScheduleMetrics("c", 1, 1, 0, 1, 1, gain_pct=5.0, loss_pct=5.0)
        assert inside.in_target_square
        assert not slower.in_target_square
        assert not dearer.in_target_square

    def test_as_row_shape(self):
        m = ScheduleMetrics("a", 1.0, 2.0, 3.0, 4, 5, gain_pct=6.0, loss_pct=7.0)
        assert m.as_row() == ("a", 1.0, 2.0, 6.0, 7.0, 3.0, 4)
