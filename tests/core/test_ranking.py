"""Tests for HEFT upward rank and level ordering."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.ranking import heft_order, level_order, upward_rank
from repro.workflows.generators import montage, random_layered


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestUpwardRank:
    def test_exit_task_rank_is_own_runtime(self, diamond, platform):
        ranks = upward_rank(diamond, platform, platform.itype("small"))
        assert ranks["D"] == pytest.approx(300.0)

    def test_parent_rank_exceeds_children(self, diamond, platform):
        ranks = upward_rank(diamond, platform, platform.itype("small"))
        assert ranks["A"] > ranks["B"] > ranks["D"]
        assert ranks["A"] > ranks["C"] > ranks["D"]

    def test_recurrence(self, diamond, platform):
        small = platform.itype("small")
        ranks = upward_rank(diamond, platform, small)
        c_bd = platform.transfer_time(1.0, small, small)
        expected_b = 1200.0 + c_bd + ranks["D"]
        assert ranks["B"] == pytest.approx(expected_b)

    def test_without_transfers(self, diamond, platform):
        ranks = upward_rank(diamond, platform, platform.itype("small"), include_transfers=False)
        assert ranks["B"] == pytest.approx(1200.0 + 300.0)
        assert ranks["A"] == pytest.approx(600.0 + 1200.0 + 300.0)

    def test_itype_scales_ranks(self, diamond, platform):
        small = upward_rank(diamond, platform, platform.itype("small"), include_transfers=False)
        large = upward_rank(diamond, platform, platform.itype("large"), include_transfers=False)
        for t in small:
            assert large[t] == pytest.approx(small[t] / 2.1)


class TestHeftOrder:
    def test_descending_rank_is_topological(self, platform):
        """rank(parent) > rank(child) => the order respects every edge."""
        for seed in range(5):
            wf = random_layered(layers=5, seed=seed)
            order = heft_order(wf, platform, platform.itype("small"))
            pos = {t: i for i, t in enumerate(order)}
            for u, v, _ in wf.edges():
                assert pos[u] < pos[v]

    def test_covers_all_tasks_once(self, platform):
        wf = montage()
        order = heft_order(wf, platform, platform.itype("small"))
        assert sorted(order) == sorted(wf.task_ids)

    def test_deterministic(self, platform):
        wf = montage()
        a = heft_order(wf, platform, platform.itype("small"))
        b = heft_order(wf, platform, platform.itype("small"))
        assert a == b


class TestLevelOrder:
    def test_levels_in_dag_order(self, diamond, platform):
        lv = level_order(diamond, platform, platform.itype("small"))
        assert lv[0] == ["A"]
        assert lv[2] == ["D"]

    def test_descending_exec_within_level(self, diamond, platform):
        lv = level_order(diamond, platform, platform.itype("small"))
        assert lv[1] == ["B", "C"]  # B=1200 > C=900

    def test_ascending_option(self, diamond, platform):
        lv = level_order(diamond, platform, platform.itype("small"), descending_exec=False)
        assert lv[1] == ["C", "B"]
