"""Tests for the workflow profiling module."""

import pytest

from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workloads.uniform import ConstantModel
from repro.workflows.analysis import compare_profiles, profile
from repro.workflows.generators import cstem, mapreduce, montage, sequential


class TestProfileBasics:
    def test_counts(self):
        p = profile(montage())
        assert p.tasks == 24
        assert p.levels == 9
        assert p.max_width == 6
        assert p.avg_width == pytest.approx(24 / 9)

    def test_sequential_is_fully_serial(self):
        p = profile(sequential(8))
        assert p.serial_fraction == 1.0
        assert p.max_width == 1
        assert p.critical_path_seconds == pytest.approx(p.total_work)

    def test_montage_skips_levels(self):
        assert profile(montage()).level_skip_fraction > 0.1

    def test_mapreduce_does_not_skip(self):
        assert profile(mapreduce()).level_skip_fraction == 0.0

    def test_cstem_mostly_serial(self):
        p = profile(cstem())
        assert p.serial_fraction >= 0.5


class TestRuntimeStats:
    def test_constant_runtimes_cv_zero(self):
        wf = apply_model(montage(), ConstantModel(500.0))
        p = profile(wf)
        assert p.runtime_cv == 0.0
        assert p.mean_runtime == 500.0

    def test_pareto_runtimes_heterogeneous(self):
        wf = apply_model(montage(), ParetoModel(), seed=0)
        assert profile(wf).runtime_cv > 0.2


class TestCcr:
    def test_zero_data_means_zero_ccr(self):
        wf = sequential(4).with_data_sizes(
            {(u, v): 0.0 for u, v, _ in sequential(4).edges()}
        )
        assert profile(wf).ccr == 0.0

    def test_ccr_scales_with_data(self):
        base = profile(montage())
        heavy = profile(
            montage().with_data_sizes(
                {(u, v): 10.0 for u, v, _ in montage().edges()}
            )
        )
        assert heavy.ccr > base.ccr
        assert heavy.total_data_gb > base.total_data_gb

    def test_faster_link_lowers_ccr(self):
        assert profile(montage(), link_gbps=10.0).ccr == pytest.approx(
            profile(montage(), link_gbps=1.0).ccr / 10.0
        )


class TestParallelEfficiency:
    def test_bounded(self):
        for wf in (montage(), cstem(), mapreduce(), sequential()):
            eff = profile(wf).parallel_efficiency
            assert 0.0 < eff <= 1.0 + 1e-9

    def test_chain_is_perfectly_efficient(self):
        assert profile(sequential(5)).parallel_efficiency == pytest.approx(1.0)


class TestCompare:
    def test_keys_preserved(self):
        out = compare_profiles({"a": montage(), "b": cstem()})
        assert set(out) == {"a", "b"}
        assert out["a"].name == "montage"
