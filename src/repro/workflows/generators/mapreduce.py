"""MapReduce workflow with two sequential map phases (paper Fig. 2c).

    split  ->  map1 x m  ->  map2 x m  ->  reduce x r  ->  merge

``map2_i`` consumes ``map1_i`` (the figure shows two *sequential* map
phases, not a shuffle between them); every reducer reads every second-
phase mapper (the shuffle), and a final merge joins the reducers.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_SPLIT_GB = 0.5  # per-mapper input chunk
_MAP_GB = 0.3  # map1 -> map2 intermediate
_SHUFFLE_GB = 0.1  # per mapper->reducer partition
_REDUCE_GB = 0.2  # reducer output


def mapreduce(mappers: int = 10, reducers: int = 2, name: str = "mapreduce") -> Workflow:
    """Build a two-phase MapReduce workflow.

    Defaults give ``1 + 10 + 10 + 2 + 1 = 24`` tasks, comparable to the
    paper's Montage instance.
    """
    if mappers < 1 or reducers < 1:
        raise WorkflowError("mapreduce needs >= 1 mapper and >= 1 reducer")
    wf = Workflow(name)

    split = wf.add_task(Task("split", 300.0, "split"))
    map1 = [
        wf.add_task(Task(f"map1_{i}", 1000.0, "map")) for i in range(mappers)
    ]
    map2 = [
        wf.add_task(Task(f"map2_{i}", 800.0, "map")) for i in range(mappers)
    ]
    reduces = [
        wf.add_task(Task(f"reduce_{j}", 1200.0, "reduce")) for j in range(reducers)
    ]
    merge = wf.add_task(Task("merge", 400.0, "merge"))

    for i in range(mappers):
        wf.add_dependency(split.id, map1[i].id, _SPLIT_GB)
        wf.add_dependency(map1[i].id, map2[i].id, _MAP_GB)
        for j in range(reducers):
            wf.add_dependency(map2[i].id, reduces[j].id, _SHUFFLE_GB)
    for j in range(reducers):
        wf.add_dependency(reduces[j].id, merge.id, _REDUCE_GB)
    return wf.validate()
